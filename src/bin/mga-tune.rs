//! `mga-tune` — command-line front end to the MGA tuner.
//!
//! ```text
//! mga-tune list                                  # catalog kernels
//! mga-tune train --out model.ckpt [--machine skylake] [--quick]
//! mga-tune recommend --kernel polybench/gemm/l0 --ws 64M \
//!     [--machine cometlake] [--model model.ckpt]
//! ```
//!
//! `train` builds the simulated profiling dataset over the OpenMP catalog,
//! trains the multimodal model and checkpoints it. `recommend` profiles
//! one kernel at the requested working-set size (two simulated profiling
//! runs, as in the paper), runs the model, and reports the recommended
//! configuration with its measured speedup.

use mga::core::cv::Fold;
use mga::core::model::{FusionModel, Modality, ModelConfig};
use mga::core::omp::OmpTask;
use mga::core::{persist, OmpDataset};
use mga::dae::DaeConfig;
use mga::gnn::GnnConfig;
use mga::kernels::catalog::openmp_catalog;
use mga::kernels::inputs::openmp_input_sizes;
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::{oracle_config, simulate, thread_space, OmpConfig};
use std::path::Path;

fn machine(name: &str) -> CpuSpec {
    match name {
        "cometlake" => CpuSpec::comet_lake(),
        "skylake" => CpuSpec::skylake_4114(),
        "broadwell" => CpuSpec::broadwell_8c(),
        "sandybridge" => CpuSpec::sandy_bridge_8c(),
        other => {
            eprintln!("unknown machine `{other}` (cometlake|skylake|broadwell|sandybridge)");
            std::process::exit(2);
        }
    }
}

fn parse_size(s: &str) -> f64 {
    let (num, mult) = match s.chars().last() {
        Some('K' | 'k') => (&s[..s.len() - 1], 1024.0),
        Some('M' | 'm') => (&s[..s.len() - 1], 1024.0 * 1024.0),
        Some('G' | 'g') => (&s[..s.len() - 1], 1024.0 * 1024.0 * 1024.0),
        _ => (s, 1.0),
    };
    num.parse::<f64>().unwrap_or_else(|_| {
        eprintln!("bad size `{s}` (e.g. 64M, 512K, 1G)");
        std::process::exit(2);
    }) * mult
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn model_config(quick: bool) -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: if quick { 12 } else { 32 },
            layers: 2,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: if quick { 16 } else { 48 },
            hidden_dim: if quick { 12 } else { 32 },
            code_dim: if quick { 6 } else { 16 },
            epochs: if quick { 25 } else { 80 },
            ..DaeConfig::default()
        },
        hidden: if quick { 24 } else { 64 },
        epochs: if quick { 25 } else { 70 },
        lr: 0.015,
        seed: 42,
    }
}

/// Build the profiling dataset. `--quick` thins the *input ladder* (and
/// model sizes elsewhere) but never the kernel catalog — every kernel
/// `mga-tune list` shows must stay addressable.
fn build_dataset(cpu: &CpuSpec, quick: bool) -> OmpDataset {
    let specs = openmp_catalog();
    let mut sizes = openmp_input_sizes();
    if quick {
        sizes = sizes.into_iter().step_by(5).collect();
    }
    let vec_dim = if quick { 16 } else { 48 };
    OmpDataset::build(specs, sizes, thread_space(cpu), cpu.clone(), vec_dim, 42)
}

fn cmd_list() {
    println!("{:<34} {:<14} {:>8}", "kernel", "suite", "IR instrs");
    for spec in openmp_catalog() {
        println!(
            "{:<34} {:<14} {:>8}",
            spec.name,
            spec.suite.name(),
            spec.module.num_instrs()
        );
    }
}

fn cmd_train(args: &[String]) {
    let out = arg_value(args, "--out").unwrap_or_else(|| "mga-model.ckpt".into());
    let cpu = machine(&arg_value(args, "--machine").unwrap_or_else(|| "cometlake".into()));
    let quick = args.iter().any(|a| a == "--quick");
    eprintln!("building profiling dataset on {} ...", cpu.name);
    let ds = build_dataset(&cpu, quick);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let train: Vec<usize> = (0..ds.samples.len()).collect();
    eprintln!(
        "training on {} samples ({} loops x {} inputs) ...",
        train.len(),
        ds.specs.len(),
        ds.sizes.len()
    );
    let model = FusionModel::fit(model_config(quick), &data, &train, &task.codec.head_sizes());
    eprintln!(
        "trained {} parameters, final loss {:.3}",
        model.num_params(),
        model.final_loss
    );
    persist::save_to_file(&model, ds.vectors[0].len(), 5, Path::new(&out)).unwrap_or_else(|e| {
        eprintln!("failed to save: {e}");
        std::process::exit(1);
    });
    println!("saved checkpoint to {out}");
}

fn cmd_recommend(args: &[String]) {
    let kernel = arg_value(args, "--kernel").unwrap_or_else(|| {
        eprintln!("--kernel <name> required (see `mga-tune list`)");
        std::process::exit(2);
    });
    let ws = parse_size(&arg_value(args, "--ws").unwrap_or_else(|| "64M".into()));
    let cpu = machine(&arg_value(args, "--machine").unwrap_or_else(|| "cometlake".into()));
    let quick = args.iter().any(|a| a == "--quick");

    // The dataset provides graphs/vectors for every catalog kernel; the
    // requested kernel is excluded from training (honest recommendation).
    let ds = build_dataset(&cpu, quick);
    let kidx = ds
        .specs
        .iter()
        .position(|s| s.name == kernel)
        .unwrap_or_else(|| {
            eprintln!("kernel `{kernel}` not in catalog (see `mga-tune list`)");
            std::process::exit(2);
        });
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);

    let model = match arg_value(args, "--model") {
        Some(path) => {
            eprintln!("loading checkpoint {path} ...");
            persist::load_from_file(Path::new(&path)).unwrap_or_else(|e| {
                eprintln!("failed to load: {e}");
                std::process::exit(1);
            })
        }
        None => {
            let fold = Fold {
                train: (0..ds.samples.len())
                    .filter(|&i| ds.samples[i].kernel != kidx)
                    .collect(),
                val: vec![],
            };
            eprintln!(
                "no --model given; training a fresh model on the other {} loops ...",
                ds.specs.len() - 1
            );
            FusionModel::fit(
                model_config(quick),
                &data,
                &fold.train,
                &task.codec.head_sizes(),
            )
        }
    };

    // Profile the kernel at the requested size (the paper's two runs).
    let spec = &ds.specs[kidx];
    let default_cfg = OmpConfig::default_for(&cpu);
    let profile = simulate(spec, ws, &default_cfg, &cpu);
    println!(
        "\nprofiled `{kernel}` at ws={:.1} MB on {}:",
        ws / 1048576.0,
        cpu.name
    );
    println!(
        "  default ({} threads, static): {:.3} ms",
        default_cfg.threads,
        profile.runtime * 1e3
    );
    println!(
        "  counters: L1 {:.2e}  L2 {:.2e}  L3 {:.2e}  BR {:.2e}  MSP {:.2e}",
        profile.counters.l1_dcm,
        profile.counters.l2_tcm,
        profile.counters.l3_ldm,
        profile.counters.br_ins,
        profile.counters.br_msp
    );

    // Build a one-sample prediction view.
    let aux = vec![mga::core::omp::counter_features(&profile.counters)];
    let sample_kernel = vec![kidx];
    let dummy_labels: Vec<Vec<usize>> = task.labels.iter().map(|_| vec![0usize]).collect();
    let pdata = mga::core::model::TrainData {
        graphs: &ds.graphs,
        vectors: &ds.vectors,
        sample_kernel: &sample_kernel,
        aux: &aux,
        labels: &dummy_labels,
    };
    let preds = model.predict(&pdata, &[0]);
    let heads: Vec<usize> = preds.iter().map(|p| p[0]).collect();
    let cfg_idx = task.codec.decode(&heads);
    let rec = ds.space[cfg_idx];
    let rec_run = simulate(spec, ws, &rec, &cpu);
    let (oracle, oracle_t) = oracle_config(spec, ws, &ds.space, &cpu);
    println!(
        "\nrecommendation: {} threads, {} schedule",
        rec.threads,
        rec.schedule.name()
    );
    println!(
        "  measured: {:.3} ms  ({:.2}x speedup over default)",
        rec_run.runtime * 1e3,
        profile.runtime / rec_run.runtime
    );
    println!(
        "  oracle:   {:.3} ms  ({} threads, {:.2}x) — recommendation reaches {:.0}% of oracle",
        oracle_t * 1e3,
        oracle.threads,
        profile.runtime / oracle_t,
        (profile.runtime / rec_run.runtime) / (profile.runtime / oracle_t) * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("train") => cmd_train(&args),
        Some("recommend") => cmd_recommend(&args),
        _ => {
            eprintln!(
                "usage:\n  mga-tune list\n  mga-tune train --out model.ckpt [--machine M] [--quick]\n  mga-tune recommend --kernel NAME --ws SIZE [--machine M] [--model CKPT] [--quick]"
            );
            std::process::exit(2);
        }
    }
}
