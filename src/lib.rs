//! # MGA — Multimodal Graph neural network and Autoencoder tuner
//!
//! Umbrella crate for the Rust reproduction of *"Performance Optimization
//! using Multimodal Modeling and Heterogeneous GNN"* (Dutta et al., HPDC
//! 2023). It re-exports every subsystem crate under one namespace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ir`] | `mga-ir` | miniature SSA IR, builder, parser/printer, analyses |
//! | [`kernels`] | `mga-kernels` | benchmark kernel catalog + loop-nest DSL |
//! | [`graph`] | `mga-graph` | PROGRAML-style flow multi-graphs |
//! | [`vec`](mod@vec) | `mga-vec` | IR2Vec-style seed embeddings + program vectors |
//! | [`nn`] | `mga-nn` | tensor/autograd engine, layers, optimizers |
//! | [`gnn`] | `mga-gnn` | gated + heterogeneous graph neural networks |
//! | [`dae`] | `mga-dae` | denoising autoencoder with swap noise |
//! | [`obs`] | `mga-obs` | span tracer, metrics registry, run manifests |
//! | [`sim`] | `mga-sim` | CPU/GPU hardware models + PAPI-like profiler |
//! | [`tuners`] | `mga-tuners` | OpenTuner/ytopt/BLISS-style baseline tuners |
//! | [`core`] | `mga-core` | datasets, the MGA model, training, evaluation |
//! | [`serve`] | `mga-serve` | frozen inference plans, embedding cache, batched serving |
//!
//! See the `examples/` directory for end-to-end usage: `quickstart`,
//! `openmp_tuning`, `device_mapping` and `microarch_portability`.

pub use mga_core as core;
pub use mga_dae as dae;
pub use mga_gnn as gnn;
pub use mga_graph as graph;
pub use mga_ir as ir;
pub use mga_kernels as kernels;
pub use mga_nn as nn;
pub use mga_obs as obs;
pub use mga_serve as serve;
pub use mga_sim as sim;
pub use mga_tuners as tuners;
pub use mga_vec as vec;
