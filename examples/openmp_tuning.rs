//! End-to-end OpenMP tuning with the MGA model (the §4.1.3 workflow on a
//! small slice of the benchmark catalog).
//!
//! Trains the multimodal model on a set of loops, then predicts thread
//! counts for loops it has never seen — including their profiled
//! counters — and compares against the default and the oracle.
//!
//! Run with: `cargo run --release --example openmp_tuning`

use mga::core::cv::kfold_by_group;
use mga::core::metrics::summarize;
use mga::core::model::{FusionModel, Modality, ModelConfig};
use mga::core::omp::OmpTask;
use mga::core::OmpDataset;
use mga::dae::DaeConfig;
use mga::gnn::GnnConfig;
use mga::kernels::catalog::openmp_thread_dataset;
use mga::kernels::inputs::openmp_input_sizes;
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::thread_space;

fn main() {
    // A 15-loop, 10-input slice keeps this example under a minute.
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(3).collect();
    let sizes: Vec<f64> = openmp_input_sizes().into_iter().step_by(3).collect();
    let cpu = CpuSpec::comet_lake();
    println!(
        "building dataset: {} loops x {} inputs on {} ...",
        specs.len(),
        sizes.len(),
        cpu.name
    );
    let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 24, 7);
    let task = OmpTask::new(&ds);

    // Hold one fifth of the loops out.
    let folds = kfold_by_group(&ds.groups(), 5, 7);
    let fold = &folds[0];
    let data = task.train_data(&ds);
    let cfg = ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 16,
            layers: 2,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 24,
            hidden_dim: 16,
            code_dim: 8,
            epochs: 40,
            ..DaeConfig::default()
        },
        hidden: 32,
        epochs: 40,
        lr: 0.015,
        seed: 7,
    };
    println!("training the MGA model on {} samples ...", fold.train.len());
    let model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());
    println!(
        "trained: {} parameters, final loss {:.3}",
        model.num_params(),
        model.final_loss
    );

    // Predict the held-out loops.
    let preds = model.predict(&data, &fold.val);
    let mut pairs = Vec::new();
    println!(
        "\n{:<28} {:>10} {:>10} {:>10} {:>10}",
        "loop @ input", "default", "predicted", "oracle", "norm"
    );
    for (j, &i) in fold.val.iter().enumerate().take(12) {
        let s = &ds.samples[i];
        let heads: Vec<usize> = preds.iter().map(|p| p[j]).collect();
        let cfg_idx = task.codec.decode(&heads);
        let name = format!("{} @ {:.0}KB", ds.specs[s.kernel].app, s.ws_bytes / 1024.0);
        println!(
            "{name:<28} {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>10.3}",
            s.default_runtime * 1e3,
            s.runtimes[cfg_idx] * 1e3,
            s.runtimes[s.best] * 1e3,
            (s.default_runtime / s.runtimes[cfg_idx]) / ds.oracle_speedup(s)
        );
    }
    for (j, &i) in fold.val.iter().enumerate() {
        let s = &ds.samples[i];
        let heads: Vec<usize> = preds.iter().map(|p| p[j]).collect();
        let cfg_idx = task.codec.decode(&heads);
        pairs.push(mga::core::metrics::SpeedupPair {
            achieved: ds.achieved_speedup(s, cfg_idx),
            oracle: ds.oracle_speedup(s),
        });
    }
    let (a, o, n) = summarize(&pairs);
    println!(
        "\nheld-out loops: MGA speedup {a:.2}x vs oracle {o:.2}x (normalized {n:.3}) over {} samples",
        pairs.len()
    );
}
