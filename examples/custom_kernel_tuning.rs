//! Tune a *custom* kernel with the baseline autotuners and compare their
//! convergence against the exhaustive oracle — the workflow a user
//! without a trained model would follow.
//!
//! Run with: `cargo run --release --example custom_kernel_tuning`

use mga::kernels::archetypes;
use mga::kernels::{KernelSpec, Suite};
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::{large_space, oracle_config, simulate, OmpConfig};
use mga::tuners::{
    bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike, Evaluator, RandomSearch, Space,
    Tuner,
};

fn main() {
    // A custom 27-point 3-D stencil — imagine this is your application
    // kernel.
    let (module, traits) = archetypes::stencil("my_stencil", 3, 27);
    let spec = KernelSpec::new(
        "custom/my_stencil/l0",
        "my_stencil",
        Suite::Lulesh,
        module,
        traits,
    );
    let cpu = CpuSpec::skylake_4114();
    let ws = 64.0 * 1024.0 * 1024.0;

    let space = Space::new(large_space());
    println!(
        "tuning `{}` over {} configurations on {}",
        spec.name,
        space.len(),
        cpu.name
    );

    let default = OmpConfig::default_for(&cpu);
    let default_rt = simulate(&spec, ws, &default, &cpu).runtime;
    let (oracle, oracle_rt) = oracle_config(&spec, ws, &space.configs, &cpu);
    println!(
        "default ({} threads, static): {:.2} ms",
        default.threads,
        default_rt * 1e3
    );
    println!(
        "oracle ({} threads, {}, chunk {}): {:.2} ms — {:.2}x speedup\n",
        oracle.threads,
        oracle.schedule.name(),
        oracle.chunk,
        oracle_rt * 1e3,
        default_rt / oracle_rt
    );

    let mut tuners: Vec<(&str, Box<dyn Tuner>, usize)> = vec![
        ("Random", Box::new(RandomSearch { seed: 1 }), 15),
        ("ytopt (BO+GP)", Box::new(YtoptLike::new(1)), 15),
        ("OpenTuner (bandit)", Box::new(OpenTunerLike::new(1)), 15),
        ("BLISS (model pool)", Box::new(BlissLike::new(1)), 15),
    ];
    println!(
        "{:<20} {:>8} {:>12} {:>10} {:>12}",
        "tuner", "evals", "found (ms)", "speedup", "cost (sim s)"
    );
    for (name, tuner, budget) in &mut tuners {
        let mut ev = Evaluator::new(&spec, ws, &cpu);
        let chosen = tuner.tune(&space, &mut ev, *budget);
        let rt = simulate(&spec, ws, &chosen, &cpu).runtime;
        println!(
            "{name:<20} {:>8} {:>11.2} {:>9.2}x {:>12.1}",
            ev.evals,
            rt * 1e3,
            default_rt / rt,
            ev.spent_seconds
        );
    }
    println!(
        "\nall tuners pay per evaluation; a trained MGA model would need only a\n\
         single profiling run of the default configuration (see `openmp_tuning`)."
    );
}
