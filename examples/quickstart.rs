//! Quickstart: the full MGA representation pipeline on one kernel.
//!
//! Builds a SAXPY-like OpenMP loop in the IR, derives both static
//! modalities (PROGRAML-style flow graph, IR2Vec-style program vector),
//! profiles it on the simulated Comet Lake machine, and prints what the
//! oracle configuration looks like.
//!
//! Run with: `cargo run --release --example quickstart`

use mga::graph::{build_module_graph, GraphStats};
use mga::ir::builder::FunctionBuilder;
use mga::ir::instr::CmpPred;
use mga::ir::{Module, Param, Type};
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::{oracle_config, simulate, thread_space, OmpConfig};
use mga::vec::{extract_triples, train_seed_embeddings, TransEConfig};

fn main() {
    // --- 1. Write a kernel in the IR (what Clang would emit). ---
    let mut b = FunctionBuilder::new(
        "saxpy",
        vec![
            Param {
                name: "n".into(),
                ty: Type::I64,
            },
            Param {
                name: "x".into(),
                ty: Type::F64.ptr(),
            },
            Param {
                name: "y".into(),
                ty: Type::F64.ptr(),
            },
        ],
        Type::Void,
    );
    b.set_parallel(false);
    let entry = b.current_block();
    let header = b.create_block("header");
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    let zero = b.const_i64(0);
    b.br(header);
    b.switch_to(header);
    let (i, ip) = b.phi_begin(Type::I64);
    let c = b.icmp(CmpPred::Lt, i, b.param(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let px = b.gep(b.param(1), i);
    let py = b.gep(b.param(2), i);
    let vx = b.load(px);
    let vy = b.load(py);
    let a = b.const_f64(2.5);
    let ax = b.fmul(vx, a);
    let s = b.fadd(ax, vy);
    b.store(s, py);
    let one = b.const_i64(1);
    let ix = b.add(i, one);
    b.br(header);
    b.phi_finish(ip, vec![(entry, zero), (body, ix)]);
    b.switch_to(exit);
    b.ret_void();

    let mut module = Module::new("quickstart");
    module.add_function(b.finish());
    mga::ir::verify_module(&module).expect("IR verifies");
    println!(
        "--- textual IR ---\n{}",
        mga::ir::printer::module_str(&module)
    );

    // --- 2. Modality one: the PROGRAML-style flow multi-graph. ---
    let graph = build_module_graph(&module);
    let stats = GraphStats::of(&graph);
    println!("flow graph: {stats:?}");

    // --- 3. Modality two: the IR2Vec-style program vector. ---
    let triples = extract_triples(&module);
    let emb = train_seed_embeddings(
        &triples,
        &TransEConfig {
            dim: 16,
            epochs: 30,
            ..Default::default()
        },
        42,
    );
    let vector = emb.encode_function(&module.functions[0]);
    println!(
        "program vector (dim {}): [{:.3}, {:.3}, {:.3}, ...]",
        vector.len(),
        vector[0],
        vector[1],
        vector[2]
    );

    // --- 4. Dynamic features: profile on the simulated machine. ---
    let spec = mga::kernels::KernelSpec::new(
        "example/saxpy/l0",
        "saxpy",
        mga::kernels::Suite::Stream,
        module,
        mga::kernels::Traits {
            trip: mga::kernels::TripCount::Linear(1.0),
            inner: mga::kernels::TripCount::Const(1.0),
            ws_bytes_per_n: 16.0,
            ws_power: 1.0,
            bytes_per_iter: 24.0,
            locality: mga::kernels::spec::Locality::streaming(),
            imbalance: mga::kernels::Imbalance::Uniform,
            reduction: false,
            branch_entropy: 0.02,
            serial_frac: 0.005,
            sync_us_per_iter: 0.0,
        },
    );
    let cpu = CpuSpec::comet_lake();
    let ws = 256.0 * 1024.0 * 1024.0; // 256 MB of vectors
    let default = OmpConfig::default_for(&cpu);
    let run = simulate(&spec, ws, &default, &cpu);
    println!(
        "\nprofile @ default ({} threads): {:.3} ms, L1 misses {:.2e}, branch mispredicts {:.2e}",
        default.threads,
        run.runtime * 1e3,
        run.counters.l1_dcm,
        run.counters.br_msp
    );

    // --- 5. What should it have used? ---
    let space = thread_space(&cpu);
    let (best, best_t) = oracle_config(&spec, ws, &space, &cpu);
    println!(
        "oracle: {} threads -> {:.3} ms ({:.2}x speedup over default)",
        best.threads,
        best_t * 1e3,
        run.runtime / best_t
    );
    println!("\n(SAXPY is bandwidth-bound: all 8 cores just queue on the memory controller.)");
}
