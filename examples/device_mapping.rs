//! OpenCL heterogeneous device mapping (the §4.2 task) on a slice of the
//! OpenCL catalog: should this kernel run on the CPU or the GPU?
//!
//! Run with: `cargo run --release --example device_mapping`

use mga::core::dataset::OclDataset;
use mga::core::devmap::run_devmap;
use mga::core::model::{Modality, ModelConfig};
use mga::dae::DaeConfig;
use mga::gnn::GnnConfig;
use mga::kernels::catalog::opencl_catalog;
use mga::sim::gpu::GpuSpec;

fn main() {
    let specs: Vec<_> = opencl_catalog().into_iter().step_by(2).collect();
    println!(
        "building the device-mapping dataset for {} kernels ...",
        specs.len()
    );
    let ds = OclDataset::build(specs, GpuSpec::tahiti_7970(), 24, 3);
    let gpu_share =
        ds.labels().iter().filter(|&&l| l == 1).count() as f64 / ds.samples.len() as f64;
    println!(
        "{} labeled points ({:.0}% GPU-best) on {} vs {}",
        ds.samples.len(),
        gpu_share * 100.0,
        ds.cpu.name,
        ds.gpu.name
    );

    let cfg = ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 16,
            layers: 2,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 24,
            hidden_dim: 16,
            code_dim: 8,
            epochs: 40,
            ..DaeConfig::default()
        },
        hidden: 32,
        epochs: 35,
        lr: 0.015,
        seed: 3,
    };
    println!("running 5-fold stratified cross-validation ...");
    let res = run_devmap(&ds, &cfg, 5, 3);
    println!(
        "\naccuracy {:.1}%  macro-F1 {:.2}",
        res.accuracy * 100.0,
        res.f1
    );
    println!(
        "speedup over static mapping: {:.2}x (oracle {:.2}x)",
        res.speedup, res.oracle_speedup
    );

    // Show a few individual decisions.
    println!("\nsample decisions (out-of-fold):");
    println!(
        "{:<34} {:>10} {:>8} {:>10} {:>10} {:>6} {:>6}",
        "kernel", "transfer", "wg", "cpu", "gpu", "pred", "true"
    );
    for (i, s) in ds.samples.iter().enumerate().step_by(ds.samples.len() / 12) {
        println!(
            "{:<34} {:>9.0}K {:>8} {:>9.2}ms {:>9.2}ms {:>6} {:>6}",
            ds.specs[s.kernel].name,
            s.transfer_bytes / 1024.0,
            s.wg_size,
            s.cpu_time * 1e3,
            s.gpu_time * 1e3,
            if res.predictions[i] == 1 {
                "GPU"
            } else {
                "CPU"
            },
            if s.label == 1 { "GPU" } else { "CPU" },
        );
    }
}
