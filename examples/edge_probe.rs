use mga_gnn::{GnnConfig, GraphBatch, HeteroGnn};
use mga_graph::{GraphStats, Node, NodeKind, ProGraph};
use mga_kernels::catalog::openmp_catalog;
use mga_nn::tape::Tape;
use mga_nn::ParamSet;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::{OmpConfig, Schedule};
use mga_tuners::bliss::BlissLike;
use mga_tuners::opentuner::OpenTunerLike;
use mga_tuners::ytopt::{Gp, YtoptLike};
use mga_tuners::{Evaluator, RandomSearch, Space, Tuner};
use rand::SeedableRng;

fn main() {
    let which: String = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "empty-graph-gnn" => {
            // graph with zero nodes (e.g. external function graph)
            let g = ProGraph::default();
            let batch = GraphBatch::single(&g);
            let mut ps = ParamSet::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let gnn = HeteroGnn::new(&mut ps, "g", &GnnConfig::default(), &mut rng);
            let mut tape = Tape::new();
            let out = gnn.forward(&mut tape, &ps, &batch);
            println!(
                "empty graph out shape {:?} row {:?}",
                tape.value(out).shape(),
                tape.value(out)
                    .row_slice(0)
                    .iter()
                    .take(3)
                    .collect::<Vec<_>>()
            );
        }
        "no-instr-gnn" => {
            let mut g = ProGraph::default();
            g.nodes.push(Node {
                kind: NodeKind::Variable(0),
            });
            let batch = GraphBatch::single(&g);
            let mut ps = ParamSet::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let gnn = HeteroGnn::new(&mut ps, "g", &GnnConfig::default(), &mut rng);
            let mut tape = Tape::new();
            let out = gnn.forward(&mut tape, &ps, &batch);
            println!(
                "no-instr out {:?}",
                tape.value(out)
                    .row_slice(0)
                    .iter()
                    .take(3)
                    .collect::<Vec<_>>()
            );
        }
        "gp-dup" => {
            let xs = vec![[0.1, 0.2, 0.3], [0.1, 0.2, 0.3], [0.1, 0.2, 0.3]];
            let ys = vec![1.0, 1.0, 1.0];
            let mut gp = Gp::new(0.4, 1e-4);
            gp.fit(&xs, &ys);
            let (m, v) = gp.predict(&[0.1, 0.2, 0.3]);
            println!("gp dup predict m={m} v={v}");
        }
        t @ ("single-space" | "two-space") => {
            let spec = openmp_catalog()
                .into_iter()
                .find(|s| s.app == "gemm")
                .unwrap();
            let cpu = CpuSpec::skylake_4114();
            let mut configs = vec![OmpConfig {
                threads: 4,
                schedule: Schedule::Static,
                chunk: 0,
            }];
            if t == "two-space" {
                configs.push(OmpConfig {
                    threads: 8,
                    schedule: Schedule::Dynamic,
                    chunk: 16,
                });
            }
            let space = Space::new(configs);
            for budget in [0usize, 1, 2, 5, 50] {
                let mut ev = Evaluator::new(&spec, 1e6, &cpu);
                let c = YtoptLike::new(7).tune(&space, &mut ev, budget);
                println!("ytopt budget={budget} evals={} -> {:?}", ev.evals, c);
                let mut ev = Evaluator::new(&spec, 1e6, &cpu);
                let c = BlissLike::new(7).tune(&space, &mut ev, budget);
                println!("bliss budget={budget} evals={} -> {:?}", ev.evals, c);
                let mut ev = Evaluator::new(&spec, 1e6, &cpu);
                let c = OpenTunerLike::new(7).tune(&space, &mut ev, budget);
                println!("opentuner budget={budget} evals={} -> {:?}", ev.evals, c);
                let mut ev = Evaluator::new(&spec, 1e6, &cpu);
                let c = RandomSearch { seed: 7 }.tune(&space, &mut ev, budget);
                println!("random budget={budget} evals={} -> {:?}", ev.evals, c);
            }
        }
        "features" => {
            // space with one config, chunk 0
            let space = Space::new(vec![OmpConfig {
                threads: 0,
                schedule: Schedule::Guided,
                chunk: 0,
            }]);
            println!("feat {:?}", space.features(&space.configs[0]));
            let _ = GraphStats::of(&ProGraph::default());
        }
        _ => eprintln!("unknown probe"),
    }
}
