//! Vendored stand-in for `criterion` (API-compatible subset).
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the benchmark-harness surface the workspace uses:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: after one warm-up call, each benchmark runs
//! `sample_size` samples (default 10); each sample times a batch of
//! iterations sized so a sample takes ≥ ~5 ms, and the reported number
//! is the median sample's ns/iteration. The total time per benchmark is
//! capped (~2 s) so full `cargo bench` sweeps stay tractable. Results
//! print as `name ... <ns> ns/iter` lines; set `MGA_BENCH_JSON=<path>`
//! to also append machine-readable `{name, iters, ns_per_iter}` records.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Cap on the measured (post-warm-up) time spent per benchmark.
const TARGET_TOTAL: Duration = Duration::from_secs(2);
/// Minimum duration of one sample batch.
const MIN_SAMPLE: Duration = Duration::from_millis(5);

/// Root harness handle.
#[derive(Default)]
pub struct Criterion {
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id().0, 10, self.filter.as_deref(), f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self // accepted for API compatibility; TARGET_TOTAL governs
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, self.sample_size, self.criterion.filter.as_deref(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// Conversion into a benchmark name (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Batch sizing for [`Bencher::iter_batched`]; the shim treats every
/// variant identically (setup re-runs before each measured call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    sample_size: usize,
    /// Median ns/iter and total measured iterations, set by `iter`.
    result: Option<(f64, u64)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + per-iteration estimate.
        let t0 = Instant::now();
        black_box(routine());
        let est = t0.elapsed().max(Duration::from_nanos(20));

        // Batch size so one sample lasts >= MIN_SAMPLE, capped so all
        // samples fit in TARGET_TOTAL.
        let per_sample = (MIN_SAMPLE.as_nanos() / est.as_nanos()).max(1) as u64;
        let budget = (TARGET_TOTAL.as_nanos() / est.as_nanos()).max(1) as u64;
        let per_sample = per_sample.min((budget / self.sample_size as u64).max(1));

        let mut samples = Vec::with_capacity(self.sample_size);
        let mut iters_total = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let dt = start.elapsed();
            iters_total += per_sample;
            samples.push(dt.as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        self.result = Some((median, iters_total));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup time is excluded by timing only the routine calls.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let est = t0.elapsed().max(Duration::from_nanos(20));

        let budget = (TARGET_TOTAL.as_nanos() / est.as_nanos()).max(1) as u64;
        let n_samples = (self.sample_size as u64).min(budget).max(1);

        let mut samples = Vec::with_capacity(n_samples as usize);
        for _ in 0..n_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        self.result = Some((median, n_samples));
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, filter: Option<&str>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    let Some((ns, iters)) = b.result else {
        println!("{name:<48} (no measurement: Bencher::iter never called)");
        return;
    };
    println!("{name:<48} {ns:>14.1} ns/iter  ({iters} iters)");
    if let Ok(path) = std::env::var("MGA_BENCH_JSON") {
        if let Ok(mut fh) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                fh,
                "{{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}}}",
                name.replace('"', "'"),
                iters,
                ns
            );
        }
    }
}

/// Declares a function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the bench binary is invoked with
            // `--test`; benches are not meant to run there.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("square", 64).0, "square/64");
    }
}
