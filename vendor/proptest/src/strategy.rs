//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};

/// Something that can generate values from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// A boxed generator: one arm of a `prop_oneof!`.
pub type Arm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed generators (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Arm<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Arm<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof of nothing");
        Union { arms }
    }
}

/// Box one `prop_oneof!` arm. Going through a fn call (rather than a
/// closure-to-trait-object cast in the macro) lets integer literals in
/// later arms unify with the first arm's value type.
pub fn boxed_arm<S>(s: S) -> Arm<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| s.generate(rng))
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        (self.arms[pick])(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_inclusive_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($( ($($s:ident . $idx:tt),+) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn ranges_tuples_map_and_vec_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0u32..5, -1.0f32..1.0)
            .prop_map(|(n, x)| (n, x))
            .prop_map(|(n, x)| n as f32 + x);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((-1.0..5.0).contains(&v));
        }
        let vecs = collection::vec(0i64..10, 3..6);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::new(vec![
            Box::new(|_: &mut TestRng| 1u8),
            Box::new(|_: &mut TestRng| 2u8),
        ]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
