//! The customary `use proptest::prelude::*;` imports.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
