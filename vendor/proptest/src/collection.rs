//! Collection strategies (`vec` only).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Acceptable length specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
