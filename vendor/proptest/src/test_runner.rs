//! Deterministic test-case generation and failure reporting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-`proptest!`-block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed test case (carries the assertion message).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic generator: seeded from the test function's name (FNV-1a)
/// so every run regenerates the same case sequence.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
