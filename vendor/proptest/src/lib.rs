//! Vendored stand-in for `proptest` (API-compatible subset).
//!
//! The build environment has no crates.io access, so this crate
//! reimplements exactly what the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an
//!   optional `#![proptest_config(...)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! * range, [`Just`](strategy::Just), tuple, `prop_map` and
//!   [`collection::vec`] strategies.
//!
//! No shrinking is performed: failing cases report the case number, and
//! re-running the test regenerates identical inputs (generation is
//! deterministic from the test's name), which is enough to debug.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Wraps `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            { $body }
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Non-fatal-to-the-harness assertion: fails the current case by
/// returning a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed_arm($s) ),+
        ])
    };
}
