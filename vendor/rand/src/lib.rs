//! Vendored stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 stream of upstream `StdRng`, so absolute random sequences
//! differ from upstream, but everything stays deterministic per seed
//! and portable across platforms, which is all the workspace relies on.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Element types drawable uniformly from a range. The blanket
/// [`SampleRange`] impls below tie a range's element type to the
/// `gen_range` result type the way upstream `rand` does, which is what
/// lets bare float/int literals in ranges infer from surrounding
/// arithmetic instead of falling back to `f64`/`i32`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_single_inclusive(lo, hi, rng)
    }
}

/// Map a raw `u64` onto `[0, span)` with a widening multiply (Lemire's
/// multiply-shift; bias is < 2^-64 per draw, irrelevant here).
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// The user-facing extension methods, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-0.25f32..0.5);
            assert!((-0.25..0.5).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0u32..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }
}
