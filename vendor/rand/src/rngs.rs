//! Named generators. Only [`StdRng`] exists here.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256** with SplitMix64
/// seeding (Blackman & Vigna). Deterministic per seed, portable, and
/// fast; not cryptographic (neither is anything that uses it here).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Export the raw xoshiro256** state (checkpointing). Restoring it
    /// with [`StdRng::from_state`] resumes the exact output stream.
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from [`StdRng::to_state`]. An all-zero state
    /// (never produced by a healthy generator, but reachable from a
    /// corrupt checkpoint) is remapped to a valid seed rather than
    /// becoming a fixed point that emits zeros forever.
    pub fn from_state(s: [u64; 4]) -> StdRng {
        if s == [0; 4] {
            return StdRng::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
