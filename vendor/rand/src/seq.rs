//! Sequence helpers ([`SliceRandom::shuffle`] only).

use crate::{RngCore, SampleRange};

pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates, high index downward.
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}
