//! Integration: checkpoint round trips feeding the online tuner — the
//! deployment path of a shipped model (train once, save; later load,
//! profile, recommend, refine).

use mga::core::cv::kfold_by_group;
use mga::core::model::{FusionModel, Modality, ModelConfig};
use mga::core::omp::OmpTask;
use mga::core::online::evaluate_online;
use mga::core::{persist, OmpDataset};
use mga::dae::DaeConfig;
use mga::gnn::GnnConfig;
use mga::kernels::catalog::openmp_thread_dataset;
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::thread_space;

fn setup() -> (OmpDataset, OmpTask) {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(5).collect();
    let cpu = CpuSpec::comet_lake();
    let ds = OmpDataset::build(specs, vec![2e5, 2e7, 2e8], thread_space(&cpu), cpu, 14, 8);
    let task = OmpTask::new(&ds);
    (ds, task)
}

fn cfg() -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 10,
            layers: 1,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 14,
            hidden_dim: 10,
            code_dim: 5,
            epochs: 12,
            ..DaeConfig::default()
        },
        hidden: 20,
        epochs: 15,
        lr: 0.02,
        seed: 6,
    }
}

#[test]
fn saved_model_refines_online_identically_to_original() {
    let (ds, task) = setup();
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 4);
    let model = FusionModel::fit(cfg(), &data, &folds[0].train, &task.codec.head_sizes());

    let text = persist::save_model(&model, 14, 5);
    let restored = persist::load_model(&text).expect("restore");

    let a = evaluate_online(&ds, &data, &model, &task.codec, &folds[0].val, 4);
    let b = evaluate_online(&ds, &data, &restored, &task.codec, &folds[0].val, 4);
    assert_eq!(a.len(), b.len());
    for ((m1, r1, e1), (m2, r2, e2)) in a.iter().zip(&b) {
        assert_eq!(m1, m2, "restored model predicted differently");
        assert_eq!(r1, r2);
        assert_eq!(e1, e2);
    }
}

#[test]
fn checkpoint_text_is_stable_and_parseable_after_round_trip() {
    let (ds, task) = setup();
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 4);
    let model = FusionModel::fit(cfg(), &data, &folds[0].train, &task.codec.head_sizes());
    let t1 = persist::save_model(&model, 14, 5);
    let restored = persist::load_model(&t1).unwrap();
    let t2 = persist::save_model(&restored, 14, 5);
    assert_eq!(t1, t2, "save∘load∘save must be a fixed point");
}

#[test]
fn homogeneous_flag_survives_checkpointing() {
    let (ds, task) = setup();
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 4);
    let mut c = cfg();
    c.modality = Modality::GraphOnly;
    c.gnn.homogeneous = true;
    c.epochs = 5;
    let model = FusionModel::fit(c, &data, &folds[0].train, &task.codec.head_sizes());
    let restored = persist::load_model(&persist::save_model(&model, 14, 5)).unwrap();
    assert!(restored.cfg.gnn.homogeneous);
    assert_eq!(
        model.predict(&data, &folds[0].val),
        restored.predict(&data, &folds[0].val)
    );
}
