//! Property tests: autotuner contracts — budgets respected, never better
//! than the oracle, determinism per seed.

use mga::kernels::catalog::openmp_catalog;
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::{large_space, oracle_config, simulate};
use mga::tuners::{
    bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike, Evaluator, RandomSearch, Space,
    Tuner,
};
use proptest::prelude::*;

fn tuners(seed: u64) -> Vec<Box<dyn Tuner>> {
    vec![
        Box::new(RandomSearch { seed }),
        Box::new(YtoptLike::new(seed)),
        Box::new(OpenTunerLike::new(seed)),
        Box::new(BlissLike::new(seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn tuners_respect_budget_and_never_beat_oracle(
        kernel_idx in 0usize..30,
        seed in 0u64..1000,
        budget in 3usize..20,
    ) {
        let cat = openmp_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        let ws = 1.6e7;
        let (_, oracle_t) = oracle_config(spec, ws, &space.configs, &cpu);
        for mut tuner in tuners(seed) {
            let mut ev = Evaluator::new(spec, ws, &cpu);
            let chosen = tuner.tune(&space, &mut ev, budget);
            prop_assert!(ev.evals <= budget, "{} used {} > {}", tuner.name(), ev.evals, budget);
            prop_assert!(ev.spent_seconds > 0.0);
            let t = simulate(spec, ws, &chosen, &cpu).runtime;
            prop_assert!(t >= oracle_t * 0.999, "{} beat the oracle?", tuner.name());
            prop_assert!(space.configs.contains(&chosen));
        }
    }

    #[test]
    fn tuners_are_deterministic_per_seed(kernel_idx in 0usize..30, seed in 0u64..500) {
        let cat = openmp_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::skylake_4114();
        let space = Space::new(large_space());
        for (a, b) in tuners(seed).into_iter().zip(tuners(seed)) {
            let mut t1 = a;
            let mut t2 = b;
            let mut e1 = Evaluator::new(spec, 4e6, &cpu);
            let mut e2 = Evaluator::new(spec, 4e6, &cpu);
            let c1 = t1.tune(&space, &mut e1, 8);
            let c2 = t2.tune(&space, &mut e2, 8);
            prop_assert_eq!(c1, c2, "{} nondeterministic", t1.name());
            prop_assert_eq!(e1.evals, e2.evals);
        }
    }
}

#[test]
fn bigger_budgets_reach_the_oracle_eventually() {
    let cat = openmp_catalog();
    let spec = cat.iter().find(|s| s.app == "hotspot").unwrap();
    let cpu = CpuSpec::comet_lake();
    let space = Space::new(mga::sim::openmp::thread_space(&cpu));
    let ws = 3e7;
    let (_, oracle_t) = oracle_config(spec, ws, &space.configs, &cpu);
    // Budget covering the whole space: every tuner must find the optimum.
    for mut tuner in tuners(3) {
        let mut ev = Evaluator::new(spec, ws, &cpu);
        let chosen = tuner.tune(&space, &mut ev, space.len() * 3);
        let t = simulate(spec, ws, &chosen, &cpu).runtime;
        assert!(
            (t - oracle_t).abs() < 1e-12,
            "{} missed the optimum with exhaustive budget: {t} vs {oracle_t}",
            tuner.name()
        );
    }
}
