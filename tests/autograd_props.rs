//! Property tests: the autograd engine against finite differences, and
//! numerical invariants of the NN substrate.

use mga::nn::scaler::{GaussRankScaler, MinMaxScaler};
use mga::nn::tape::Tape;
use mga::nn::tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// Central-difference gradient check for a random composite graph.
fn check(
    input: &Tensor,
    build: impl Fn(&mut Tape, mga::nn::Var) -> mga::nn::Var,
) -> Result<(), TestCaseError> {
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let loss = build(&mut tape, x);
    tape.backward(loss);
    let analytic = tape.grad(x).expect("input must receive a gradient");
    let eps = 1e-2f32;
    for idx in 0..input.len() {
        let f = |delta: f32| {
            let mut t = input.clone();
            t.data_mut()[idx] += delta;
            let mut tp = Tape::new();
            let xv = tp.leaf(t);
            let l = build(&mut tp, xv);
            tp.value(l).get(0, 0)
        };
        let numeric = (f(eps) - f(-eps)) / (2.0 * eps);
        let a = analytic.data()[idx];
        prop_assert!(
            (a - numeric).abs() <= 0.05 * (1.0 + numeric.abs()),
            "grad mismatch at {idx}: analytic {a}, numeric {numeric}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn composite_graph_gradients_match_finite_differences(
        x in tensor_strategy(3, 4),
        w in tensor_strategy(4, 3),
        pick in 0u8..4,
    ) {
        check(&x, |t, xv| {
            let wv = t.leaf(w.clone());
            let h = t.matmul(xv, wv);
            let h = match pick % 4 {
                0 => t.sigmoid(h),
                1 => t.tanh(h),
                2 => t.relu(h),
                _ => t.scale(h, 0.7),
            };
            let g = t.gather_rows(h, &[0, 2, 1, 2]);
            let s = t.scatter_mean_rows(g, &[1, 0, 1, 0], 2);
            t.mse_loss(s, &Tensor::full(2, 3, 0.1))
        })?;
    }

    #[test]
    fn softmax_ce_gradient_matches(x in tensor_strategy(4, 3)) {
        check(&x, |t, xv| t.softmax_cross_entropy(xv, &[0, 1, 2, 1]))?;
    }

    #[test]
    fn softmax_ce_is_nonnegative_and_permutation_sane(x in tensor_strategy(5, 4)) {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let l = t.softmax_cross_entropy(xv, &[0, 1, 2, 3, 0]);
        let v = t.value(l).get(0, 0);
        prop_assert!(v >= 0.0, "cross-entropy must be nonnegative, got {v}");
        prop_assert!(v.is_finite());
    }

    #[test]
    fn matmul_is_associative_enough(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(2, 3),
    ) {
        // (A·B)·C == A·(B·C) within f32 tolerance.
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_matmul_identity(a in tensor_strategy(4, 3), b in tensor_strategy(4, 5)) {
        // aᵀ·b computed directly equals the explicit transpose product.
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gauss_rank_is_monotone_on_random_data(
        vals in proptest::collection::vec(-100.0f32..100.0, 8..40),
        probe_a in -120.0f32..120.0,
        probe_b in -120.0f32..120.0,
    ) {
        let data: Vec<Vec<f32>> = vals.iter().map(|&v| vec![v]).collect();
        let s = GaussRankScaler::fit(&data, 1);
        let (lo, hi) = if probe_a <= probe_b { (probe_a, probe_b) } else { (probe_b, probe_a) };
        let mut a = [lo];
        let mut b = [hi];
        s.transform_row(&mut a);
        s.transform_row(&mut b);
        prop_assert!(a[0] <= b[0] + 1e-6, "monotonicity violated: {} > {}", a[0], b[0]);
    }

    #[test]
    fn minmax_output_in_unit_interval(
        data in proptest::collection::vec(
            proptest::collection::vec(-50.0f32..50.0, 3),
            2..20
        ),
        probe in proptest::collection::vec(-100.0f32..100.0, 3),
    ) {
        let s = MinMaxScaler::fit(&data, 3);
        let mut p = probe.clone();
        s.transform_row(&mut p);
        for v in p {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
