//! Integration: the full OpenMP tuning pipeline, IR → graph/vector →
//! simulated profiling → multimodal model → configuration prediction.

use mga::core::cv::kfold_by_group;
use mga::core::model::{FusionModel, Modality, ModelConfig};
use mga::core::omp::{eval_model_fold, OmpTask};
use mga::core::OmpDataset;
use mga::dae::DaeConfig;
use mga::gnn::GnnConfig;
use mga::kernels::catalog::openmp_thread_dataset;
use mga::sim::cpu::CpuSpec;
use mga::sim::openmp::thread_space;

fn small_dataset() -> OmpDataset {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(3).collect();
    let cpu = CpuSpec::comet_lake();
    let sizes = vec![64.0 * 1024.0, 4e6, 2.56e8];
    OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 11)
}

fn small_cfg(modality: Modality) -> ModelConfig {
    ModelConfig {
        modality,
        use_aux: true,
        gnn: GnnConfig {
            dim: 12,
            layers: 2,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 6,
            epochs: 25,
            ..DaeConfig::default()
        },
        hidden: 24,
        epochs: 30,
        lr: 0.02,
        seed: 9,
    }
}

#[test]
fn mga_beats_default_on_unseen_loops() {
    let ds = small_dataset();
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 4, 5);
    let e = eval_model_fold(&ds, &task, small_cfg(Modality::Multimodal), &folds[0]);
    // Normalized speedup must be well above random chance over the space
    // (the dataset here is tiny — a dozen training loops — so we accept a
    // small shortfall vs the default on unlucky folds, but not a collapse).
    let (a, o, n) = mga::core::metrics::summarize(&e.pairs);
    assert!(
        a >= 0.9,
        "predicted configs much slower than default: {a:.3}"
    );
    assert!(o >= a * 0.999, "oracle can't lose to a predictor");
    assert!(n > 0.65, "normalized speedup collapsed: {n:.3}");
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let ds = small_dataset();
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 4, 5);
    let e1 = eval_model_fold(&ds, &task, small_cfg(Modality::Multimodal), &folds[1]);
    let e2 = eval_model_fold(&ds, &task, small_cfg(Modality::Multimodal), &folds[1]);
    assert_eq!(e1.accuracy, e2.accuracy);
    for (p, q) in e1.pairs.iter().zip(&e2.pairs) {
        assert_eq!(p.achieved, q.achieved);
    }
}

#[test]
fn all_modalities_complete_the_pipeline() {
    let ds = small_dataset();
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 4, 5);
    for m in [
        Modality::Multimodal,
        Modality::GraphOnly,
        Modality::VectorOnly,
        Modality::AuxOnly,
    ] {
        let mut cfg = small_cfg(m);
        cfg.epochs = 8;
        let e = eval_model_fold(&ds, &task, cfg, &folds[2]);
        assert!(!e.pairs.is_empty());
        for p in &e.pairs {
            assert!(p.achieved.is_finite() && p.achieved > 0.0);
        }
    }
}

#[test]
fn trained_model_predicts_for_foreign_kernel() {
    // A model trained on the dataset must accept a kernel built by hand
    // (through the same TrainData interface).
    let ds = small_dataset();
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let train: Vec<usize> = (0..ds.samples.len()).collect();
    let model = FusionModel::fit(
        small_cfg(Modality::Multimodal),
        &data,
        &train,
        &task.codec.head_sizes(),
    );
    let preds = model.predict(&data, &[0, 1]);
    assert_eq!(preds[0].len(), 2);
    assert!(preds[0].iter().all(|&p| p < ds.space.len()));
}
