//! Property tests: interpreted IR versus native Rust reference
//! implementations on random inputs — the lowered kernels compute the
//! mathematics they claim to.

use mga::ir::interp::{Interpreter, Memory, Value};
use mga::kernels::archetypes;
use proptest::prelude::*;

fn run_kernel(module: &mga::ir::Module, n: i64, args: Vec<Value>, mem: &mut Memory) {
    let mut full = vec![Value::Int(n)];
    full.extend(args);
    let name = module.functions[0].name.clone();
    Interpreter::with_step_limit(module, 5_000_000)
        .run(&name, full, mem)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_matches_reference(
        src in proptest::collection::vec(-100.0f64..100.0, 4..12),
        flops in 0usize..4,
    ) {
        let n = src.len();
        let (m, _) = archetypes::streaming("s", 1, flops);
        let mut mem = Memory::new();
        let ps = mem.alloc_f64(&src);
        let pd = mem.alloc_f64(&vec![0.0; n]);
        run_kernel(&m, n as i64, vec![ps, pd], &mut mem);
        let got = mem.read_f64(pd).unwrap();
        // Reference: dst[i] = src[i] * Π (1.5 + f)
        let scale: f64 = (0..flops).map(|f| 1.5 + f as f64).product();
        for (g, &s) in got.iter().zip(&src) {
            let want = s * scale;
            prop_assert!((g - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "streaming: got {g}, want {want}");
        }
    }

    #[test]
    fn matmul_matches_reference(
        n in 2usize..6,
        seed in 0u64..1000,
    ) {
        // Pseudo-random matrices from the seed (deterministic).
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let (m, _) = archetypes::matmul("mm", 1);
        let mut mem = Memory::new();
        let pa = mem.alloc_f64(&a);
        let pb = mem.alloc_f64(&b);
        let pc = mem.alloc_f64(&vec![0.0; n * n]);
        run_kernel(&m, n as i64, vec![pa, pb, pc], &mut mem);
        let got = mem.read_f64(pc).unwrap();
        for i in 0..n {
            for j in 0..n {
                let want: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                let g = got[i * n + j];
                prop_assert!((g - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "C[{i}][{j}] = {g}, want {want}");
            }
        }
    }

    #[test]
    fn gather_matches_reference(
        vals in proptest::collection::vec(-50.0f64..50.0, 6..10),
    ) {
        let n = vals.len();
        // A permutation as the index array.
        let idx: Vec<i64> = (0..n as i64).rev().collect();
        let (m, _) = archetypes::gather("g", 0.2, 0.3);
        let mut mem = Memory::new();
        let pv = mem.alloc_f64(&vals);
        let po = mem.alloc_f64(&vec![0.0; n]);
        let pi = mem.alloc_i64(&idx);
        run_kernel(&m, n as i64, vec![pv, po, pi], &mut mem);
        let got = mem.read_f64(po).unwrap();
        for (i, g) in got.iter().enumerate() {
            let v = vals[idx[i] as usize];
            let want = if v > 0.0 { v } else { 0.0 };
            prop_assert!((g - want).abs() < 1e-12, "out[{i}] = {g}, want {want}");
        }
    }

    #[test]
    fn histogram_conserves_mass(
        keys in proptest::collection::vec(0i64..4096, 4..40),
    ) {
        let (m, _) = archetypes::histogram("h");
        let mut mem = Memory::new();
        let pb = mem.alloc_f64(&vec![0.0; 1024]);
        let pk = mem.alloc_i64(&keys);
        run_kernel(&m, keys.len() as i64, vec![pb, pk], &mut mem);
        let bins = mem.read_f64(pb).unwrap();
        let total: f64 = bins.iter().sum();
        prop_assert_eq!(total as usize, keys.len(), "mass not conserved");
        // Each key landed in its masked bin.
        for &k in &keys {
            prop_assert!(bins[(k & 1023) as usize] >= 1.0);
        }
    }

    #[test]
    fn interpreter_is_deterministic(seed in 0u64..500) {
        let n = 5usize;
        let data: Vec<f64> = (0..n).map(|i| (seed as f64 + i as f64) * 0.37).collect();
        let (m, _) = archetypes::streaming("s", 1, 2);
        let run_once = || {
            let mut mem = Memory::new();
            let ps = mem.alloc_f64(&data);
            let pd = mem.alloc_f64(&vec![0.0; n]);
            run_kernel(&m, n as i64, vec![ps, pd], &mut mem);
            mem.read_f64(pd).unwrap()
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
