//! Bitwise parity of the parallel runtime with the sequential path.
//!
//! The pool-backed kernels (`matmul`, `matmul_t`, `t_matmul`, the
//! gather/scatter message-passing primitives) and the fold-parallel CV
//! driver all partition work by *output row* while keeping each row's
//! accumulation order fixed, so the result must be bit-identical for any
//! thread count — including `MGA_THREADS=1`, which forces the fully
//! sequential path.
//!
//! Two layers of checks:
//! * property tests that each output row of a (potentially parallel)
//!   kernel call equals the same row computed alone — row computations
//!   are partition-invariant, so no row split can change results;
//! * an end-to-end subprocess test that re-runs a kernel + CV battery
//!   under `MGA_THREADS=1` and compares bit checksums with the parent
//!   process running at the default thread count.

use mga::core::cv::{run_folds, Fold};
use mga::nn::segment;
use mga::nn::tape::{FusedAct, Tape};
use mga::nn::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Each row of A×B equals the same row computed as a 1×k product:
    /// row panels are independent, so any parallel row partition is
    /// bitwise-identical to the sequential kernel. Shapes straddle the
    /// parallel dispatch threshold (2^21 flops).
    #[test]
    fn matmul_rows_are_partition_invariant(
        seed in 0u64..1000,
        big in proptest::strategy::Just(false),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (m, k, n) = if big || seed % 4 == 0 {
            (160, 100, 160) // 2.56e6 flops: above threshold, parallel
        } else {
            (
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
            )
        };
        let a = rand_tensor(&mut rng, m, k);
        let b = rand_tensor(&mut rng, k, n);
        let full = a.matmul(&b);
        for i in (0..m).step_by((m / 4).max(1)) {
            let row = Tensor::from_vec(1, k, a.row_slice(i).to_vec());
            prop_assert_eq!(
                bits(full.row_slice(i)),
                bits(row.matmul(&b).data()),
                "matmul row {} diverges from its standalone computation", i
            );
        }
    }

    /// Same row-partition invariance for A×Bᵀ (independent dot products).
    #[test]
    fn matmul_t_rows_are_partition_invariant(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7000));
        let (m, k, n) = if seed % 4 == 0 {
            (160, 100, 160)
        } else {
            (
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
            )
        };
        let a = rand_tensor(&mut rng, m, k);
        let b = rand_tensor(&mut rng, n, k);
        let full = a.matmul_t(&b);
        for i in (0..m).step_by((m / 4).max(1)) {
            let row = Tensor::from_vec(1, k, a.row_slice(i).to_vec());
            prop_assert_eq!(
                bits(full.row_slice(i)),
                bits(row.matmul_t(&b).data()),
                "matmul_t row {} diverges", i
            );
        }
    }

    /// Aᵀ×B partitions output rows (= columns of A); k scans all of A's
    /// rows in order, so a single extracted column reproduces its row of
    /// the full product bitwise.
    #[test]
    fn t_matmul_rows_are_partition_invariant(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(14000));
        let (rows, acols, n) = if seed % 4 == 0 {
            (100, 160, 160)
        } else {
            (
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
            )
        };
        let a = rand_tensor(&mut rng, rows, acols);
        let b = rand_tensor(&mut rng, rows, n);
        let full = a.t_matmul(&b);
        for i in (0..acols).step_by((acols / 4).max(1)) {
            let col = Tensor::from_vec(
                rows,
                1,
                (0..rows).map(|r| a.get(r, i)).collect(),
            );
            prop_assert_eq!(
                bits(full.row_slice(i)),
                bits(col.t_matmul(&b).data()),
                "t_matmul row {} diverges", i
            );
        }
    }

    /// Scatter partitions *output* rows; every chunk scans the full index
    /// list in order, so each output row matches a standalone scatter of
    /// just its own contributions. Sizes cross the parallel-elements
    /// threshold (2^16) when seed % 3 == 0.
    #[test]
    fn scatter_rows_are_partition_invariant(
        seed in 0u64..1000,
        mean in proptest::strategy::Just(true),
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(21000));
        let (n_src, cols, out_rows) = if seed % 3 == 0 {
            (1200, 64, 40) // 76800 elements: parallel dispatch
        } else {
            (
                rng.gen_range(1usize..40),
                rng.gen_range(1usize..12),
                rng.gen_range(1usize..10),
            )
        };
        let src = rand_tensor(&mut rng, n_src, cols);
        let index: Vec<u32> =
            (0..n_src).map(|_| rng.gen_range(0u32..out_rows as u32)).collect();
        for &use_mean in &[false, mean] {
            let mut full = vec![0.0f32; out_rows * cols];
            segment::scatter_rows_into(&mut full, out_rows, src.data(), cols, &index, use_mean);
            for r in (0..out_rows).step_by((out_rows / 4).max(1)) {
                // The same row computed alone, from only its contributions
                // (kept in original scan order).
                let mine: Vec<usize> = index
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| g as usize == r)
                    .map(|(i, _)| i)
                    .collect();
                let sub_src: Vec<f32> = mine
                    .iter()
                    .flat_map(|&i| src.row_slice(i).iter().copied())
                    .collect();
                let sub_index = vec![0u32; mine.len()];
                let mut alone = vec![0.0f32; cols];
                segment::scatter_rows_into(&mut alone, 1, &sub_src, cols, &sub_index, use_mean);
                prop_assert_eq!(
                    bits(&full[r * cols..(r + 1) * cols]),
                    bits(&alone),
                    "scatter(mean={}) row {} diverges", use_mean, r
                );
            }
        }
    }

    /// Gathers are pure row copies — parallel or not, the output must be
    /// exactly the indexed source rows.
    #[test]
    fn gather_rows_copy_exactly(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(28000));
        let (n_src, cols, n_idx) = if seed % 3 == 0 {
            (300, 64, 1100)
        } else {
            (
                rng.gen_range(1usize..40),
                rng.gen_range(1usize..12),
                rng.gen_range(1usize..50),
            )
        };
        let src = rand_tensor(&mut rng, n_src, cols);
        let index: Vec<u32> =
            (0..n_idx).map(|_| rng.gen_range(0u32..n_src as u32)).collect();
        let mut out = vec![0.0f32; n_idx * cols];
        segment::gather_rows_into(&mut out, src.data(), cols, &index);
        for (j, &i) in index.iter().enumerate() {
            prop_assert_eq!(
                bits(&out[j * cols..(j + 1) * cols]),
                bits(src.row_slice(i as usize)),
                "gather row {} diverges", j
            );
        }
    }

    /// The fused `linear` op (matmul → bias → activation in one node)
    /// is bitwise-identical to the unfused three-op sequence, values and
    /// gradients both, at sizes on either side of the parallel matmul
    /// threshold.
    #[test]
    fn fused_linear_matches_unfused_bitwise(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(35000));
        let (m, k, n) = if seed % 4 == 0 {
            (160, 100, 160)
        } else {
            (
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
                rng.gen_range(1usize..24),
            )
        };
        let x = rand_tensor(&mut rng, m, k);
        let w = rand_tensor(&mut rng, k, n);
        let b = rand_tensor(&mut rng, 1, n);
        let tgt = Tensor::zeros(m, n);
        for act in [FusedAct::Identity, FusedAct::Relu, FusedAct::Sigmoid, FusedAct::Tanh] {
            let mut ft = Tape::new();
            let (fx, fw, fb) = (ft.leaf(x.clone()), ft.leaf(w.clone()), ft.leaf(b.clone()));
            let fy = ft.linear(fx, fw, fb, act);
            let fl = ft.mse_loss(fy, &tgt);
            ft.backward(fl);

            let mut ut = Tape::new();
            let (ux, uw, ub) = (ut.leaf(x.clone()), ut.leaf(w.clone()), ut.leaf(b.clone()));
            let h = ut.matmul(ux, uw);
            let h = ut.add_bias(h, ub);
            let uy = match act {
                FusedAct::Identity => h,
                FusedAct::Relu => ut.relu(h),
                FusedAct::Sigmoid => ut.sigmoid(h),
                FusedAct::Tanh => ut.tanh(h),
            };
            let ul = ut.mse_loss(uy, &tgt);
            ut.backward(ul);

            prop_assert_eq!(bits(ft.value(fy).data()), bits(ut.value(uy).data()));
            for (fv, uv) in [(fx, ux), (fw, uw), (fb, ub)] {
                prop_assert_eq!(
                    bits(ft.grad(fv).unwrap().data()),
                    bits(ut.grad(uv).unwrap().data()),
                    "fused linear grad diverges for act {:?}", act
                );
            }
        }
    }

    /// The two-product fused `linear2` (the GRU gate shape,
    /// `act(xW + hU + b)`) against the unfused five-op sequence.
    #[test]
    fn fused_linear2_matches_unfused_bitwise(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(42000));
        let (m, k, k2, n) = if seed % 4 == 0 {
            (160, 100, 64, 160)
        } else {
            (
                rng.gen_range(1usize..16),
                rng.gen_range(1usize..16),
                rng.gen_range(1usize..16),
                rng.gen_range(1usize..16),
            )
        };
        let x = rand_tensor(&mut rng, m, k);
        let w = rand_tensor(&mut rng, k, n);
        let h0 = rand_tensor(&mut rng, m, k2);
        let u = rand_tensor(&mut rng, k2, n);
        let b = rand_tensor(&mut rng, 1, n);
        let tgt = Tensor::zeros(m, n);
        for act in [FusedAct::Sigmoid, FusedAct::Tanh] {
            let mut ft = Tape::new();
            let fx = ft.leaf(x.clone());
            let fw = ft.leaf(w.clone());
            let fh = ft.leaf(h0.clone());
            let fu = ft.leaf(u.clone());
            let fb = ft.leaf(b.clone());
            let fy = ft.linear2(fx, fw, fh, fu, fb, act);
            let fl = ft.mse_loss(fy, &tgt);
            ft.backward(fl);

            let mut ut = Tape::new();
            let ux = ut.leaf(x.clone());
            let uw = ut.leaf(w.clone());
            let uh = ut.leaf(h0.clone());
            let uu = ut.leaf(u.clone());
            let ub = ut.leaf(b.clone());
            let xw = ut.matmul(ux, uw);
            let hu = ut.matmul(uh, uu);
            let s = ut.add(xw, hu);
            let s = ut.add_bias(s, ub);
            let uy = match act {
                FusedAct::Sigmoid => ut.sigmoid(s),
                _ => ut.tanh(s),
            };
            let ul = ut.mse_loss(uy, &tgt);
            ut.backward(ul);

            prop_assert_eq!(bits(ft.value(fy).data()), bits(ut.value(uy).data()));
            for (fv, uv) in [(fx, ux), (fw, uw), (fh, uh), (fu, uu), (fb, ub)] {
                prop_assert_eq!(
                    bits(ft.grad(fv).unwrap().data()),
                    bits(ut.grad(uv).unwrap().data()),
                    "fused linear2 grad diverges for act {:?}", act
                );
            }
        }
    }

    /// A replayed epoch (persistent tape, `reset()` + rebuild into
    /// recycled buffers) is bitwise-identical to running that epoch on a
    /// fresh tape — and steady-state replays allocate nothing.
    #[test]
    fn replayed_epoch_matches_fresh_tape_bitwise(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(49000));
        let x = rand_tensor(&mut rng, 12, 8);
        let w0 = rand_tensor(&mut rng, 8, 6);
        let b0 = rand_tensor(&mut rng, 1, 6);
        let targets: Vec<u32> = (0..12).map(|_| rng.gen_range(0u32..6)).collect();

        let epoch = |tape: &mut Tape, w: &Tensor, b: &Tensor| -> (f32, Tensor, Tensor) {
            let xv = tape.leaf_ref(&x);
            let wv = tape.leaf(w.clone());
            let bv = tape.leaf(b.clone());
            let y = tape.linear(xv, wv, bv, FusedAct::Tanh);
            let loss = tape.softmax_cross_entropy(y, &targets);
            tape.backward(loss);
            let l = tape.value(loss).get(0, 0);
            let gw = tape.grad(wv).unwrap().clone();
            let gb = tape.grad(bv).unwrap().clone();
            (l, gw, gb)
        };
        let step = |w: &mut Tensor, b: &mut Tensor, gw: &Tensor, gb: &Tensor| {
            w.axpy(-0.1, gw);
            b.axpy(-0.1, gb);
        };

        let mut persistent = Tape::new();
        let (mut pw, mut pb) = (w0.clone(), b0.clone());
        let (mut fw, mut fb) = (w0.clone(), b0.clone());
        for e in 0..4 {
            persistent.reset();
            let (pl, pgw, pgb) = epoch(&mut persistent, &pw, &pb);
            if e >= 1 {
                prop_assert_eq!(
                    persistent.pass_alloc_bytes(), 0,
                    "replay epoch {} allocated", e
                );
            }
            let mut fresh = Tape::new();
            let (fl, fgw, fgb) = epoch(&mut fresh, &fw, &fb);
            prop_assert_eq!(pl.to_bits(), fl.to_bits(), "loss diverges at epoch {}", e);
            prop_assert_eq!(bits(pgw.data()), bits(fgw.data()));
            prop_assert_eq!(bits(pgb.data()), bits(fgb.data()));
            step(&mut pw, &mut pb, &pgw, &pgb);
            step(&mut fw, &mut fb, &fgw, &fgb);
        }
    }

    /// Fold-parallel CV returns exactly what the sequential fold loop
    /// returns, in fold order, when the evaluation is fold-seeded.
    #[test]
    fn run_folds_matches_sequential_map(seed in 0u64..1000, k in 2usize..7) {
        let folds: Vec<Fold> = (0..k)
            .map(|f| Fold {
                train: (0..30).filter(|i| i % k != f).collect(),
                val: (0..30).filter(|i| i % k == f).collect(),
            })
            .collect();
        let eval = |fi: usize, fold: &Fold| -> Vec<u32> {
            // Real tensor work, seeded only by (outer seed, fold index).
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(fi as u64));
            let a = rand_tensor(&mut rng, fold.train.len().max(1), 8);
            let b = rand_tensor(&mut rng, 8, fold.val.len().max(1));
            a.matmul(&b).data().iter().map(|x| x.to_bits()).collect()
        };
        let sequential: Vec<Vec<u32>> =
            folds.iter().enumerate().map(|(fi, f)| eval(fi, f)).collect();
        let parallel = run_folds(&folds, eval);
        prop_assert_eq!(parallel, sequential);
    }
}

/// Bit checksum battery exercising every pool-backed code path at sizes
/// above the parallel dispatch thresholds, plus a fold-parallel CV run.
fn battery() -> Vec<u64> {
    let mut sums = Vec::new();
    let mut push = |data: &[f32]| {
        let mut h = 0xcbf29ce484222325u64;
        for &x in data {
            h = (h ^ (x.to_bits() as u64)).wrapping_mul(0x100000001b3);
        }
        sums.push(h);
    };
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(4242 + seed);
        let a = rand_tensor(&mut rng, 160, 100);
        let b = rand_tensor(&mut rng, 100, 160);
        let c = rand_tensor(&mut rng, 160, 100);
        let d = rand_tensor(&mut rng, 160, 160);
        push(a.matmul(&b).data());
        push(a.matmul_t(&c).data());
        push(d.t_matmul(&b.t_matmul(&b)).data());

        let src = rand_tensor(&mut rng, 1500, 64);
        let index: Vec<u32> = (0..1500).map(|_| rng.gen_range(0u32..37)).collect();
        let mut sum = vec![0.0f32; 40 * 64];
        segment::scatter_rows_into(&mut sum, 40, src.data(), 64, &index, false);
        push(&sum);
        let mut mean = vec![0.0f32; 40 * 64];
        segment::scatter_rows_into(&mut mean, 40, src.data(), 64, &index, true);
        push(&mean);
        let mut gathered = vec![0.0f32; 1500 * 64];
        segment::gather_rows_into(&mut gathered, &mean[..], 64, &index);
        push(&gathered);
    }
    // Fold-parallel CV on top of parallel kernels (nested pool use).
    let folds: Vec<Fold> = (0..5)
        .map(|f| Fold {
            train: (0..60).filter(|i| i % 5 != f).collect(),
            val: (0..60).filter(|i| i % 5 == f).collect(),
        })
        .collect();
    let outs = run_folds(&folds, |fi, fold| {
        let mut rng = StdRng::seed_from_u64(77 + fi as u64);
        let a = rand_tensor(&mut rng, fold.train.len() * 4, 64);
        let b = rand_tensor(&mut rng, 64, 160);
        a.matmul(&b)
    });
    for t in &outs {
        push(t.data());
    }
    // Fused forward + in-place backward above the parallel matmul
    // threshold, run as a 3-epoch persistent-tape training loop so the
    // replay path itself is part of the cross-thread-count checksum.
    let mut rng = StdRng::seed_from_u64(9090);
    let x = rand_tensor(&mut rng, 160, 100);
    let mut w = rand_tensor(&mut rng, 100, 160);
    let mut b = rand_tensor(&mut rng, 1, 160);
    let targets: Vec<u32> = (0..160).map(|_| rng.gen_range(0u32..160)).collect();
    let mut tape = Tape::new();
    for _ in 0..3 {
        tape.reset();
        let xv = tape.leaf_ref(&x);
        let wv = tape.leaf(w.clone());
        let bv = tape.leaf(b.clone());
        let y = tape.linear(xv, wv, bv, FusedAct::Relu);
        let loss = tape.softmax_cross_entropy(y, &targets);
        tape.backward(loss);
        push(tape.value(y).data());
        let gw = tape.grad(wv).expect("weight grad").clone();
        let gb = tape.grad(bv).expect("bias grad").clone();
        push(gw.data());
        w.axpy(-0.05, &gw);
        b.axpy(-0.05, &gb);
    }
    sums
}

/// End-to-end check that `MGA_THREADS=1` (fully sequential path) matches
/// the default parallel run bitwise: the test re-executes itself in a
/// child process with the env override and compares checksums, since the
/// pool reads `MGA_THREADS` once per process.
#[test]
fn mga_threads_1_matches_default_bitwise() {
    const DUMP: &str = "MGA_PARITY_DUMP";
    let sums = battery();
    if let Ok(path) = std::env::var(DUMP) {
        // Child: record and exit.
        let text: Vec<String> = sums.iter().map(|s| s.to_string()).collect();
        std::fs::write(path, text.join("\n")).expect("write parity dump");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "4"] {
        let dump =
            std::env::temp_dir().join(format!("mga_parity_{}_{threads}.txt", std::process::id()));
        let status = std::process::Command::new(&exe)
            .args([
                "--exact",
                "mga_threads_1_matches_default_bitwise",
                "--nocapture",
            ])
            .env("MGA_THREADS", threads)
            .env(DUMP, &dump)
            .status()
            .expect("spawn thread-count child");
        assert!(status.success(), "MGA_THREADS={threads} child run failed");
        let text = std::fs::read_to_string(&dump).expect("read parity dump");
        let _ = std::fs::remove_file(&dump);
        let child_sums: Vec<u64> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(
            sums, child_sums,
            "default and MGA_THREADS={threads} runs disagree bitwise"
        );
    }
}
