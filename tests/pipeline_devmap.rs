//! Integration: the OpenCL device-mapping pipeline end to end.

use mga::core::dataset::OclDataset;
use mga::core::devmap::run_devmap;
use mga::core::model::{Modality, ModelConfig};
use mga::dae::DaeConfig;
use mga::gnn::GnnConfig;
use mga::kernels::catalog::opencl_catalog;
use mga::sim::gpu::GpuSpec;

fn quick_cfg(modality: Modality) -> ModelConfig {
    ModelConfig {
        modality,
        use_aux: true,
        gnn: GnnConfig {
            dim: 12,
            layers: 1,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 6,
            epochs: 20,
            ..DaeConfig::default()
        },
        hidden: 24,
        epochs: 20,
        lr: 0.02,
        seed: 17,
    }
}

#[test]
fn devmap_models_beat_chance_on_both_gpus() {
    let specs: Vec<_> = opencl_catalog().into_iter().step_by(4).collect();
    for gpu in [GpuSpec::gtx_970(), GpuSpec::tahiti_7970()] {
        let ds = OclDataset::build(specs.clone(), gpu, 16, 9);
        let labels = ds.labels();
        let ones = labels.iter().filter(|&&l| l == 1).count();
        assert!(ones > 0 && ones < labels.len(), "degenerate dataset");
        let res = run_devmap(&ds, &quick_cfg(Modality::Multimodal), 3, 2);
        // Must clearly beat coin flipping and track the oracle's speedup.
        assert!(res.accuracy > 0.7, "accuracy {} too low", res.accuracy);
        assert!(
            res.speedup > 1.0,
            "mapping speedup {} not above static",
            res.speedup
        );
        assert!(res.speedup <= res.oracle_speedup + 1e-9);
    }
}

#[test]
fn devmap_speedup_definition_is_consistent() {
    let specs: Vec<_> = opencl_catalog().into_iter().step_by(6).collect();
    let ds = OclDataset::build(specs, GpuSpec::gtx_970(), 16, 9);
    // Oracle predictions give exactly the oracle geomean speedup.
    let oracle_pred = ds.labels();
    assert!((ds.geomean_speedup(&oracle_pred) - ds.geomean_oracle_speedup()).abs() < 1e-12);
    // The all-static mapping gives exactly 1.0.
    let static_pred = vec![usize::from(ds.static_device_is_gpu()); ds.samples.len()];
    assert!((ds.geomean_speedup(&static_pred) - 1.0).abs() < 1e-12);
}

#[test]
fn edge_case_kernels_flip_with_input_size() {
    // The paper's makea observation must be visible in the dataset:
    // at least one kernel whose label differs across its input sizes.
    let specs: Vec<_> = opencl_catalog().into_iter().collect();
    let ds = OclDataset::build(specs, GpuSpec::tahiti_7970(), 16, 9);
    let mut by_kernel: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for s in &ds.samples {
        by_kernel.entry(s.kernel).or_default().push(s.label);
    }
    let flippers = by_kernel
        .values()
        .filter(|ls| ls.contains(&0) && ls.contains(&1))
        .count();
    assert!(
        flippers >= 5,
        "only {flippers} kernels flip device with input size; the makea edge case is missing"
    );
}
