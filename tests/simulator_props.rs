//! Property tests: execution-model invariants over the benchmark catalog
//! and random configurations.

use mga::kernels::catalog::{opencl_catalog, openmp_catalog};
use mga::sim::cpu::CpuSpec;
use mga::sim::gpu::{run_mapping, GpuSpec};
use mga::sim::openmp::{simulate, OmpConfig, Schedule};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = OmpConfig> {
    (
        1u32..=20,
        prop_oneof![
            Just(Schedule::Static),
            Just(Schedule::Dynamic),
            Just(Schedule::Guided)
        ],
        prop_oneof![Just(0u32), Just(1), Just(8), Just(64), Just(512)],
    )
        .prop_map(|(threads, schedule, chunk)| OmpConfig {
            threads,
            schedule,
            chunk,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runtimes_finite_positive_deterministic(
        kernel_idx in 0usize..60,
        ws_exp in 12.0f64..29.0,
        cfg in config_strategy(),
    ) {
        let cat = openmp_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let ws = ws_exp.exp2();
        let cpu = CpuSpec::skylake_4114();
        let r1 = simulate(spec, ws, &cfg, &cpu);
        let r2 = simulate(spec, ws, &cfg, &cpu);
        prop_assert!(r1.runtime.is_finite() && r1.runtime > 0.0);
        prop_assert_eq!(r1.runtime.to_bits(), r2.runtime.to_bits());
        prop_assert!(r1.counters.l1_dcm >= 0.0);
        prop_assert!(r1.counters.l2_tcm <= r1.counters.l1_dcm,
            "L2 misses can't exceed L1 misses: {} vs {}",
            r1.counters.l2_tcm, r1.counters.l1_dcm);
        prop_assert!(r1.counters.l3_ldm <= r1.counters.l2_tcm + 1e-9,
            "L3 load misses can't exceed L2 misses");
        prop_assert!(r1.counters.br_msp <= r1.counters.br_ins);
    }

    #[test]
    fn more_work_never_runs_faster(
        kernel_idx in 0usize..60,
        ws_exp in 13.0f64..26.0,
        cfg in config_strategy(),
    ) {
        let cat = openmp_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::comet_lake();
        let small = simulate(spec, ws_exp.exp2(), &cfg, &cpu).runtime;
        let large = simulate(spec, (ws_exp + 2.5).exp2(), &cfg, &cpu).runtime;
        // 6.5x more working set must not be faster (3% noise margin).
        prop_assert!(large > small * 0.9, "{}: {small} -> {large}", spec.name);
    }

    #[test]
    fn single_thread_coarse_chunks_have_no_parallel_overheads(kernel_idx in 0usize..60) {
        let cat = openmp_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::comet_lake();
        let ws = 1e7;
        // At t=1 with coarse chunks the schedule choice must be nearly
        // irrelevant (fine-grained dynamic still pays real dispatch cost,
        // exactly as a real OpenMP runtime does).
        let s = simulate(spec, ws, &OmpConfig { threads: 1, schedule: Schedule::Static, chunk: 0 }, &cpu).runtime;
        let d = simulate(spec, ws, &OmpConfig { threads: 1, schedule: Schedule::Guided, chunk: 512 }, &cpu).runtime;
        prop_assert!((s / d - 1.0).abs() < 0.25, "t=1 schedule gap too large: {s} vs {d}");
    }

    #[test]
    fn oracle_is_minimal(kernel_idx in 0usize..45, ws_exp in 13.0f64..28.0) {
        let cat = openmp_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::comet_lake();
        let space = mga::sim::openmp::thread_space(&cpu);
        let ws = ws_exp.exp2();
        let (_, best_t) = mga::sim::openmp::oracle_config(spec, ws, &space, &cpu);
        for cfg in &space {
            prop_assert!(simulate(spec, ws, cfg, &cpu).runtime >= best_t);
        }
    }

    #[test]
    fn device_mapping_deterministic_and_positive(
        kernel_idx in 0usize..80,
        transfer_exp in 13.0f64..28.0,
        wg in prop_oneof![Just(64u32), Just(128), Just(256)],
    ) {
        let cat = opencl_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::tahiti_7970();
        let a = run_mapping(spec, transfer_exp.exp2(), wg, &cpu, &gpu);
        let b = run_mapping(spec, transfer_exp.exp2(), wg, &cpu, &gpu);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.cpu_time > 0.0 && a.gpu_time > 0.0);
        prop_assert!(a.best_time() <= a.cpu_time && a.best_time() <= a.gpu_time);
    }

    #[test]
    fn bigger_transfers_never_speed_up_the_gpu(
        kernel_idx in 0usize..80,
        transfer_exp in 14.0f64..25.0,
    ) {
        let cat = opencl_catalog();
        let spec = &cat[kernel_idx % cat.len()];
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::gtx_970();
        let small = run_mapping(spec, transfer_exp.exp2(), 128, &cpu, &gpu).gpu_time;
        let large = run_mapping(spec, (transfer_exp + 2.0).exp2(), 128, &cpu, &gpu).gpu_time;
        prop_assert!(large > small * 0.9);
    }
}
