//! Tracing must be observation-only: enabling the span tracer cannot
//! change a single bit of any computation.
//!
//! The battery runs pool-backed tensor kernels plus a small end-to-end
//! `FusionModel` fit/predict (exercising the `model.*`, `gnn.*`, `dae.*`
//! and `pool.dispatch` spans), checksummed bitwise. It runs once with
//! tracing disabled and once with in-memory span aggregation enabled;
//! the checksums must be identical, and the second run must actually
//! have recorded the instrumented spans.

use mga::core::model::{FusionModel, Modality, ModelConfig};
use mga::core::omp::OmpTask;
use mga::core::OmpDataset;
use mga::nn::tensor::Tensor;
use mga::sim::cpu::CpuSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

fn fnv(sums: &mut Vec<u64>, data: &[f32]) {
    let mut h = 0xcbf29ce484222325u64;
    for &x in data {
        h = (h ^ (x.to_bits() as u64)).wrapping_mul(0x100000001b3);
    }
    sums.push(h);
}

fn small_dataset() -> OmpDataset {
    let cpu = CpuSpec::comet_lake();
    let specs: Vec<_> = mga::kernels::catalog::openmp_thread_dataset()
        .into_iter()
        .take(6)
        .collect();
    let sizes: Vec<f64> = mga::kernels::inputs::openmp_input_sizes()
        .into_iter()
        .step_by(10)
        .collect();
    let space = mga::sim::openmp::thread_space(&cpu);
    OmpDataset::build(specs, sizes, space, cpu, 16, 7)
}

fn small_cfg() -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: mga::gnn::GnnConfig {
            dim: 8,
            layers: 2,
            update: mga::gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: mga::dae::DaeConfig {
            input_dim: 16,
            hidden_dim: 10,
            code_dim: 8,
            epochs: 6,
            ..mga::dae::DaeConfig::default()
        },
        hidden: 12,
        epochs: 5,
        lr: 0.02,
        seed: 7,
    }
}

/// Pool-backed kernels above the parallel thresholds + a tiny end-to-end
/// model fit/predict, all reduced to bit checksums.
fn battery(ds: &OmpDataset) -> Vec<u64> {
    let mut sums = Vec::new();
    let mut rng = StdRng::seed_from_u64(4242);
    let a = rand_tensor(&mut rng, 160, 100);
    let b = rand_tensor(&mut rng, 100, 160);
    fnv(&mut sums, a.matmul(&b).data());
    fnv(&mut sums, a.t_matmul(&a.matmul(&b)).data());

    let task = OmpTask::new(ds);
    let data = task.train_data(ds);
    let n = ds.samples.len();
    let train: Vec<usize> = (0..n).filter(|i| i % 4 != 0).collect();
    let val: Vec<usize> = (0..n).filter(|i| i % 4 == 0).collect();
    let model = FusionModel::fit(small_cfg(), &data, &train, &task.codec.head_sizes());
    fnv(&mut sums, &[model.final_loss]);
    for head in model.predict(&data, &val) {
        let as_f32: Vec<f32> = head.iter().map(|&p| p as f32).collect();
        fnv(&mut sums, &as_f32);
    }
    sums
}

#[test]
fn tracing_does_not_change_results() {
    let ds = small_dataset();
    mga::obs::trace::set_enabled(false);
    let plain = battery(&ds);

    mga::obs::trace::set_enabled(true);
    mga::obs::trace::reset();
    let traced = battery(&ds);
    mga::obs::trace::set_enabled(false);

    assert_eq!(
        plain, traced,
        "enabling the span tracer changed computed results"
    );

    // The traced run must actually have recorded the instrumented spans.
    let report = mga::obs::trace::report();
    for name in ["model.fit", "train_epoch", "dae.pretrain"] {
        assert!(
            report.iter().any(|s| s.name == name),
            "span {name:?} missing from the aggregated tree: {:?}",
            report.iter().map(|s| s.path.clone()).collect::<Vec<_>>()
        );
    }
    // train_epoch ran once per configured epoch.
    let epochs = report
        .iter()
        .filter(|s| s.name == "train_epoch")
        .map(|s| s.count)
        .sum::<u64>();
    assert_eq!(epochs, small_cfg().epochs as u64);
}
