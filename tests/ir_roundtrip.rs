//! Property tests: IR printer/parser round trips and verifier stability
//! over the whole (randomized) kernel-archetype space.

use mga::ir::parser::parse_module;
use mga::ir::printer::module_str;
use mga::ir::verify_module;
use mga::kernels::archetypes;
use proptest::prelude::*;

/// Build an archetype module from a small parameter tuple.
fn arch_module(which: u8, a: usize, b: usize) -> mga::ir::Module {
    let name = format!("k{which}_{a}_{b}");
    match which % 8 {
        0 => archetypes::streaming(&name, 1 + a % 4, b % 5).0,
        1 => archetypes::matmul(&name, 1 + a % 3).0,
        2 => archetypes::stencil(&name, 2 + a % 2, 3 + b % 24).0,
        3 => archetypes::reduction(&name, 1 + a % 3, b.is_multiple_of(2)).0,
        4 => archetypes::triangular(&name, 0.05 + (b % 10) as f64 / 20.0).0,
        5 => archetypes::gather(&name, 0.1 + (a % 5) as f64 / 10.0, (b % 10) as f64 / 10.0).0,
        6 => archetypes::nbody(&name, 8 + (a % 8) as i64 * 8).0,
        _ => archetypes::sortlike(&name).0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn print_parse_print_is_fixed_point(which in 0u8..8, a in 0usize..8, b in 0usize..24) {
        let m = arch_module(which, a, b);
        let t1 = module_str(&m);
        let p1 = parse_module(&t1).expect("parse printed module");
        let t2 = module_str(&p1);
        let p2 = parse_module(&t2).expect("reparse normalized module");
        let t3 = module_str(&p2);
        prop_assert_eq!(t2, t3);
    }

    #[test]
    fn parsed_modules_verify(which in 0u8..8, a in 0usize..8, b in 0usize..24) {
        let m = arch_module(which, a, b);
        verify_module(&m).expect("generated module verifies");
        let p = parse_module(&module_str(&m)).expect("parse");
        verify_module(&p).expect("parsed module verifies");
    }

    #[test]
    fn parsing_preserves_structure(which in 0u8..8, a in 0usize..8, b in 0usize..24) {
        let m = arch_module(which, a, b);
        let p = parse_module(&module_str(&m)).expect("parse");
        prop_assert_eq!(m.functions.len(), p.functions.len());
        for (f1, f2) in m.functions.iter().zip(&p.functions) {
            prop_assert_eq!(&f1.name, &f2.name);
            prop_assert_eq!(f1.blocks.len(), f2.blocks.len());
            prop_assert_eq!(f1.num_instrs(), f2.num_instrs());
            prop_assert_eq!(f1.params.len(), f2.params.len());
            // Same opcode multiset.
            let mut ops1: Vec<_> = f1.instrs.iter().map(|i| i.op).collect();
            let mut ops2: Vec<_> = f2.instrs.iter().map(|i| i.op).collect();
            ops1.sort();
            ops2.sort();
            prop_assert_eq!(ops1, ops2);
        }
    }

    #[test]
    fn graphs_validate_for_all_archetypes(which in 0u8..8, a in 0usize..8, b in 0usize..24) {
        let m = arch_module(which, a, b);
        let g = mga::graph::build_module_graph(&m);
        g.validate().expect("graph invariants");
        prop_assert!(g.num_nodes() > 0);
        // Instruction count in the graph matches the module.
        prop_assert_eq!(g.instruction_nodes().len(), m.num_instrs());
        for n in &g.nodes {
            prop_assert!(n.vocab_index() < mga::graph::Node::VOCAB_SIZE);
        }
    }

    #[test]
    fn triple_extraction_total_and_bounded(which in 0u8..8, a in 0usize..8, b in 0usize..24) {
        let m = arch_module(which, a, b);
        let triples = mga::vec::extract_triples(&m);
        prop_assert!(!triples.is_empty());
        for t in triples {
            prop_assert!((t.head as usize) < mga::vec::NUM_ENTITIES);
            prop_assert!((t.tail as usize) < mga::vec::NUM_ENTITIES);
            prop_assert!((t.rel as usize) < mga::vec::NUM_RELATIONS);
        }
    }
}
