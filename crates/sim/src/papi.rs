//! The extended PAPI counter set and the §4.1.1 counter-space reduction.
//!
//! "All systems used for this experiment report >50 preset counters. We
//! collected 20 PAPI counters … To improve model convergence, we used
//! Pearson's correlation and identified five performance counters that
//! are most correlated to execution time" (§4.1.1, following Alcaraz et
//! al.'s counter-space reduction work).
//!
//! [`ExtendedCounters`] models a 16-counter preset superset, all derived
//! from the same execution model as [`crate::Counters`]; [`select_counters`]
//! runs the Pearson reduction over a profiled dataset. On this substrate
//! the reduction recovers the paper's five (cache-miss and branch
//! counters dominate the correlation with runtime), which is the
//! consistency check `counter_selection` prints.

use crate::counters::Counters;
use crate::cpu::CpuSpec;
use crate::openmp::{simulate, OmpConfig, RunResult};
use mga_kernels::spec::KernelSpec;

/// Names of the extended preset counters, in [`ExtendedCounters::values`]
/// order.
pub const EXTENDED_NAMES: [&str; 16] = [
    "PAPI_L1_DCM", // L1 data cache misses
    "PAPI_L2_TCM", // L2 total cache misses
    "PAPI_L3_LDM", // L3 load misses
    "PAPI_BR_INS", // branch instructions retired
    "PAPI_BR_MSP", // mispredicted branches
    "PAPI_L1_DCH", // L1 data cache hits
    "PAPI_L2_TCH", // L2 total cache hits
    "PAPI_L3_TCA", // L3 total accesses
    "PAPI_TLB_DM", // data TLB misses
    "PAPI_TOT_INS",
    "PAPI_TOT_CYC",
    "PAPI_FP_INS",
    "PAPI_LD_INS",
    "PAPI_SR_INS",
    "PAPI_RES_STL", // resource stall cycles
    "PAPI_MEM_WCY", // memory write stall cycles
];

/// Index of each of the paper's five selected counters within
/// [`EXTENDED_NAMES`].
pub const PAPER_FIVE: [usize; 5] = [0, 1, 2, 3, 4];

/// A 16-counter profiling sample (the "collect everything" phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedCounters {
    pub values: [f64; 16],
}

impl ExtendedCounters {
    /// Derive the extended set from a profiled run of `spec`.
    ///
    /// The first five entries are exactly the [`Counters`] the model
    /// consumes; the rest are consistent derived quantities (hits =
    /// accesses − misses, instruction mixes scaled by iteration counts,
    /// stall cycles proportional to memory-bound time).
    pub fn from_run(spec: &KernelSpec, result: &RunResult) -> ExtendedCounters {
        let c: &Counters = &result.counters;
        let mix = &spec.mix;
        // Total memory accesses implied by the branch count (a stable
        // per-iteration proxy: branches+1 ≈ one loop iteration).
        let iters = (c.br_ins / (mix.branches + 1.0).max(1.0)).max(1.0);
        let accesses = iters * mix.mem_ops();
        let loads = iters * mix.loads;
        let stores = iters * mix.stores;
        let tot_ins =
            iters * (mix.flops + mix.int_ops + mix.branches + mix.mem_ops() + mix.calls + 1.0);
        let fp_ins = iters * mix.flops;
        let l1_dch = (accesses - c.l1_dcm).max(0.0);
        let l2_tch = (c.l1_dcm - c.l2_tcm).max(0.0);
        let l3_tca = c.l2_tcm;
        // Derived counters carry their own measurement noise so they are
        // correlated with — not duplicates of — the miss counters.
        let jitter = |salt: u64| crate::hash_noise(&[result.runtime.to_bits(), salt], 0.25);
        let tlb_dm = c.l3_ldm * 0.11 * jitter(1); // page-granularity misses trail LLC misses
        let res_stl = (c.l3_ldm * 48.0 + iters * 2.0) * jitter(2); // ~DRAM latency per miss
        let mem_wcy = (stores * 0.8 + c.l2_tcm * 4.0) * jitter(3);
        ExtendedCounters {
            values: [
                c.l1_dcm, c.l2_tcm, c.l3_ldm, c.br_ins, c.br_msp, l1_dch, l2_tch, l3_tca, tlb_dm,
                tot_ins, c.ref_cyc, fp_ins, loads, stores, res_stl, mem_wcy,
            ],
        }
    }
}

/// Pearson correlation coefficient of two equal-length series.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two observations");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Counters excluded from the ranking: `TOT_CYC` *is* the target
/// (runtime × frequency) and `TOT_INS` is the volume control variable.
pub const EXCLUDED_FROM_RANKING: [usize; 2] = [9, 10];

/// Residual of `x` after regressing out `z` (ordinary least squares with
/// intercept) — the tool behind partial correlation.
pub fn residualize(x: &[f64], z: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), z.len());
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let mz = z.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vz = 0.0;
    for (a, b) in x.iter().zip(z) {
        cov += (a - mx) * (b - mz);
        vz += (b - mz) * (b - mz);
    }
    let beta = if vz > 0.0 { cov / vz } else { 0.0 };
    x.iter()
        .zip(z)
        .map(|(a, b)| (a - mx) - beta * (b - mz))
        .collect()
}

/// Profile `specs` at every input size (default configuration) and rank
/// the extended counters by |partial Pearson correlation| with execution
/// time, controlling for total retired instructions.
///
/// Every raw count scales with problem size, so plain correlations are
/// uniformly ≈1 and meaningless; the paper's underlying counter-space
/// reduction (Alcaraz et al.) likewise separates *behaviour* from
/// *volume*. Residualizing log counters and log runtime against log
/// `TOT_INS` leaves the per-instruction behaviour: miss and misprediction
/// counters stay correlated with the runtime residual (they drive CPI),
/// hit counters do not. Returns `(counter index, |r|)` sorted descending.
pub fn rank_counters(specs: &[KernelSpec], sizes: &[f64], cpu: &CpuSpec) -> Vec<(usize, f64)> {
    let (cols, runtime) = profile_matrix(specs, sizes, cpu);
    let volume = &cols[9];
    let target = residualize(&runtime, volume);
    let mut ranked: Vec<(usize, f64)> = cols
        .iter()
        .enumerate()
        .filter(|(k, _)| !EXCLUDED_FROM_RANKING.contains(k))
        .map(|(k, col)| {
            let r = residualize(col, volume);
            (k, pearson(&r, &target).abs())
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    ranked
}

/// Log-space profiling matrix: per counter a column over all
/// (kernel, input) samples, plus the log-runtime target.
fn profile_matrix(specs: &[KernelSpec], sizes: &[f64], cpu: &CpuSpec) -> (Vec<Vec<f64>>, Vec<f64>) {
    let cfg = OmpConfig::default_for(cpu);
    let mut runtime = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); EXTENDED_NAMES.len()];
    for spec in specs {
        for &ws in sizes {
            let r = simulate(spec, ws, &cfg, cpu);
            runtime.push(r.runtime.max(1e-12).ln());
            let ext = ExtendedCounters::from_run(spec, &r);
            for (k, v) in ext.values.iter().enumerate() {
                cols[k].push((v.max(0.0) + 1.0).ln());
            }
        }
    }
    (cols, runtime)
}

/// The §4.1.1 counter-space reduction, following Alcaraz et al.: rank by
/// correlation with execution time, then walk the ranking keeping a
/// counter only when it is not redundant with (|r| < `redundancy` against)
/// every counter already kept. Returns the kept indices, best first.
pub fn select_counters_dedup(
    specs: &[KernelSpec],
    sizes: &[f64],
    cpu: &CpuSpec,
    k: usize,
    redundancy: f64,
) -> Vec<usize> {
    let (cols, _) = profile_matrix(specs, sizes, cpu);
    let volume = cols[9].clone();
    let resid: Vec<Vec<f64>> = cols.iter().map(|c| residualize(c, &volume)).collect();
    let ranked = rank_counters(specs, sizes, cpu);
    let mut kept: Vec<usize> = Vec::new();
    for (idx, _) in &ranked {
        if kept.len() >= k {
            break;
        }
        let redundant = kept
            .iter()
            .any(|&j| pearson(&resid[*idx], &resid[j]).abs() >= redundancy);
        if !redundant {
            kept.push(*idx);
        }
    }
    // If the candidate pool ran dry before k non-redundant counters were
    // found, backfill by rank (the usual practice: better a correlated
    // counter than none).
    for (idx, _) in &ranked {
        if kept.len() >= k {
            break;
        }
        if !kept.contains(idx) {
            kept.push(*idx);
        }
    }
    kept
}

/// The §4.1.1 reduction with the default redundancy threshold.
pub fn select_counters(specs: &[KernelSpec], sizes: &[f64], cpu: &CpuSpec, k: usize) -> Vec<usize> {
    select_counters_dedup(specs, sizes, cpu, k, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::openmp_catalog;

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        let c = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &c), 0.0);
    }

    #[test]
    fn extended_counters_are_consistent() {
        let cat = openmp_catalog();
        let spec = cat.iter().find(|s| s.app == "gemm").unwrap();
        let cpu = CpuSpec::comet_lake();
        let r = simulate(spec, 1e7, &OmpConfig::default_for(&cpu), &cpu);
        let ext = ExtendedCounters::from_run(spec, &r);
        // First five match the selected counters exactly.
        assert_eq!(ext.values[0], r.counters.l1_dcm);
        assert_eq!(ext.values[4], r.counters.br_msp);
        // Hits are nonnegative and hierarchy-consistent.
        assert!(ext.values[5] >= 0.0, "L1 hits");
        assert!(ext.values[6] >= 0.0, "L2 hits");
        // Total instructions dominate any single class.
        assert!(ext.values[9] >= ext.values[11]);
        assert!(ext.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reduction_selects_miss_and_branch_counters() {
        // The paper's Polybench-based reduction keeps L1/L2 misses, L3
        // load misses and the two branch counters. Ours must rank those
        // five in the top half and produce strongly correlated leaders.
        let specs: Vec<_> = openmp_catalog()
            .into_iter()
            .filter(|s| s.suite == mga_kernels::Suite::Polybench)
            .step_by(2)
            .collect();
        let sizes: Vec<f64> = mga_kernels::inputs::openmp_input_sizes()
            .into_iter()
            .step_by(4)
            .collect();
        let cpu = CpuSpec::comet_lake();
        let ranked = rank_counters(&specs, &sizes, &cpu);
        assert!(
            ranked[0].1 > 0.5,
            "top counter weakly correlated: {:?}",
            ranked[0]
        );
        // The excluded trivial counter never appears.
        assert!(ranked
            .iter()
            .all(|(i, _)| !EXCLUDED_FROM_RANKING.contains(i)));
        let five = select_counters(&specs, &sizes, &cpu, 5);
        assert_eq!(five.len(), 5, "selection returned {five:?}");
        let names: Vec<&str> = five.iter().map(|&i| EXTENDED_NAMES[i]).collect();
        // The reduction must span hardware units, not pick five copies of
        // the same signal: at least one memory-subsystem counter and at
        // least one branch-unit counter.
        let memory = [0usize, 1, 2, 7, 8, 14, 15];
        let branch = [3usize, 4];
        assert!(
            five.iter().any(|i| memory.contains(i)),
            "no memory counter kept: {names:?}"
        );
        assert!(
            five.iter().any(|i| branch.contains(i)),
            "no branch counter kept: {names:?}"
        );
        // Overlap with the paper's five is expected but not forced to be
        // exact (the redundancy walk may keep a correlated stand-in).
        let overlap = five.iter().filter(|i| PAPER_FIVE.contains(i)).count();
        assert!(
            overlap >= 1,
            "selection shares nothing with the paper: {names:?}"
        );
        // Backfill keeps the requested width even at a hostile threshold.
        let tight = select_counters_dedup(&specs, &sizes, &cpu, 5, 0.5);
        assert_eq!(tight.len(), 5);
    }
}
