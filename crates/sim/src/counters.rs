//! The performance counters the paper selects.
//!
//! §4.1.1: "The selected performance counters are L1, L2 cache misses, L3
//! load misses, number of retired branch instructions, and mispredicted
//! branches across all loops, inputs and experiments." We add reference
//! cycles, which §4.1.5 uses to normalize branch mispredictions.

/// One profiling sample of the five selected PAPI counters (+ cycles).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Counters {
    pub l1_dcm: f64,
    pub l2_tcm: f64,
    pub l3_ldm: f64,
    pub br_ins: f64,
    pub br_msp: f64,
    /// Reference clock cycles.
    pub ref_cyc: f64,
}

impl Counters {
    /// The feature vector order used across the models.
    pub fn to_features(&self) -> [f64; 5] {
        [
            self.l1_dcm,
            self.l2_tcm,
            self.l3_ldm,
            self.br_ins,
            self.br_msp,
        ]
    }

    /// Rescale cache counters for a different µ-architecture, following
    /// §4.1.5: each level-ℓ miss count is scaled by the target/source
    /// cache capacity ratio, and branch mispredictions are divided by
    /// reference cycles.
    pub fn rescale_for_arch(
        &self,
        source: &crate::cpu::CpuSpec,
        target: &crate::cpu::CpuSpec,
    ) -> Counters {
        Counters {
            l1_dcm: self.l1_dcm * target.l1_kb / source.l1_kb,
            l2_tcm: self.l2_tcm * target.l2_kb / source.l2_kb,
            l3_ldm: self.l3_ldm * target.l3_mb / source.l3_mb,
            br_ins: self.br_ins,
            br_msp: if self.ref_cyc > 0.0 {
                self.br_msp / self.ref_cyc
            } else {
                self.br_msp
            },
            ref_cyc: self.ref_cyc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSpec;

    #[test]
    fn feature_vector_order() {
        let c = Counters {
            l1_dcm: 1.0,
            l2_tcm: 2.0,
            l3_ldm: 3.0,
            br_ins: 4.0,
            br_msp: 5.0,
            ref_cyc: 6.0,
        };
        assert_eq!(c.to_features(), [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn rescale_follows_capacity_ratios() {
        let src = CpuSpec::comet_lake(); // L3 16MB
        let dst = CpuSpec::broadwell_8c(); // L3 20MB
        let c = Counters {
            l1_dcm: 100.0,
            l2_tcm: 50.0,
            l3_ldm: 10.0,
            br_ins: 1000.0,
            br_msp: 20.0,
            ref_cyc: 1e6,
        };
        let r = c.rescale_for_arch(&src, &dst);
        assert_eq!(r.l1_dcm, 100.0); // same 32KB L1
        assert_eq!(r.l2_tcm, 50.0); // same 256KB L2
        assert!((r.l3_ldm - 10.0 * 20.0 / 16.0).abs() < 1e-9);
        assert!((r.br_msp - 20.0 / 1e6).abs() < 1e-12);
        assert_eq!(r.br_ins, 1000.0);
    }
}
