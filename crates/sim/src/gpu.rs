//! OpenCL device models for the heterogeneous device-mapping task (§4.2).
//!
//! Each (kernel, transfer size, work-group size) point is executed on a
//! CPU model (through the OpenMP execution model at all hardware
//! threads) and on a GPU model; whichever is faster is the point's
//! label, exactly how the Ben-Nun et al. dataset was produced. The GPU
//! model captures the effects the paper's §4.2 analysis leans on:
//!
//! * PCIe transfer and launch overhead — small kernels lose on the GPU
//!   when transfer dominates;
//! * occupancy — work-group sizes far from the device's sweet spot
//!   waste lanes, and small problems underfill the device;
//! * branch divergence — entropic branches serialize SIMT lanes;
//! * **function-call overhead** — kernels that call functions with
//!   inner loops (the paper's `makea` example) pay a per-call penalty
//!   that grows with the input, flipping big inputs back to the CPU.

use crate::cpu::CpuSpec;
use crate::openmp::{simulate_traits, OmpConfig, Schedule};
use crate::{hash_noise, name_hash};
use mga_kernels::spec::KernelSpec;

/// A GPU device model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    pub name: String,
    /// Peak arithmetic throughput in Gops/s (scalar-equivalent).
    pub gops: f64,
    /// Device memory bandwidth GB/s.
    pub mem_bw_gbs: f64,
    /// Host↔device PCIe bandwidth GB/s.
    pub pcie_gbs: f64,
    /// Kernel launch overhead µs.
    pub launch_us: f64,
    /// Preferred work-group size (occupancy sweet spot).
    pub preferred_wg: u32,
    /// Penalty per dynamic function call (µs-equivalents per 1e6 calls).
    pub call_cost_scale: f64,
}

impl GpuSpec {
    /// AMD Radeon HD 7970 (Tahiti) — 2048 lanes @ 0.925 GHz.
    pub fn tahiti_7970() -> GpuSpec {
        GpuSpec {
            name: "AMD Tahiti 7970".into(),
            gops: 950.0,
            mem_bw_gbs: 264.0,
            pcie_gbs: 6.0,
            launch_us: 25.0,
            preferred_wg: 256,
            call_cost_scale: 1.6,
        }
    }

    /// NVIDIA GTX 970 (Maxwell) — 1664 lanes @ 1.05 GHz.
    pub fn gtx_970() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA GTX 970".into(),
            gops: 620.0,
            mem_bw_gbs: 196.0,
            pcie_gbs: 6.0,
            launch_us: 18.0,
            preferred_wg: 128,
            call_cost_scale: 1.2,
        }
    }
}

/// One labeled device-mapping sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSample {
    pub cpu_time: f64,
    pub gpu_time: f64,
}

impl MappingSample {
    /// `true` when the GPU is the right device.
    pub fn gpu_wins(&self) -> bool {
        self.gpu_time < self.cpu_time
    }

    pub fn best_time(&self) -> f64 {
        self.gpu_time.min(self.cpu_time)
    }
}

/// Occupancy multiplier for a work-group size on a device (1.0 at the
/// device sweet spot, degrading away from it).
fn wg_efficiency(gpu: &GpuSpec, wg: u32) -> f64 {
    let ratio = wg as f64 / gpu.preferred_wg as f64;
    let off = ratio.log2().abs();
    (1.0 - 0.12 * off).clamp(0.55, 1.0)
}

/// Kernel-dependent work-group effects, the reason the best work-group
/// size varies per kernel (the §7 "expand to GPUs" tuning target):
///
/// * register pressure — op-heavy kernels lose occupancy at large
///   work-groups (fewer resident groups per compute unit);
/// * divergence — entropic branches serialize more lanes in wider
///   groups;
/// * latency hiding — memory-bound kernels want *more* resident warps,
///   so they benefit from larger groups.
fn wg_kernel_factor(wg: u32, ops_per_unit: f64, branch_entropy: f64, streaming_frac: f64) -> f64 {
    let w = wg as f64;
    let reg_pressure = 1.0 / (1.0 + (w / 256.0) * (ops_per_unit / 12.0));
    let divergence = 1.0 - 0.8 * branch_entropy * (w / 512.0).sqrt();
    let latency_hiding = 0.6 + 0.4 * (w / 256.0).min(1.0) * streaming_frac.max(0.25);
    reg_pressure * divergence * latency_hiding
}

/// Execute one (kernel, transfer, wg) point on the CPU and GPU models.
pub fn run_mapping(
    spec: &KernelSpec,
    transfer_bytes: f64,
    wg_size: u32,
    cpu: &CpuSpec,
    gpu: &GpuSpec,
) -> MappingSample {
    let tr = &spec.traits;
    let mix = &spec.mix;

    // --- CPU side: the OpenMP model at all hardware threads. OpenCL CPU
    // runtimes keep a warm worker pool, so the fork cost is a fraction of
    // a cold OpenMP team launch.
    let mut cpu_warm = cpu.clone();
    cpu_warm.fork_join_us *= 0.15;
    let cfg = OmpConfig {
        threads: cpu_warm.hw_threads(),
        schedule: Schedule::Static,
        chunk: 0,
    };
    let cpu_time = simulate_traits(tr, mix, &spec.name, transfer_bytes, &cfg, &cpu_warm).runtime;

    // --- GPU side. ---
    let n = tr.n_for_working_set(transfer_bytes);
    let iters = tr.trip.eval(n).max(1.0);
    let inner = tr.inner.eval(n).max(1.0);
    let work_units = iters * inner;

    let ops_per_unit = mix.flops
        + mix.int_ops * 0.5
        + mix.heavy_math * 6.0
        + mix.branches * 0.8
        + mix.mem_ops() * 0.5;

    // Divergence: entropic branches serialize SIMT lanes.
    let divergence = 1.0 - 0.65 * tr.branch_entropy;
    // Coverage: small problems underfill thousands of lanes.
    let coverage = (iters / 4096.0).clamp(0.02, 1.0);
    // Serial fraction hurts the GPU much more than the CPU.
    let serial_pen = 1.0 - tr.serial_frac * 0.9;
    let eff = wg_efficiency(gpu, wg_size)
        * wg_kernel_factor(
            wg_size,
            ops_per_unit,
            tr.branch_entropy,
            tr.locality.streaming_frac,
        )
        * divergence
        * coverage.powf(0.35)
        * serial_pen;

    let t_compute = work_units * ops_per_unit / (gpu.gops * 1e9 * eff);
    let traffic = work_units * tr.bytes_per_iter;
    let t_mem = traffic / (gpu.mem_bw_gbs * 1e9);
    // Dynamic function calls with inner loops (makea-like): the per-call
    // overhead grows with the total call volume (call-stack spills and
    // scheduler pressure accumulate at scale), so call-heavy kernels win
    // on the GPU at small inputs but flip to the CPU at large ones —
    // exactly the paper's CG/makea observation.
    let calls_total = work_units * mix.calls;
    let t_calls = calls_total * gpu.call_cost_scale * 0.5e-9 * (1.0 + calls_total / 2e7);
    let t_transfer = 1.5 * transfer_bytes / (gpu.pcie_gbs * 1e9) + gpu.launch_us * 1e-6;

    let noise = hash_noise(
        &[
            name_hash(&spec.name),
            name_hash(&gpu.name),
            transfer_bytes.to_bits(),
            wg_size as u64,
        ],
        0.03,
    );
    let gpu_time = (t_compute.max(t_mem) + t_calls + t_transfer) * noise;

    MappingSample { cpu_time, gpu_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::opencl_catalog;

    fn kernel(app: &str) -> KernelSpec {
        opencl_catalog()
            .into_iter()
            .find(|s| s.app == app)
            .unwrap_or_else(|| panic!("missing {app}"))
    }

    #[test]
    fn big_dense_compute_maps_to_gpu() {
        let gemm = opencl_catalog()
            .into_iter()
            .find(|s| s.app == "MatrixMultiplication")
            .unwrap();
        let s = run_mapping(
            &gemm,
            128.0 * 1024.0 * 1024.0,
            256,
            &CpuSpec::i7_3820(),
            &GpuSpec::tahiti_7970(),
        );
        assert!(s.gpu_wins(), "large GEMM must map to GPU: {s:?}");
    }

    #[test]
    fn tiny_transfer_maps_to_cpu() {
        let vadd = kernel("VectorAdd");
        let s = run_mapping(
            &vadd,
            8.0 * 1024.0,
            128,
            &CpuSpec::i7_3820(),
            &GpuSpec::gtx_970(),
        );
        assert!(!s.gpu_wins(), "tiny VectorAdd must stay on CPU: {s:?}");
    }

    #[test]
    fn makea_like_kernel_flips_device_with_input_size() {
        // The paper's CG/makea case: function calls inside the parallel
        // loop. Small input → GPU wins; large input → calls dominate →
        // CPU wins.
        let nb = kernel("cutcp"); // nbody archetype: calls in the loop
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::tahiti_7970();
        let small = run_mapping(&nb, 256.0 * 1024.0, 256, &cpu, &gpu);
        let large = run_mapping(&nb, 512.0 * 1024.0 * 1024.0, 256, &cpu, &gpu);
        assert!(
            small.gpu_wins(),
            "small call-heavy kernel should still win on GPU: {small:?}"
        );
        assert!(
            !large.gpu_wins(),
            "large call-heavy kernel should flip to CPU: {large:?}"
        );
    }

    #[test]
    fn wg_efficiency_peaks_at_preferred() {
        let gpu = GpuSpec::tahiti_7970();
        let at_pref = wg_efficiency(&gpu, 256);
        let off = wg_efficiency(&gpu, 64);
        assert!(at_pref > off);
        assert_eq!(at_pref, 1.0);
    }

    #[test]
    fn best_work_group_size_varies_by_kernel_character() {
        // Register-heavy divergent kernels prefer smaller groups than
        // streaming kernels — the premise of work-group tuning.
        let sizes = [32u32, 64, 128, 256, 512];
        let best = |ops: f64, entropy: f64, streaming: f64| {
            sizes
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    wg_kernel_factor(a, ops, entropy, streaming)
                        .partial_cmp(&wg_kernel_factor(b, ops, entropy, streaming))
                        .unwrap()
                })
                .unwrap()
        };
        let heavy = best(80.0, 0.7, 0.1);
        let light_streaming = best(5.0, 0.02, 1.0);
        assert!(
            heavy < light_streaming,
            "heavy/divergent kernel should prefer smaller groups: {heavy} vs {light_streaming}"
        );
    }

    #[test]
    fn wg_oracle_is_not_constant_across_kernels() {
        // Across the catalog, the best work-group size must not collapse
        // to a single value (otherwise there is nothing to tune).
        let cat = opencl_catalog();
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::tahiti_7970();
        let sizes = [32u32, 64, 128, 256, 512];
        let mut winners = std::collections::HashSet::new();
        for spec in cat.iter().step_by(5) {
            let best = sizes
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ta = run_mapping(spec, 8e6, a, &cpu, &gpu).gpu_time;
                    let tb = run_mapping(spec, 8e6, b, &cpu, &gpu).gpu_time;
                    ta.partial_cmp(&tb).unwrap()
                })
                .unwrap();
            winners.insert(best);
        }
        assert!(
            winners.len() >= 3,
            "work-group oracle degenerate: {winners:?}"
        );
    }

    #[test]
    fn dataset_has_both_labels_in_reasonable_balance() {
        let cat = opencl_catalog();
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::gtx_970();
        let mut gpu_wins = 0;
        let mut total = 0;
        for spec in &cat {
            for p in mga_kernels::inputs::opencl_points(name_hash(&spec.name)) {
                let s = run_mapping(spec, p.transfer_bytes, p.wg_size, &cpu, &gpu);
                total += 1;
                if s.gpu_wins() {
                    gpu_wins += 1;
                }
            }
        }
        let frac = gpu_wins as f64 / total as f64;
        assert!(
            (0.25..=0.75).contains(&frac),
            "degenerate label balance: {frac} GPU over {total} points"
        );
    }

    #[test]
    fn labels_are_deterministic() {
        let k = kernel("FFT");
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::tahiti_7970();
        let a = run_mapping(&k, 1e6, 128, &cpu, &gpu);
        let b = run_mapping(&k, 1e6, 128, &cpu, &gpu);
        assert_eq!(a, b);
    }

    #[test]
    fn divergent_kernels_lose_gpu_ground() {
        // Same transfer: a branchy kernel's GPU advantage must be smaller
        // than a dense kernel's.
        let dense = opencl_catalog()
            .into_iter()
            .find(|s| s.app == "gemm")
            .unwrap();
        let branchy = opencl_catalog()
            .into_iter()
            .find(|s| s.app == "FloydWarshall")
            .unwrap();
        let cpu = CpuSpec::i7_3820();
        let gpu = GpuSpec::tahiti_7970();
        let ws = 32.0 * 1024.0 * 1024.0;
        let d = run_mapping(&dense, ws, 256, &cpu, &gpu);
        let b = run_mapping(&branchy, ws, 256, &cpu, &gpu);
        let d_adv = d.cpu_time / d.gpu_time;
        let b_adv = b.cpu_time / b.gpu_time;
        assert!(
            d_adv > b_adv,
            "dense advantage {d_adv} should exceed branchy {b_adv}"
        );
    }
}
