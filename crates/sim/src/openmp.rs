//! Analytical execution model for OpenMP parallel loops.
//!
//! Given a kernel's [`Traits`]/[`InstrMix`] (from `mga-kernels`), a target
//! [`CpuSpec`] and an [`OmpConfig`], [`simulate`] produces the runtime
//! and the PAPI counter sample a real profiled run would give. The model
//! captures the first-order effects that make OpenMP tuning nontrivial:
//!
//! * **compute vs. bandwidth bound** — per-iteration cycles from the IR
//!   instruction mix vs. streaming traffic over shared DRAM bandwidth
//!   that saturates around 4 threads, so bandwidth-bound loops prefer
//!   few threads while compute-bound loops scale to all cores;
//! * **cache capacity** — per-thread resident working sets spill from
//!   L1→L2→L3→DRAM as inputs grow (the paper's 3.5 KB–0.5 GB ladder is
//!   chosen to stress exactly this); more threads shrink per-thread
//!   partitions but contend for shared L3;
//! * **SMT and oversubscription** — hyper-threads add ~35 % per extra
//!   thread, oversubscribed threads add context-switch penalty;
//! * **scheduling** — static contiguous blocks suffer the full skew of
//!   triangular/random imbalance; `dynamic,k`/`guided,k` rebalance at a
//!   per-chunk dispatch cost; tiny chunks of store-heavy loops add
//!   false sharing;
//! * **synchronization** — atomics serialize under contention;
//!   reductions pay a log₂(t) combine at the join; every region pays
//!   fork/join;
//! * **Amdahl** — the serial fraction runs at one thread regardless.

use crate::counters::Counters;
use crate::cpu::CpuSpec;
use crate::{hash_noise, name_hash};
use mga_kernels::spec::{Imbalance, InstrMix, KernelSpec, Traits};

/// OpenMP scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    Static,
    Dynamic,
    Guided,
}

impl Schedule {
    pub const ALL: [Schedule; 3] = [Schedule::Static, Schedule::Dynamic, Schedule::Guided];

    pub fn name(self) -> &'static str {
        match self {
            Schedule::Static => "static",
            Schedule::Dynamic => "dynamic",
            Schedule::Guided => "guided",
        }
    }
}

/// One OpenMP runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OmpConfig {
    pub threads: u32,
    pub schedule: Schedule,
    /// Chunk size; 0 means the implementation default (`iters/threads`
    /// for static, 1 for dynamic, `iters/(2t)` initial for guided).
    pub chunk: u32,
}

impl OmpConfig {
    /// The paper's default configuration: all hardware threads, static
    /// scheduling, compiler-calculated chunk.
    pub fn default_for(cpu: &CpuSpec) -> OmpConfig {
        OmpConfig {
            threads: cpu.hw_threads(),
            schedule: Schedule::Static,
            chunk: 0,
        }
    }
}

/// Result of one simulated profiled execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall-clock seconds.
    pub runtime: f64,
    pub counters: Counters,
}

/// Cycle costs of the abstract machine (per µ-op class).
const CYC_FLOP: f64 = 1.2;
const CYC_HEAVY: f64 = 10.0;
const CYC_INT: f64 = 0.6;
const CYC_BRANCH: f64 = 0.8;
const CYC_CALL: f64 = 9.0;
const CYC_MISPREDICT: f64 = 16.0;
/// Latencies (ns-equivalents converted through frequency at use site).
const LAT_L1_CYC: f64 = 4.0;
const LAT_L2_CYC: f64 = 13.0;
const LAT_L3_CYC: f64 = 42.0;
/// Memory-level parallelism divisor for latency-bound access chains.
const MLP: f64 = 4.0;
/// Atomic RMW base cost in ns.
const ATOMIC_NS: f64 = 18.0;

/// How much of a `resident`-byte working set fits in a `cap`-byte cache
/// (smooth, in [0,1]).
fn fit_fraction(resident: f64, cap: f64) -> f64 {
    if resident <= 0.0 {
        return 1.0;
    }
    let r = resident / cap;
    1.0 / (1.0 + r * r)
}

/// Effective DRAM bandwidth share at `t` active threads: single-core
/// streams can't saturate the controller; ~4 cores can; beyond that,
/// contention slowly degrades it.
fn effective_bw(cpu: &CpuSpec, t: f64) -> f64 {
    let ramp = (0.30 + 0.70 * (t / 4.0)).min(1.0);
    // Past saturation, extra threads add queueing at the memory
    // controller — this is what makes bandwidth-bound loops prefer ~4
    // threads (Fig. 1a's kmeans shape).
    let contention = 1.0 + 0.28 * (t - 4.0).max(0.0);
    cpu.mem_bw_gbs * 1e9 * ramp / contention
}

/// Parallel speedup ceiling at `t` software threads on `cpu`: physical
/// cores count 1, SMT siblings 0.35, oversubscribed threads slightly
/// negative (context switching).
fn effective_parallelism(cpu: &CpuSpec, t: f64) -> f64 {
    let cores = cpu.cores as f64;
    let hw = cpu.hw_threads() as f64;
    if t <= cores {
        t
    } else if t <= hw {
        // SMT siblings contend for ports and cache: a modest 12 % gain
        // per extra hyper-thread (FP-heavy HPC loops rarely see more).
        cores + 0.12 * (t - cores)
    } else {
        let base = cores + 0.12 * (hw - cores);
        base / (1.0 + 0.06 * (t - hw))
    }
}

/// Load-imbalance multiplier: ratio of slowest-thread work to mean work.
fn imbalance_factor(imb: Imbalance, sched: Schedule, t: f64, iters: f64, chunk: f64) -> f64 {
    if t <= 1.0 {
        return 1.0;
    }
    match imb {
        Imbalance::Uniform => 1.0 + (t - 1.0) / iters.max(t),
        Imbalance::Triangular => match sched {
            Schedule::Static => {
                if chunk * t >= iters {
                    // Contiguous blocks of a linearly growing cost: the
                    // last block does ~2x the mean.
                    2.0 * t / (t + 1.0)
                } else {
                    // Cyclic-ish static,k: balanced up to chunk granularity.
                    1.0 + (chunk * t / iters).min(1.0) * 0.8
                }
            }
            Schedule::Dynamic => 1.0 + (chunk * t / iters).min(1.0) * 0.5 + 0.03,
            Schedule::Guided => 1.08,
        },
        Imbalance::Random(cv) => {
            let chunks_per_thread = (iters / (chunk * t)).max(1.0);
            match sched {
                Schedule::Static => 1.0 + cv * (1.0 / chunks_per_thread.sqrt()).min(1.0),
                Schedule::Dynamic => 1.0 + cv * 0.08,
                Schedule::Guided => 1.0 + cv * 0.15,
            }
        }
    }
}

/// Number of scheduler dispatches the runtime performs.
fn dispatch_count(sched: Schedule, iters: f64, t: f64, chunk: f64) -> f64 {
    match sched {
        Schedule::Static => t,
        Schedule::Dynamic => (iters / chunk).max(t),
        Schedule::Guided => {
            // Exponentially shrinking chunks from iters/(2t) down to chunk.
            let start = (iters / (2.0 * t)).max(chunk);
            t * ((start / chunk).log2().max(0.0) + 1.0)
        }
    }
}

/// Resolve a config's chunk default.
fn resolved_chunk(cfg: &OmpConfig, iters: f64) -> f64 {
    if cfg.chunk > 0 {
        cfg.chunk as f64
    } else {
        match cfg.schedule {
            Schedule::Static => (iters / cfg.threads as f64).max(1.0),
            Schedule::Dynamic => 1.0,
            Schedule::Guided => 1.0,
        }
    }
}

/// Simulate one profiled execution of `spec` with working-set target
/// `ws_bytes` under `cfg` on `cpu`.
pub fn simulate(spec: &KernelSpec, ws_bytes: f64, cfg: &OmpConfig, cpu: &CpuSpec) -> RunResult {
    simulate_traits(&spec.traits, &spec.mix, &spec.name, ws_bytes, cfg, cpu)
}

/// Trait-level entry point (used by the GPU model's CPU side too).
pub fn simulate_traits(
    tr: &Traits,
    mix: &InstrMix,
    name: &str,
    ws_bytes: f64,
    cfg: &OmpConfig,
    cpu: &CpuSpec,
) -> RunResult {
    let t = cfg.threads.max(1) as f64;
    let n = tr.n_for_working_set(ws_bytes);
    let iters = tr.trip.eval(n).max(1.0);
    let inner = tr.inner.eval(n).max(1.0);
    let work_units = iters * inner;
    let chunk = resolved_chunk(cfg, iters);

    // ---- per-work-unit compute cycles -----------------------------------
    let mispredict_rate = (tr.branch_entropy * (1.0 - cpu.bp_quality) * 6.0 + 0.004)
        .min(0.5 * tr.branch_entropy + 0.004);
    let cyc_compute = mix.flops * CYC_FLOP
        + mix.heavy_math * CYC_HEAVY
        + mix.int_ops * CYC_INT
        + mix.branches * (CYC_BRANCH + mispredict_rate * CYC_MISPREDICT)
        + mix.calls * CYC_CALL;

    // ---- cache / memory model -------------------------------------------
    let ws = tr.working_set(n);
    let resident = ws * (1.0 - tr.locality.streaming_frac);
    let per_thread = resident * ((1.0 - tr.locality.shared_frac) / t + tr.locality.shared_frac);
    // Hyper-threads share their core's private caches: running more
    // software threads than cores halves the effective L1/L2 per thread
    // (this is why the paper's 2mm prefers 16 threads over the 20-thread
    // default on the 10c/20t Skylake).
    let threads_per_core = (t / cpu.cores as f64).max(1.0);
    let fit1 = fit_fraction(per_thread, cpu.l1_kb * 1024.0 / threads_per_core);
    let fit2 = fit_fraction(per_thread, cpu.l2_kb * 1024.0 / threads_per_core);
    // All threads share L3.
    let l3_resident =
        resident * (1.0 - tr.locality.shared_frac) + resident * tr.locality.shared_frac;
    let fit3 = fit_fraction(l3_resident, cpu.l3_mb * 1024.0 * 1024.0);

    let cached_accesses = mix.mem_ops() * (1.0 - tr.locality.streaming_frac);
    let avg_lat_cyc = LAT_L1_CYC
        + (1.0 - fit1) * (LAT_L2_CYC - LAT_L1_CYC)
        + (1.0 - fit2) * (LAT_L3_CYC - LAT_L2_CYC).max(0.0) * (1.0 - fit1).max(0.1)
        + (1.0 - fit3) * (cpu.mem_lat_ns * cpu.freq_ghz - LAT_L3_CYC).max(0.0);
    // Shared-L3 conflict pressure: concurrent threads thrash each
    // other's lines once the resident set spills the LLC.
    let l3_thrash = 1.0 + 0.04 * (t - 1.0) * (1.0 - fit3);
    let cyc_mem_latency = cached_accesses * avg_lat_cyc * l3_thrash / MLP;

    let cyc_per_unit = cyc_compute + cyc_mem_latency;

    // ---- serial (1-thread) time ------------------------------------------
    let freq = cpu.freq_ghz * 1e9;
    let t1_compute = work_units * cyc_per_unit / freq;
    let streaming_bytes = work_units * tr.bytes_per_iter * tr.locality.streaming_frac;
    let t1_stream = streaming_bytes / effective_bw(cpu, 1.0);
    let t1 = t1_compute.max(t1_stream) + t1_compute.min(t1_stream) * 0.3;

    // ---- parallel portion --------------------------------------------------
    let par = effective_parallelism(cpu, t);
    let imb = imbalance_factor(tr.imbalance, cfg.schedule, t, iters, chunk);
    let tp_compute = work_units * cyc_per_unit / freq / par * imb;
    let tp_stream = streaming_bytes / effective_bw(cpu, t.min(cpu.cores as f64));
    let mut tp = tp_compute.max(tp_stream) + tp_compute.min(tp_stream) * 0.3;

    // False sharing: fine-grained chunks of store-writing loops thrash
    // cache lines between cores.
    let mut false_share = 1.0;
    if mix.stores > 0.0 && t > 1.0 {
        let chunk_bytes = chunk * inner * tr.bytes_per_iter;
        if chunk_bytes < 256.0 {
            let severity = (256.0 - chunk_bytes) / 256.0;
            false_share = 1.0 + 0.5 * severity * (mix.stores / mix.mem_ops().max(1.0));
            tp *= false_share;
        }
    }

    // Fine-grained chunks forfeit spatial locality/prefetch across
    // block boundaries.
    let mut chunk_locality = 1.0;
    if t > 1.0 && chunk < 16.0 && cfg.schedule != Schedule::Static {
        chunk_locality = 1.0 + 0.12 / chunk.max(1.0);
        tp *= chunk_locality;
    }

    // Wavefront synchronization between dependent iterations.
    let t_sync = if t > 1.0 {
        iters * tr.sync_us_per_iter * 1e-6 * (1.0 + 0.45 * t)
    } else {
        0.0
    };

    // Scheduling dispatch overhead (serialized on the work queue).
    let dispatches = dispatch_count(cfg.schedule, iters, t, chunk);
    let t_dispatch = dispatches * cpu.dispatch_ns * 1e-9;

    // Atomics: contended RMWs serialize on the cache line. OpenMP
    // reductions privatize their accumulator, so the per-iteration
    // combiner is free there and only the join combine (below) is paid.
    let t_atomic = if mix.atomics > 0.0 && !tr.reduction {
        work_units * mix.atomics * ATOMIC_NS * 1e-9 * (1.0 + 0.30 * (t - 1.0).max(0.0))
    } else {
        0.0
    };

    // Reduction combine + fork/join.
    let t_reduce = if tr.reduction {
        (t.log2().max(0.0) + 1.0) * 2e-6
    } else {
        0.0
    };
    // Thread wake-up costs grow with team size; at the 3.5 KB end of the
    // input ladder this is what makes the 8-thread default lose badly to
    // 1-2 threads (a large share of the paper's oracle gains).
    let t_fork = cpu.fork_join_us * 1e-6 * (1.0 + 0.3 * (t - 1.0));

    // Amdahl composition.
    let runtime_raw = tr.serial_frac * t1
        + (1.0 - tr.serial_frac) * tp
        + t_sync
        + t_dispatch
        + t_atomic
        + t_reduce
        + t_fork;
    let noise = hash_noise(
        &[
            name_hash(name),
            ws_bytes.to_bits(),
            cfg.threads as u64,
            cfg.schedule as u64,
            cfg.chunk as u64,
            name_hash(&cpu.name),
        ],
        0.03,
    );
    let runtime = runtime_raw * noise;

    // ---- counters -----------------------------------------------------------
    // Counters reflect the same configuration-dependent effects the
    // runtime does: SMT cache splitting (through fit1/fit2), shared-L3
    // thrash, fine-chunk locality loss, and false-sharing traffic — so a
    // better configuration visibly lowers the miss counters (Fig. 8).
    let total_accesses = work_units * mix.mem_ops();
    let streaming_accesses = total_accesses * tr.locality.streaming_frac;
    let cached = total_accesses - streaming_accesses;
    let l1_dcm = (cached * (1.0 - fit1) + streaming_accesses) * chunk_locality * false_share;
    let l2_tcm =
        (cached * (1.0 - fit1) * (1.0 - fit2) + streaming_accesses) * chunk_locality * false_share;
    let load_frac = mix.loads / mix.mem_ops().max(1.0);
    let l3_ldm = (cached * (1.0 - fit1) * (1.0 - fit2) * (1.0 - fit3) + streaming_accesses)
        * load_frac
        * (0.6 + 0.4 * l3_thrash);
    let br_ins = work_units * (mix.branches + 1.0);
    let br_msp = br_ins * mispredict_rate;
    // Measurement noise per counter; the cache hierarchy stays physical
    // (L2 misses cannot exceed L1 misses, L3 load misses cannot exceed
    // L2 misses) even after noising.
    let l1_n = l1_dcm * hash_noise(&[name_hash(name), 1, ws_bytes.to_bits()], 0.12);
    let l2_n = (l2_tcm * hash_noise(&[name_hash(name), 2, ws_bytes.to_bits()], 0.12)).min(l1_n);
    let l3_n = (l3_ldm * hash_noise(&[name_hash(name), 3, ws_bytes.to_bits()], 0.12)).min(l2_n);
    let counters = Counters {
        l1_dcm: l1_n,
        l2_tcm: l2_n,
        l3_ldm: l3_n,
        br_ins: br_ins * hash_noise(&[name_hash(name), 4, ws_bytes.to_bits()], 0.05),
        br_msp: br_msp * hash_noise(&[name_hash(name), 5, ws_bytes.to_bits()], 0.10),
        ref_cyc: runtime * freq,
    };

    RunResult { runtime, counters }
}

/// Exhaustively find the best configuration in a search space.
pub fn oracle_config<'a>(
    spec: &KernelSpec,
    ws_bytes: f64,
    space: impl IntoIterator<Item = &'a OmpConfig>,
    cpu: &CpuSpec,
) -> (OmpConfig, f64) {
    let mut best: Option<(OmpConfig, f64)> = None;
    for cfg in space {
        let r = simulate(spec, ws_bytes, cfg, cpu);
        if best.as_ref().is_none_or(|(_, t)| r.runtime < *t) {
            best = Some((*cfg, r.runtime));
        }
    }
    best.expect("empty search space")
}

/// The §4.1.3 thread-only search space on an `n`-thread machine:
/// {1, 2, …, hw_threads} with static scheduling.
pub fn thread_space(cpu: &CpuSpec) -> Vec<OmpConfig> {
    (1..=cpu.hw_threads())
        .map(|t| OmpConfig {
            threads: t,
            schedule: Schedule::Static,
            chunk: 0,
        })
        .collect()
}

/// The §4.1.4 large search space (Table 2): threads {1,2,4,8,12,16,20} ×
/// {static, dynamic, guided} × chunks {1,8,32,64,128,256,512}.
pub fn large_space() -> Vec<OmpConfig> {
    let mut v = Vec::new();
    for &t in &[1u32, 2, 4, 8, 12, 16, 20] {
        for s in Schedule::ALL {
            for &c in &[1u32, 8, 32, 64, 128, 256, 512] {
                v.push(OmpConfig {
                    threads: t,
                    schedule: s,
                    chunk: c,
                });
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::openmp_catalog;

    fn find(app: &str) -> KernelSpec {
        openmp_catalog()
            .into_iter()
            .find(|s| s.app == app && s.name.ends_with("/l0"))
            .unwrap_or_else(|| panic!("missing {app}"))
    }

    fn best_threads(spec: &KernelSpec, ws: f64, cpu: &CpuSpec) -> u32 {
        let space = thread_space(cpu);
        let (cfg, _) = oracle_config(spec, ws, &space, cpu);
        cfg.threads
    }

    #[test]
    fn large_space_matches_table2() {
        assert_eq!(large_space().len(), 7 * 3 * 7);
    }

    #[test]
    fn compute_bound_kernel_scales_to_all_cores() {
        let gemm = find("gemm");
        let cpu = CpuSpec::comet_lake();
        let bt = best_threads(&gemm, 64.0 * 1024.0 * 1024.0, &cpu);
        assert!(bt >= 6, "gemm best threads {bt}, expected near 8");
        // And more threads genuinely help vs 1.
        let space = thread_space(&cpu);
        let t1 = simulate(&gemm, 64.0 * 1024.0 * 1024.0, &space[0], &cpu).runtime;
        let t8 = simulate(&gemm, 64.0 * 1024.0 * 1024.0, &space[7], &cpu).runtime;
        assert!(t1 / t8 > 3.0, "gemm parallel speedup only {}", t1 / t8);
    }

    #[test]
    fn bandwidth_bound_kernel_prefers_fewer_threads() {
        let stream = openmp_catalog()
            .into_iter()
            .find(|s| s.app == "stream" && s.name.ends_with("/l3"))
            .unwrap();
        let cpu = CpuSpec::comet_lake();
        // Large input: firmly bandwidth bound.
        let bt = best_threads(&stream, 256.0 * 1024.0 * 1024.0, &cpu);
        assert!(bt < 8, "stream triad best threads {bt}, expected < 8");
        assert!(bt >= 2, "stream triad best threads {bt}, expected ≥ 2");
    }

    #[test]
    fn serial_heavy_trisolv_prefers_one_or_two_threads() {
        let trisolv = find("trisolv");
        let cpu = CpuSpec::comet_lake();
        let bt = best_threads(&trisolv, 8.0 * 1024.0 * 1024.0, &cpu);
        assert!(bt <= 2, "trisolv best threads {bt}, expected ≤ 2");
    }

    #[test]
    fn triangular_kernels_prefer_dynamic_or_guided() {
        let lu = find("lu");
        let cpu = CpuSpec::skylake_4114();
        let ws = 32.0 * 1024.0 * 1024.0;
        let static_cfg = OmpConfig {
            threads: 16,
            schedule: Schedule::Static,
            chunk: 0,
        };
        let dyn_cfg = OmpConfig {
            threads: 16,
            schedule: Schedule::Dynamic,
            chunk: 32,
        };
        let ts = simulate(&lu, ws, &static_cfg, &cpu).runtime;
        let td = simulate(&lu, ws, &dyn_cfg, &cpu).runtime;
        assert!(
            td < ts,
            "dynamic ({td:.6}) should beat static ({ts:.6}) on triangular lu"
        );
    }

    #[test]
    fn tiny_dynamic_chunks_cost_more_than_moderate() {
        let gemm = find("gemm");
        let cpu = CpuSpec::skylake_4114();
        let ws = 8.0 * 1024.0 * 1024.0;
        let tiny = OmpConfig {
            threads: 20,
            schedule: Schedule::Dynamic,
            chunk: 1,
        };
        let moderate = OmpConfig {
            threads: 20,
            schedule: Schedule::Dynamic,
            chunk: 64,
        };
        let tt = simulate(&gemm, ws, &tiny, &cpu).runtime;
        let tm = simulate(&gemm, ws, &moderate, &cpu).runtime;
        assert!(
            tt > tm,
            "chunk=1 ({tt}) should cost more than chunk=64 ({tm})"
        );
    }

    #[test]
    fn counters_grow_with_input_size() {
        let jacobi = find("jacobi-2d");
        let cpu = CpuSpec::comet_lake();
        let cfg = OmpConfig::default_for(&cpu);
        let small = simulate(&jacobi, 64.0 * 1024.0, &cfg, &cpu).counters;
        let large = simulate(&jacobi, 128.0 * 1024.0 * 1024.0, &cfg, &cpu).counters;
        assert!(large.l1_dcm > small.l1_dcm * 10.0);
        assert!(large.l3_ldm > small.l3_ldm);
        assert!(large.br_ins > small.br_ins);
    }

    #[test]
    fn small_inputs_fit_in_cache() {
        let jacobi = find("jacobi-2d");
        let cpu = CpuSpec::comet_lake();
        let cfg = OmpConfig {
            threads: 1,
            schedule: Schedule::Static,
            chunk: 0,
        };
        let tiny = simulate(&jacobi, 16.0 * 1024.0, &cfg, &cpu).counters;
        // Almost everything should hit: few L3 load misses relative to
        // branch count (a proxy for iteration count).
        assert!(
            tiny.l3_ldm < tiny.br_ins * 0.2,
            "tiny input misses too much: {} vs {}",
            tiny.l3_ldm,
            tiny.br_ins
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let k = find("hotspot");
        let cpu = CpuSpec::comet_lake();
        let cfg = OmpConfig::default_for(&cpu);
        let a = simulate(&k, 1e6, &cfg, &cpu);
        let b = simulate(&k, 1e6, &cfg, &cpu);
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_positive_and_finite_across_space() {
        let specs = openmp_catalog();
        let cpu = CpuSpec::skylake_4114();
        for spec in specs.iter().take(10) {
            for cfg in large_space().iter().step_by(13) {
                let r = simulate(spec, 4.0 * 1024.0 * 1024.0, cfg, &cpu);
                assert!(r.runtime.is_finite() && r.runtime > 0.0, "{}", spec.name);
                assert!(r.counters.l1_dcm >= 0.0);
            }
        }
    }

    #[test]
    fn dataset_needs_tuning_for_majority_of_cases() {
        // Fig. 1b: ~64% of (loop, input) combinations have a non-default
        // best thread count. Our simulated dataset must be in that
        // regime (half-ish, not all-default).
        let specs = mga_kernels::catalog::openmp_thread_dataset();
        let sizes = mga_kernels::inputs::openmp_input_sizes();
        let cpu = CpuSpec::comet_lake();
        let space = thread_space(&cpu);
        let mut total = 0;
        let mut nondefault = 0;
        for spec in specs.iter().step_by(3) {
            for &ws in sizes.iter().step_by(5) {
                let (best, _) = oracle_config(spec, ws, &space, &cpu);
                total += 1;
                if best.threads != cpu.hw_threads() {
                    nondefault += 1;
                }
            }
        }
        let frac = nondefault as f64 / total as f64;
        assert!(
            (0.35..=0.9).contains(&frac),
            "non-default-best fraction {frac} out of the paper's regime"
        );
    }

    #[test]
    fn kmeans_gains_from_tuning_like_fig1a() {
        // Fig. 1a: kmeans has thread counts beating all-8-threads by up
        // to ~27%.
        let kmeans = find("kmeans");
        let cpu = CpuSpec::comet_lake();
        let ws = 128.0 * 1024.0 * 1024.0;
        let default = simulate(&kmeans, ws, &OmpConfig::default_for(&cpu), &cpu).runtime;
        let space = thread_space(&cpu);
        let (_, best) = oracle_config(&kmeans, ws, &space, &cpu);
        let gain = default / best;
        assert!(
            gain > 1.05,
            "kmeans tuning gain {gain} too small to reproduce Fig. 1a"
        );
    }
}
