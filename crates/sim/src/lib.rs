//! `mga-sim` — analytical hardware models and a PAPI-like profiler.
//!
//! The paper's data comes from real machines: OpenMP loops profiled with
//! PAPI on Intel Comet Lake / Skylake-SP (and replayed on Broadwell /
//! Sandy Bridge), and OpenCL kernels measured on an AMD Tahiti 7970, an
//! NVIDIA GTX 970 and an Intel i7-3820. None of that hardware is
//! available here, so this crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`cpu`] — µ-architecture descriptions (cores, SMT, three cache
//!   levels, memory bandwidth/latency, branch predictor, OpenMP runtime
//!   costs) for the five CPUs the paper uses;
//! * [`openmp`] — an analytical execution model for an OpenMP parallel
//!   loop under a configuration (threads × schedule × chunk): compute
//!   vs. bandwidth bounds, cache-capacity effects, SMT and
//!   oversubscription, static/dynamic/guided scheduling overheads and
//!   imbalance, false sharing, atomics/reduction costs, Amdahl's law;
//! * [`counters`] — the five PAPI counters the paper selects (L1/L2
//!   cache misses, L3 load misses, retired branches, mispredicted
//!   branches) plus reference cycles, derived from the same model;
//! * [`gpu`] — OpenCL device models (PCIe transfer, occupancy,
//!   divergence, call overhead) that label kernel×size points CPU or
//!   GPU, reproducing the decision structure of the Ben-Nun et al.
//!   dataset, including the paper's `makea` edge case (small input →
//!   GPU, large input → CPU when inner function calls dominate).
//!
//! [`papi`] adds the §4.1.1 counter-space reduction: an extended
//! 16-counter preset and the Pearson-correlation selection that keeps
//! the five counters the models consume.
//!
//! All randomness is a deterministic ±3 % hash noise so experiments are
//! reproducible run-to-run.

pub mod counters;
pub mod cpu;
pub mod gpu;
pub mod openmp;
pub mod papi;

pub use counters::Counters;
pub use cpu::{CpuSpec, MicroArch};
pub use openmp::{OmpConfig, Schedule};

/// Deterministic multiplicative noise in `[1-amp, 1+amp]`, keyed by an
/// arbitrary set of seeds. Replaces run-to-run measurement variance.
pub fn hash_noise(seeds: &[u64], amp: f64) -> f64 {
    let mut h: u64 = 0x517cc1b727220a95;
    for &s in seeds {
        h ^= s;
        h = h.wrapping_mul(0x2545F4914F6CDD1D);
        h ^= h >> 29;
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + amp * (2.0 * unit - 1.0)
}

/// Stable 64-bit hash of a string (FNV-1a), used to key noise by kernel
/// name.
pub fn name_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for i in 0..200u64 {
            let a = hash_noise(&[i, 7], 0.03);
            let b = hash_noise(&[i, 7], 0.03);
            assert_eq!(a, b);
            assert!((0.97..=1.03).contains(&a), "{a} out of band");
        }
    }

    #[test]
    fn noise_varies_with_seeds() {
        let vals: std::collections::HashSet<u64> = (0..100u64)
            .map(|i| hash_noise(&[i], 0.03).to_bits())
            .collect();
        assert!(vals.len() > 90, "noise nearly constant");
    }

    #[test]
    fn name_hash_distinguishes_names() {
        assert_ne!(name_hash("kmeans"), name_hash("gemm"));
        assert_eq!(name_hash("gemm"), name_hash("gemm"));
    }
}
