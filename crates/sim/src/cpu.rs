//! CPU µ-architecture descriptions.

/// The µ-architectures appearing in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroArch {
    CometLake,
    SkylakeSp,
    Broadwell,
    SandyBridge,
    IvyBridgeE,
}

/// A CPU model: the parameters the OpenMP execution model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    pub name: String,
    pub arch: MicroArch,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads per core (1 = no SMT).
    pub smt: u32,
    pub freq_ghz: f64,
    /// Per-core L1D capacity in KiB.
    pub l1_kb: f64,
    /// Per-core L2 capacity in KiB.
    pub l2_kb: f64,
    /// Shared L3 capacity in MiB.
    pub l3_mb: f64,
    /// Sustained DRAM bandwidth in GB/s (all cores).
    pub mem_bw_gbs: f64,
    /// DRAM access latency in ns.
    pub mem_lat_ns: f64,
    /// Branch predictor quality in `[0,1]`; higher = fewer mispredictions
    /// on entropic branches.
    pub bp_quality: f64,
    /// OpenMP fork/join base cost in µs.
    pub fork_join_us: f64,
    /// Dynamic-scheduling dispatch cost per chunk in ns.
    pub dispatch_ns: f64,
}

impl CpuSpec {
    /// Total hardware threads.
    pub fn hw_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// Intel i7-10700K (Comet Lake): the 8-core desktop part of
    /// §4.1.3's experiments (SMT disabled to match the paper's 1–8
    /// thread sweep).
    pub fn comet_lake() -> CpuSpec {
        CpuSpec {
            name: "Intel i7-10700K (Comet Lake)".into(),
            arch: MicroArch::CometLake,
            cores: 8,
            smt: 1,
            freq_ghz: 4.7,
            l1_kb: 32.0,
            l2_kb: 256.0,
            l3_mb: 16.0,
            mem_bw_gbs: 41.0,
            mem_lat_ns: 70.0,
            bp_quality: 0.95,
            fork_join_us: 1.5,
            dispatch_ns: 70.0,
        }
    }

    /// Intel Xeon Silver 4114 (Skylake-SP): 10 cores, 2 hyper-threads
    /// per core — the §4.1.4 large-search-space system.
    pub fn skylake_4114() -> CpuSpec {
        CpuSpec {
            name: "Intel Xeon Silver 4114 (Skylake-SP)".into(),
            arch: MicroArch::SkylakeSp,
            cores: 10,
            smt: 2,
            freq_ghz: 2.2,
            l1_kb: 32.0,
            l2_kb: 1024.0,
            l3_mb: 13.75,
            mem_bw_gbs: 63.0,
            mem_lat_ns: 85.0,
            bp_quality: 0.94,
            fork_join_us: 2.0,
            dispatch_ns: 90.0,
        }
    }

    /// 8-core Broadwell (CloudLab), §4.1.5 portability target.
    pub fn broadwell_8c() -> CpuSpec {
        CpuSpec {
            name: "Intel Xeon D (Broadwell, 8c)".into(),
            arch: MicroArch::Broadwell,
            cores: 8,
            smt: 1,
            freq_ghz: 3.0,
            l1_kb: 32.0,
            l2_kb: 256.0,
            l3_mb: 20.0,
            mem_bw_gbs: 48.0,
            mem_lat_ns: 80.0,
            bp_quality: 0.92,
            fork_join_us: 1.8,
            dispatch_ns: 85.0,
        }
    }

    /// 8-core Sandy Bridge (CloudLab), §4.1.5 portability target.
    pub fn sandy_bridge_8c() -> CpuSpec {
        CpuSpec {
            name: "Intel Xeon E5 (Sandy Bridge, 8c)".into(),
            arch: MicroArch::SandyBridge,
            cores: 8,
            smt: 1,
            freq_ghz: 2.6,
            l1_kb: 32.0,
            l2_kb: 256.0,
            l3_mb: 20.0,
            mem_bw_gbs: 34.0,
            mem_lat_ns: 95.0,
            bp_quality: 0.88,
            fork_join_us: 2.2,
            dispatch_ns: 110.0,
        }
    }

    /// Intel i7-3820 — the CPU side of the §4.2 OpenCL device-mapping
    /// dataset.
    pub fn i7_3820() -> CpuSpec {
        CpuSpec {
            name: "Intel i7-3820".into(),
            arch: MicroArch::IvyBridgeE,
            cores: 4,
            smt: 2,
            freq_ghz: 3.6,
            l1_kb: 32.0,
            l2_kb: 256.0,
            l3_mb: 10.0,
            mem_bw_gbs: 38.0,
            mem_lat_ns: 80.0,
            bp_quality: 0.9,
            fork_join_us: 1.6,
            dispatch_ns: 90.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for spec in [
            CpuSpec::comet_lake(),
            CpuSpec::skylake_4114(),
            CpuSpec::broadwell_8c(),
            CpuSpec::sandy_bridge_8c(),
            CpuSpec::i7_3820(),
        ] {
            assert!(spec.cores >= 4);
            assert!(spec.smt >= 1);
            assert!(spec.freq_ghz > 1.0);
            assert!(spec.l1_kb <= spec.l2_kb);
            assert!(spec.l2_kb / 1024.0 <= spec.l3_mb);
            assert!(spec.mem_bw_gbs > 10.0);
            assert!((0.5..=1.0).contains(&spec.bp_quality));
        }
    }

    #[test]
    fn skylake_has_twenty_hw_threads() {
        assert_eq!(CpuSpec::skylake_4114().hw_threads(), 20);
        assert_eq!(CpuSpec::comet_lake().hw_threads(), 8);
    }

    #[test]
    fn portability_targets_differ_from_training_arch() {
        let cl = CpuSpec::comet_lake();
        let bw = CpuSpec::broadwell_8c();
        let sb = CpuSpec::sandy_bridge_8c();
        // Same core count (the §4.1.5 requirement)…
        assert_eq!(cl.cores, bw.cores);
        assert_eq!(cl.cores, sb.cores);
        // …but different cache/bandwidth/frequency profiles.
        assert_ne!(cl.l3_mb, bw.l3_mb);
        assert_ne!(cl.mem_bw_gbs, sb.mem_bw_gbs);
        assert_ne!(cl.freq_ghz, bw.freq_ghz);
    }
}
