//! `mga-vec` — IR2Vec-style distributed program embeddings.
//!
//! IR2Vec (VenkataKeerthy et al., TACO 2020) encodes LLVM IR in three
//! steps, all reproduced here over `mga-ir`:
//!
//! 1. **Triple extraction** ([`extract_triples`]): every instruction
//!    contributes knowledge-graph facts `(opcode, TypeOf, type)`,
//!    `(opcode, Next, next-opcode)` and `(opcode, Arg, operand-kind)`.
//! 2. **Seed embedding vocabulary** ([`train_seed_embeddings`]): a TransE
//!    model (translation embeddings, margin ranking loss with negative
//!    sampling) learns a vector per entity — opcodes, types and operand
//!    kinds.
//! 3. **Flow-aware program vectors** ([`SeedEmbeddings::encode_function`]):
//!    each instruction vector is `W_o·E[op] + W_t·E[type] + W_a·Σ args`,
//!    where an argument that is another instruction's result contributes
//!    that instruction's (current) vector — propagated iteratively so
//!    data flow percolates through the code region, cycles included. The
//!    program vector is the sum over instructions.
//!
//! The weights `W_o = 1.0, W_t = 0.5, W_a = 0.2` follow the paper.

use mga_ir::{Function, Module, Opcode, Operand, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Operand-kind entities beyond opcodes and types.
const KIND_VAR: usize = 0;
const KIND_CONST: usize = 1;
const KIND_GLOBAL: usize = 2;
const KIND_LABEL: usize = 3;
const KIND_FUNC: usize = 4;
const NUM_KINDS: usize = 5;

/// Entity universe: opcodes ++ types ++ operand kinds.
pub const NUM_ENTITIES: usize = Opcode::NUM_FEATURE_CLASSES + Type::NUM_FEATURE_CLASSES + NUM_KINDS;

/// Relations of the knowledge graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    TypeOf = 0,
    Next = 1,
    Arg = 2,
}

pub const NUM_RELATIONS: usize = 3;

/// Entity id of an opcode.
pub fn entity_of_opcode(op: Opcode) -> usize {
    op.feature_class()
}

/// Entity id of a type.
pub fn entity_of_type(ty: &Type) -> usize {
    Opcode::NUM_FEATURE_CLASSES + ty.feature_class()
}

fn entity_of_kind(kind: usize) -> usize {
    Opcode::NUM_FEATURE_CLASSES + Type::NUM_FEATURE_CLASSES + kind
}

/// A knowledge-graph fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    pub head: u32,
    pub rel: u32,
    pub tail: u32,
}

/// Extract TransE training triples from every function body in a module.
pub fn extract_triples(m: &Module) -> Vec<Triple> {
    let mut out = Vec::new();
    for f in &m.functions {
        if f.attrs.external {
            continue;
        }
        for b in &f.blocks {
            for (k, &iid) in b.instrs.iter().enumerate() {
                let instr = f.instr(iid);
                let h = entity_of_opcode(instr.op) as u32;
                // (op, TypeOf, ty)
                out.push(Triple {
                    head: h,
                    rel: Rel::TypeOf as u32,
                    tail: entity_of_type(&instr.ty) as u32,
                });
                // (op, Next, next op) within the block.
                if let Some(&next) = b.instrs.get(k + 1) {
                    out.push(Triple {
                        head: h,
                        rel: Rel::Next as u32,
                        tail: entity_of_opcode(f.instr(next).op) as u32,
                    });
                }
                // (op, Arg, kind) per operand.
                for &arg in &instr.args {
                    let kind = match arg {
                        Operand::Instr(_) | Operand::Param(_) => KIND_VAR,
                        Operand::Const(_) => KIND_CONST,
                        Operand::Global(_) => KIND_GLOBAL,
                    };
                    out.push(Triple {
                        head: h,
                        rel: Rel::Arg as u32,
                        tail: entity_of_kind(kind) as u32,
                    });
                }
                // Branches reference labels; calls reference functions.
                if !instr.succs.is_empty() {
                    out.push(Triple {
                        head: h,
                        rel: Rel::Arg as u32,
                        tail: entity_of_kind(KIND_LABEL) as u32,
                    });
                }
                if instr.op == Opcode::Call {
                    out.push(Triple {
                        head: h,
                        rel: Rel::Arg as u32,
                        tail: entity_of_kind(KIND_FUNC) as u32,
                    });
                }
            }
        }
    }
    out
}

/// TransE hyperparameters.
#[derive(Debug, Clone)]
pub struct TransEConfig {
    pub dim: usize,
    pub epochs: usize,
    pub lr: f32,
    pub margin: f32,
}

impl Default for TransEConfig {
    fn default() -> Self {
        TransEConfig {
            dim: 64,
            epochs: 60,
            lr: 0.02,
            margin: 1.0,
        }
    }
}

/// The learned seed-embedding vocabulary.
#[derive(Debug, Clone)]
pub struct SeedEmbeddings {
    pub dim: usize,
    /// `NUM_ENTITIES × dim`, row-major.
    entities: Vec<f32>,
    /// `NUM_RELATIONS × dim`, row-major.
    relations: Vec<f32>,
}

impl SeedEmbeddings {
    pub fn entity(&self, e: usize) -> &[f32] {
        &self.entities[e * self.dim..(e + 1) * self.dim]
    }

    pub fn relation(&self, r: usize) -> &[f32] {
        &self.relations[r * self.dim..(r + 1) * self.dim]
    }

    /// TransE plausibility score of a triple: `-||h + r - t||₂` (higher is
    /// more plausible).
    pub fn score(&self, t: Triple) -> f32 {
        let h = self.entity(t.head as usize);
        let r = self.relation(t.rel as usize);
        let tl = self.entity(t.tail as usize);
        let mut d = 0.0f32;
        for i in 0..self.dim {
            let delta = h[i] + r[i] - tl[i];
            d += delta * delta;
        }
        -d.sqrt()
    }

    /// Flow-aware instruction vectors for a function body, in instruction
    /// arena order. See the module docs for the propagation rule.
    pub fn instruction_vectors(&self, f: &Function) -> Vec<Vec<f32>> {
        const W_OP: f32 = 1.0;
        const W_TY: f32 = 0.5;
        const W_ARG: f32 = 0.2;
        const PASSES: usize = 5;
        let d = self.dim;
        let n = f.instrs.len();
        let mut vecs = vec![vec![0.0f32; d]; n];
        for _pass in 0..PASSES {
            for (_b, iid) in f.iter_instrs() {
                let instr = f.instr(iid);
                let mut v = vec![0.0f32; d];
                axpy(&mut v, W_OP, self.entity(entity_of_opcode(instr.op)));
                axpy(&mut v, W_TY, self.entity(entity_of_type(&instr.ty)));
                for &arg in &instr.args {
                    match arg {
                        Operand::Instr(dep) => {
                            // Flow-aware: use the defining instruction's
                            // current vector (scaled to unit-ish norm so
                            // chains don't blow up).
                            let dep_v = vecs[dep.index()].clone();
                            let norm = dep_v.iter().map(|x| x * x).sum::<f32>().sqrt();
                            let s = if norm > 1.0 { W_ARG / norm } else { W_ARG };
                            axpy(&mut v, s, &dep_v);
                        }
                        Operand::Param(_) => {
                            axpy(&mut v, W_ARG, self.entity(entity_of_kind(KIND_VAR)));
                        }
                        Operand::Const(_) => {
                            axpy(&mut v, W_ARG, self.entity(entity_of_kind(KIND_CONST)));
                        }
                        Operand::Global(_) => {
                            axpy(&mut v, W_ARG, self.entity(entity_of_kind(KIND_GLOBAL)));
                        }
                    }
                }
                if !instr.succs.is_empty() {
                    axpy(&mut v, W_ARG, self.entity(entity_of_kind(KIND_LABEL)));
                }
                if instr.op == Opcode::Call {
                    axpy(&mut v, W_ARG, self.entity(entity_of_kind(KIND_FUNC)));
                }
                vecs[iid.index()] = v;
            }
        }
        vecs
    }

    /// The program vector of a function: sum of its instruction vectors.
    pub fn encode_function(&self, f: &Function) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for v in self.instruction_vectors(f) {
            axpy(&mut out, 1.0, &v);
        }
        out
    }

    /// Program vector of an entire module (sum over non-external
    /// functions).
    pub fn encode_module(&self, m: &Module) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for f in &m.functions {
            if !f.attrs.external {
                axpy(&mut out, 1.0, &self.encode_function(f));
            }
        }
        out
    }
}

fn axpy(dst: &mut [f32], a: f32, src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += a * s;
    }
}

/// Train the TransE seed vocabulary on the extracted triples.
pub fn train_seed_embeddings(triples: &[Triple], cfg: &TransEConfig, seed: u64) -> SeedEmbeddings {
    assert!(!triples.is_empty(), "no triples to train on");
    let mut rng = StdRng::seed_from_u64(seed);
    let d = cfg.dim;
    let bound = (6.0 / d as f64).sqrt() as f32;
    let mut emb = SeedEmbeddings {
        dim: d,
        entities: (0..NUM_ENTITIES * d)
            .map(|_| rng.gen_range(-bound..bound))
            .collect(),
        relations: (0..NUM_RELATIONS * d)
            .map(|_| rng.gen_range(-bound..bound))
            .collect(),
    };
    normalize_rows(&mut emb.relations, d);

    let mut order: Vec<usize> = (0..triples.len()).collect();
    for _epoch in 0..cfg.epochs {
        normalize_rows(&mut emb.entities, d);
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &ti in &order {
            let pos = triples[ti];
            // Corrupt head or tail.
            let mut neg = pos;
            if rng.gen_bool(0.5) {
                neg.head = rng.gen_range(0..NUM_ENTITIES as u32);
            } else {
                neg.tail = rng.gen_range(0..NUM_ENTITIES as u32);
            }
            sgd_step(&mut emb, pos, neg, cfg.lr, cfg.margin);
        }
    }
    emb
}

/// One margin-ranking SGD step on a (positive, negative) triple pair.
fn sgd_step(emb: &mut SeedEmbeddings, pos: Triple, neg: Triple, lr: f32, margin: f32) {
    let d = emb.dim;
    let dist = |emb: &SeedEmbeddings, t: Triple| -> f32 {
        let h = emb.entity(t.head as usize);
        let r = emb.relation(t.rel as usize);
        let tl = emb.entity(t.tail as usize);
        (0..d)
            .map(|i| {
                let x = h[i] + r[i] - tl[i];
                x * x
            })
            .sum()
    };
    let dp = dist(emb, pos);
    let dn = dist(emb, neg);
    if dp + margin <= dn {
        return; // already satisfied
    }
    // ∂(dp - dn)/∂params; gradient of squared L2 distance.
    let update = |emb: &mut SeedEmbeddings, t: Triple, sign: f32| {
        for i in 0..d {
            let h = emb.entities[t.head as usize * d + i];
            let r = emb.relations[t.rel as usize * d + i];
            let tl = emb.entities[t.tail as usize * d + i];
            let g = 2.0 * (h + r - tl) * sign * lr;
            emb.entities[t.head as usize * d + i] -= g;
            emb.relations[t.rel as usize * d + i] -= g;
            emb.entities[t.tail as usize * d + i] += g;
        }
    };
    update(emb, pos, 1.0);
    update(emb, neg, -1.0);
}

fn normalize_rows(data: &mut [f32], d: usize) {
    for row in data.chunks_mut(d) {
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1.0 {
            for x in row {
                *x /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_ir::builder::FunctionBuilder;
    use mga_ir::instr::CmpPred;
    use mga_ir::Param;

    fn sample_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new(
            "saxpy",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "x".into(),
                    ty: Type::F32.ptr(),
                },
                Param {
                    name: "y".into(),
                    ty: Type::F32.ptr(),
                },
            ],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, ip) = b.phi_begin(Type::I64);
        let c = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let px = b.gep(b.param(1), i);
        let py = b.gep(b.param(2), i);
        let vx = b.load(px);
        let vy = b.load(py);
        let a = b.const_f32(3.0);
        let ax = b.fmul(vx, a);
        let s = b.fadd(ax, vy);
        b.store(s, py);
        let one = b.const_i64(1);
        let ix = b.add(i, one);
        b.br(header);
        b.phi_finish(ip, vec![(entry, zero), (body, ix)]);
        b.switch_to(exit);
        b.ret_void();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn triples_cover_all_relations() {
        let m = sample_module();
        let triples = extract_triples(&m);
        assert!(!triples.is_empty());
        let rels: std::collections::HashSet<u32> = triples.iter().map(|t| t.rel).collect();
        assert!(rels.contains(&(Rel::TypeOf as u32)));
        assert!(rels.contains(&(Rel::Next as u32)));
        assert!(rels.contains(&(Rel::Arg as u32)));
        for t in &triples {
            assert!((t.head as usize) < NUM_ENTITIES);
            assert!((t.tail as usize) < NUM_ENTITIES);
            assert!((t.rel as usize) < NUM_RELATIONS);
        }
    }

    #[test]
    fn transe_ranks_observed_triples_above_corrupted() {
        let m = sample_module();
        let triples = extract_triples(&m);
        let cfg = TransEConfig {
            dim: 16,
            epochs: 80,
            ..TransEConfig::default()
        };
        let emb = train_seed_embeddings(&triples, &cfg, 7);
        // Average score of observed triples must beat random corruptions.
        let mut rng = StdRng::seed_from_u64(3);
        let mut pos_score = 0.0;
        let mut neg_score = 0.0;
        for &t in &triples {
            pos_score += emb.score(t);
            let mut n = t;
            n.tail = rng.gen_range(0..NUM_ENTITIES as u32);
            neg_score += emb.score(n);
        }
        pos_score /= triples.len() as f32;
        neg_score /= triples.len() as f32;
        assert!(
            pos_score > neg_score + 0.1,
            "TransE failed to separate: pos {pos_score} vs neg {neg_score}"
        );
    }

    #[test]
    fn seed_training_is_deterministic() {
        let m = sample_module();
        let triples = extract_triples(&m);
        let cfg = TransEConfig {
            dim: 8,
            epochs: 5,
            ..TransEConfig::default()
        };
        let a = train_seed_embeddings(&triples, &cfg, 11);
        let b = train_seed_embeddings(&triples, &cfg, 11);
        assert_eq!(a.entities, b.entities);
        let c = train_seed_embeddings(&triples, &cfg, 12);
        assert_ne!(a.entities, c.entities);
    }

    #[test]
    fn program_vector_has_dim_and_is_nonzero() {
        let m = sample_module();
        let triples = extract_triples(&m);
        let cfg = TransEConfig {
            dim: 16,
            epochs: 10,
            ..TransEConfig::default()
        };
        let emb = train_seed_embeddings(&triples, &cfg, 1);
        let v = emb.encode_function(&m.functions[0]);
        assert_eq!(v.len(), 16);
        assert!(v.iter().any(|&x| x != 0.0));
        let vm = emb.encode_module(&m);
        assert_eq!(
            vm, v,
            "single-function module vector equals function vector"
        );
    }

    #[test]
    fn different_programs_get_different_vectors() {
        let m1 = sample_module();
        // An integer-only kernel.
        let mut m2 = Module::new("m2");
        let mut b = FunctionBuilder::new(
            "intsum",
            vec![Param {
                name: "n".into(),
                ty: Type::I64,
            }],
            Type::I64,
        );
        let two = b.const_i64(2);
        let sq = b.mul(b.param(0), two);
        let sq2 = b.add(sq, two);
        b.ret(sq2);
        m2.add_function(b.finish());

        let mut triples = extract_triples(&m1);
        triples.extend(extract_triples(&m2));
        let cfg = TransEConfig {
            dim: 16,
            epochs: 20,
            ..TransEConfig::default()
        };
        let emb = train_seed_embeddings(&triples, &cfg, 5);
        let v1 = emb.encode_function(&m1.functions[0]);
        let v2 = emb.encode_function(&m2.functions[0]);
        let dist: f32 = v1
            .iter()
            .zip(&v2)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.5, "distinct kernels too close: {dist}");
    }

    #[test]
    fn flow_aware_vectors_differ_from_flow_free() {
        // Two kernels with the same opcode multiset but different data
        // flow: a*(b+c) vs (a*b)+c. Flow-aware encoding must distinguish
        // the chained dependency structure.
        let build = |chain: bool| {
            let mut b = FunctionBuilder::new(
                "k",
                vec![
                    Param {
                        name: "a".into(),
                        ty: Type::F64,
                    },
                    Param {
                        name: "b".into(),
                        ty: Type::F64,
                    },
                    Param {
                        name: "c".into(),
                        ty: Type::F64,
                    },
                ],
                Type::F64,
            );
            let r = if chain {
                let s = b.fadd(b.param(1), b.param(2));
                b.fmul(b.param(0), s)
            } else {
                let s = b.fmul(b.param(0), b.param(1));
                b.fadd(s, b.param(2))
            };
            b.ret(r);
            b.finish()
        };
        let f1 = build(true);
        let f2 = build(false);
        let mut m = Module::new("m");
        m.add_function(f1);
        m.add_function(f2);
        let triples = extract_triples(&m);
        let emb = train_seed_embeddings(
            &triples,
            &TransEConfig {
                dim: 16,
                epochs: 30,
                ..TransEConfig::default()
            },
            9,
        );
        let v1 = emb.encode_function(&m.functions[0]);
        let v2 = emb.encode_function(&m.functions[1]);
        assert_ne!(v1, v2, "flow-aware encoding collapsed distinct data flow");
    }

    #[test]
    fn same_family_kernels_embed_closer_than_cross_family() {
        // Semantic check: two GEMM-like kernels must be nearer each other
        // (cosine) than either is to a branchy comparison kernel.
        let gemm_like = |name: &str, fused: usize| {
            let mut b = FunctionBuilder::new(
                name,
                vec![
                    Param {
                        name: "a".into(),
                        ty: Type::F64,
                    },
                    Param {
                        name: "b".into(),
                        ty: Type::F64,
                    },
                ],
                Type::F64,
            );
            let mut acc = b.fmul(b.param(0), b.param(1));
            for _ in 0..fused {
                acc = b.fadd(acc, acc);
                acc = b.fmul(acc, b.param(0));
            }
            b.ret(acc);
            b.finish()
        };
        let branchy = {
            let mut b = FunctionBuilder::new(
                "cmp",
                vec![
                    Param {
                        name: "a".into(),
                        ty: Type::I64,
                    },
                    Param {
                        name: "b".into(),
                        ty: Type::I64,
                    },
                ],
                Type::I64,
            );
            let c = b.icmp(CmpPred::Lt, b.param(0), b.param(1));
            let s = b.select(c, b.param(0), b.param(1));
            let t = b.xor(s, b.param(0));
            let u = b.and(t, b.param(1));
            b.ret(u);
            b.finish()
        };
        let mut m = Module::new("m");
        m.add_function(gemm_like("g1", 2));
        m.add_function(gemm_like("g2", 3));
        m.add_function(branchy);
        let triples = extract_triples(&m);
        let emb = train_seed_embeddings(
            &triples,
            &TransEConfig {
                dim: 24,
                epochs: 40,
                ..Default::default()
            },
            17,
        );
        let v: Vec<Vec<f32>> = m.functions.iter().map(|f| emb.encode_function(f)).collect();
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let within = cos(&v[0], &v[1]);
        let across = cos(&v[0], &v[2]).max(cos(&v[1], &v[2]));
        assert!(
            within > across,
            "GEMM-family similarity {within} not above cross-family {across}"
        );
    }

    #[test]
    fn entity_ids_partition() {
        // Opcode, type and kind entity id ranges must not overlap.
        let op_max = Opcode::ALL
            .iter()
            .map(|&o| entity_of_opcode(o))
            .max()
            .unwrap();
        assert!(op_max < Opcode::NUM_FEATURE_CLASSES);
        assert_eq!(entity_of_type(&Type::Void), Opcode::NUM_FEATURE_CLASSES);
        assert_eq!(
            entity_of_kind(KIND_FUNC),
            NUM_ENTITIES - 1,
            "kind entities end the universe"
        );
    }
}
