//! Deterministic fault injection (`MGA_FAULT`).
//!
//! Every recovery path in the training stack — NaN-gradient backoff,
//! worker-panic reporting, corrupted-checkpoint rejection, degraded-
//! sample imputation — must be exercisable on demand, repeatably, in CI.
//! This module arms *injection sites* compiled into the hot paths from a
//! single environment variable:
//!
//! ```text
//! MGA_FAULT=<site>:<kind>:<prob>:<seed>[,<site>:<kind>:<prob>:<seed>...]
//! ```
//!
//! | site     | kinds                  | effect at the site |
//! |----------|------------------------|--------------------|
//! | `grad`   | `nan`                  | poison a gradient with NaN after the backward pass |
//! | `pool`   | `panic`                | panic inside a worker-pool task body |
//! | `ckpt`   | `truncate`, `bitflip`  | corrupt checkpoint bytes before they reach disk |
//! | `sample` | `empty`                | treat a kernel's graph sample as degenerate at predict |
//! | `shard`  | `crash`, `stall`       | kill or stall a serving-cluster shard at a tick boundary |
//! | `route`  | `misdirect`            | route a request to the wrong shard (`mga-serve`) |
//! | `swap`   | `corrupt`              | corrupt hot-swap checkpoint bytes after the read |
//!
//! e.g. `MGA_FAULT=grad:nan:0.05:7` poisons gradients on ~5 % of epochs,
//! deterministically: the n-th check of a site fires iff
//! `splitmix64(seed, n) < prob·2⁶⁴`, so a given spec always fires on the
//! same calls regardless of timing or thread interleaving at the call
//! site (sites are checked from deterministic points in the code).
//!
//! Cost model (mirrors [`crate::trace`]): with `MGA_FAULT` unset a site
//! check is a single relaxed atomic load returning `None` — no lock, no
//! allocation, no RNG. Armed runs take a short mutex on each check.
//!
//! Every fire bumps a `fault.fired.<site>` metrics counter so a harness
//! (the `validate_faults` binary) can assert each site actually fired.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Injection sites compiled into the workspace's hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// After the backward pass, before gradient clipping (`mga-core`).
    Grad,
    /// Inside a worker-pool task body (`mga-nn`).
    Pool,
    /// On the serialized checkpoint bytes before writing (`mga-core`).
    Ckpt,
    /// Per distinct kernel during prediction (`mga-core`).
    Sample,
    /// Per serving-cluster shard, once per cluster tick (`mga-serve`).
    Shard,
    /// Per routed request at cluster admission (`mga-serve`).
    Route,
    /// On hot-swap checkpoint bytes after the read (`mga-serve`).
    Swap,
}

impl Site {
    fn parse(s: &str) -> Option<Site> {
        Some(match s {
            "grad" => Site::Grad,
            "pool" => Site::Pool,
            "ckpt" => Site::Ckpt,
            "sample" => Site::Sample,
            "shard" => Site::Shard,
            "route" => Site::Route,
            "swap" => Site::Swap,
            _ => return None,
        })
    }

    fn fired_counter(self) -> &'static crate::metrics::Counter {
        match self {
            Site::Grad => crate::metrics::counter("fault.fired.grad"),
            Site::Pool => crate::metrics::counter("fault.fired.pool"),
            Site::Ckpt => crate::metrics::counter("fault.fired.ckpt"),
            Site::Sample => crate::metrics::counter("fault.fired.sample"),
            Site::Shard => crate::metrics::counter("fault.fired.shard"),
            Site::Route => crate::metrics::counter("fault.fired.route"),
            Site::Swap => crate::metrics::counter("fault.fired.swap"),
        }
    }
}

/// What to inject when a site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Poison a value with NaN (`grad`).
    Nan,
    /// Panic in the task body (`pool`).
    Panic,
    /// Truncate the byte stream (`ckpt`).
    Truncate,
    /// Flip one bit (`ckpt`).
    BitFlip,
    /// Pretend the sample is empty/degenerate (`sample`).
    Empty,
    /// Take the shard down hard; its queue must be evacuated (`shard`).
    Crash,
    /// Freeze the shard's dispatch loop for a few ticks (`shard`).
    Stall,
    /// Send the request to a shard other than its hash owner (`route`).
    Misdirect,
    /// Flip a bit in the candidate checkpoint bytes (`swap`).
    Corrupt,
}

impl Kind {
    fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "nan" => Kind::Nan,
            "panic" => Kind::Panic,
            "truncate" => Kind::Truncate,
            "bitflip" => Kind::BitFlip,
            "empty" => Kind::Empty,
            "crash" => Kind::Crash,
            "stall" => Kind::Stall,
            "misdirect" => Kind::Misdirect,
            "corrupt" => Kind::Corrupt,
            _ => return None,
        })
    }
}

/// A fired fault: what to inject, plus a deterministic draw the site can
/// use to pick *where* (e.g. which byte to flip).
#[derive(Debug, Clone, Copy)]
pub struct Shot {
    pub kind: Kind,
    /// Uniform `u64` derived from the spec's seed and fire ordinal.
    pub draw: u64,
}

struct Spec {
    site: Site,
    kind: Kind,
    /// Fire threshold: fires iff the per-check hash < `threshold`.
    threshold: u64,
    seed: u64,
    /// How many times this spec has been checked.
    checks: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn specs() -> &'static Mutex<Vec<Spec>> {
    static SPECS: OnceLock<Mutex<Vec<Spec>>> = OnceLock::new();
    SPECS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Is any fault spec armed? One relaxed load; the disabled path of every
/// injection site.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Parse and arm a fault spec (see the module docs for the grammar).
/// Replaces any previously armed specs. An empty string disarms.
pub fn set_spec(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for part in spec.split([',', ';']) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let fields: Vec<&str> = part.split(':').collect();
        if fields.len() != 4 {
            return Err(format!(
                "fault spec `{part}`: expected <site>:<kind>:<prob>:<seed>"
            ));
        }
        let site = Site::parse(fields[0])
            .ok_or_else(|| format!("fault spec `{part}`: unknown site `{}`", fields[0]))?;
        let kind = Kind::parse(fields[1])
            .ok_or_else(|| format!("fault spec `{part}`: unknown kind `{}`", fields[1]))?;
        let prob: f64 = fields[2]
            .parse()
            .ok()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| format!("fault spec `{part}`: bad probability `{}`", fields[2]))?;
        let seed: u64 = fields[3]
            .parse()
            .map_err(|_| format!("fault spec `{part}`: bad seed `{}`", fields[3]))?;
        let threshold = if prob >= 1.0 {
            u64::MAX
        } else {
            (prob * u64::MAX as f64) as u64
        };
        parsed.push(Spec {
            site,
            kind,
            threshold,
            seed,
            checks: 0,
        });
    }
    let armed = !parsed.is_empty();
    *specs().lock().unwrap() = parsed;
    ARMED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Disarm all fault specs.
pub fn clear() {
    specs().lock().unwrap().clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Read `MGA_FAULT` and arm it. Unset/empty leaves injection off.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MGA_FAULT") {
        if let Err(e) = set_spec(&v) {
            crate::error!("MGA_FAULT: {e}");
        } else if armed() {
            crate::warn!("fault injection armed: MGA_FAULT={}", v.trim());
        }
    }
}

/// Check the injection site: `None` when disarmed or this check's
/// deterministic draw does not fire. When it fires, the
/// `fault.fired.<site>` counter is bumped and the [`Shot`] carries the
/// kind plus a positional draw.
#[inline]
pub fn fire(site: Site) -> Option<Shot> {
    if !armed() {
        return None;
    }
    fire_armed(site)
}

#[cold]
fn fire_armed(site: Site) -> Option<Shot> {
    let mut specs = specs().lock().unwrap();
    for spec in specs.iter_mut() {
        if spec.site != site {
            continue;
        }
        let n = spec.checks;
        spec.checks += 1;
        let h = splitmix64(spec.seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(n));
        if h <= spec.threshold {
            let kind = spec.kind;
            let draw = splitmix64(h);
            drop(specs);
            site.fired_counter().inc();
            crate::warn!("fault injected: {site:?}/{kind:?} (check #{n})");
            return Some(Shot { kind, draw });
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global, so all fault tests share one
    /// function (the same pattern as the trace tests).
    #[test]
    fn specs_parse_arm_and_fire_deterministically() {
        assert!(!armed(), "fault injection must default to off");
        assert!(fire(Site::Grad).is_none());

        assert!(set_spec("grad:nan:bad:1").is_err());
        assert!(set_spec("grad:frobnicate:0.5:1").is_err());
        assert!(set_spec("nope:nan:0.5:1").is_err());
        assert!(set_spec("grad:nan:0.5").is_err());
        assert!(!armed(), "failed parses must not arm");

        set_spec("grad:nan:1.0:42").unwrap();
        assert!(armed());
        let shot = fire(Site::Grad).expect("prob 1 always fires");
        assert_eq!(shot.kind, Kind::Nan);
        assert!(fire(Site::Pool).is_none(), "other sites stay quiet");

        // Deterministic fire pattern: same spec, same sequence.
        set_spec("ckpt:bitflip:0.3:7").unwrap();
        let a: Vec<bool> = (0..64).map(|_| fire(Site::Ckpt).is_some()).collect();
        set_spec("ckpt:bitflip:0.3:7").unwrap();
        let b: Vec<bool> = (0..64).map(|_| fire(Site::Ckpt).is_some()).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 5 && fired < 30, "~30% of 64 checks, got {fired}");

        // Zero probability never fires.
        set_spec("pool:panic:0:1").unwrap();
        assert!((0..100).all(|_| fire(Site::Pool).is_none()));

        clear();
        assert!(!armed());
        assert!(fire(Site::Ckpt).is_none());
    }
}
