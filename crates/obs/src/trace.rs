//! Hierarchical span tracing.
//!
//! A [`Span`] is an RAII guard created by [`span`] (or the [`crate::span!`]
//! macro). While a span is alive, child spans opened on the same thread
//! nest under it; closing a span adds its wall time to a per-thread
//! aggregation trie keyed by the span *path* (`train_epoch/forward/...`).
//! [`report`] merges every thread's trie into one tree; [`render_summary`]
//! renders it with call counts, totals and parent percentages.
//!
//! Cost model: when tracing is disabled (the default) [`span`] performs a
//! single relaxed atomic load and returns an inert guard — no clock read,
//! no allocation, no lock. When enabled, a span costs two clock reads,
//! one short uncontended mutex lock on the thread's own trie, and (with a
//! sink installed) one buffered JSONL line.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);

/// Is tracing currently enabled? One relaxed load; inlined into every
/// span call site so the disabled path stays near-free.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span collection on or off at runtime (tests and embedders; the
/// binaries use [`init_from_env`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Read `MGA_TRACE`: empty/`0` leaves tracing off, `1` enables in-memory
/// aggregation only, anything else is a JSONL sink path.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MGA_TRACE") {
        let v = v.trim();
        if v.is_empty() || v == "0" {
            return;
        }
        if v != "1" {
            if let Err(e) = set_sink_path(v) {
                crate::error!("MGA_TRACE={v}: cannot open sink: {e}");
            }
        }
        set_enabled(true);
    }
}

/// Process-start reference for event timestamps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------
// Sink: JSONL span-close events.
// ---------------------------------------------------------------------

fn sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install a JSONL event sink (truncates `path`). Does not by itself
/// enable tracing — callers pair this with [`set_enabled`].
pub fn set_sink_path(path: &str) -> std::io::Result<()> {
    let f = File::create(path)?;
    *sink().lock().unwrap() = Some(BufWriter::new(f));
    Ok(())
}

/// Drop the sink, flushing buffered events first.
pub fn clear_sink() {
    if let Some(mut w) = sink().lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// Flush buffered events without removing the sink.
pub fn flush_sink() {
    if let Some(w) = sink().lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

fn emit_event(path: &str, name: &str, thread: u64, start_ns: u64, dur_ns: u64) {
    let mut guard = sink().lock().unwrap();
    if let Some(w) = guard.as_mut() {
        // Span names are static identifiers, but escape defensively so
        // the sink always holds valid JSON.
        let _ = writeln!(
            w,
            "{{\"type\":\"span\",\"path\":{},\"name\":{},\"thread\":{thread},\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}",
            crate::json::escape(path),
            crate::json::escape(name),
        );
    }
}

// ---------------------------------------------------------------------
// Per-thread aggregation tries.
// ---------------------------------------------------------------------

struct Node {
    name: &'static str,
    /// Full `a/b/c` path, built once at node creation.
    path: String,
    count: u64,
    total_ns: u64,
    children: HashMap<&'static str, usize>,
}

struct LocalTrie {
    thread_id: u64,
    nodes: Vec<Node>,
    /// Indices of the currently open spans (root is implicit index 0).
    stack: Vec<usize>,
}

impl LocalTrie {
    fn new(thread_id: u64) -> LocalTrie {
        LocalTrie {
            thread_id,
            nodes: vec![Node {
                name: "",
                path: String::new(),
                count: 0,
                total_ns: 0,
                children: HashMap::new(),
            }],
            stack: Vec::new(),
        }
    }

    fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(0);
        let idx = match self.nodes[parent].children.get(name) {
            Some(&i) => i,
            None => {
                let path = if self.nodes[parent].path.is_empty() {
                    name.to_string()
                } else {
                    format!("{}/{name}", self.nodes[parent].path)
                };
                let i = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    path,
                    count: 0,
                    total_ns: 0,
                    children: HashMap::new(),
                });
                self.nodes[parent].children.insert(name, i);
                i
            }
        };
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, dur_ns: u64) {
        // RAII guards close strictly innermost-first on their own thread,
        // so the top of the stack is always the span being closed.
        debug_assert_eq!(self.stack.last().copied(), Some(idx));
        self.stack.pop();
        let n = &mut self.nodes[idx];
        n.count += 1;
        n.total_ns += dur_ns;
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<LocalTrie>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<LocalTrie>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<LocalTrie>> = {
        let id = THREAD_IDS.fetch_add(1, Ordering::Relaxed);
        let trie = Arc::new(Mutex::new(LocalTrie::new(id)));
        registry().lock().unwrap().push(trie.clone());
        trie
    };
}

// ---------------------------------------------------------------------
// The span guard.
// ---------------------------------------------------------------------

/// An open span. Closing (dropping) it records the elapsed wall time
/// under its path in the calling thread's trie and, if a sink is
/// installed, emits one JSONL event.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    start: Instant,
    node: usize,
}

/// Open a span named `name` under the calling thread's innermost open
/// span. Returns an inert guard when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let _ = epoch(); // pin the timestamp reference before the first span
    let node = LOCAL.with(|t| t.lock().unwrap().enter(name));
    Span {
        inner: Some(SpanInner {
            start: Instant::now(),
            node,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_ns = inner.start.elapsed().as_nanos() as u64;
            let (path, name, thread_id) = LOCAL.with(|t| {
                let mut t = t.lock().unwrap();
                t.exit(inner.node, dur_ns);
                let n = &t.nodes[inner.node];
                (n.path.clone(), n.name, t.thread_id)
            });
            let start_ns = inner.start.duration_since(epoch()).as_nanos() as u64;
            emit_event(&path, name, thread_id, start_ns, dur_ns);
        }
    }
}

/// Open a span for the lexical scope of the macro invocation:
/// `mga_obs::span!("train_epoch");`. Hygienic — multiple invocations can
/// share a scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _span_guard = $crate::trace::span($name);
    };
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

/// One merged span-tree node, depth-first order (children follow their
/// parent, heaviest subtree first).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    pub path: String,
    pub name: String,
    pub depth: usize,
    pub count: u64,
    pub total_ns: u64,
}

#[derive(Default)]
struct Merged {
    count: u64,
    total_ns: u64,
    children: Vec<(String, Merged)>,
}

impl Merged {
    fn child(&mut self, name: &str) -> &mut Merged {
        if let Some(i) = self.children.iter().position(|(n, _)| n == name) {
            &mut self.children[i].1
        } else {
            self.children.push((name.to_string(), Merged::default()));
            &mut self.children.last_mut().unwrap().1
        }
    }
}

fn merge_all() -> Merged {
    let mut root = Merged::default();
    let tries = registry().lock().unwrap();
    for trie in tries.iter() {
        let t = trie.lock().unwrap();
        // Walk the trie from its root, mirroring into `root`.
        fn walk(t: &LocalTrie, idx: usize, into: &mut Merged) {
            for (&name, &ci) in &t.nodes[idx].children {
                let node = &t.nodes[ci];
                let m = into.child(name);
                m.count += node.count;
                m.total_ns += node.total_ns;
                walk(t, ci, m);
            }
        }
        walk(&t, 0, &mut root);
    }
    root
}

/// Merge every thread's trie into one aggregated span tree.
pub fn report() -> Vec<SpanStat> {
    let mut root = merge_all();
    let mut out = Vec::new();
    fn flatten(m: &mut Merged, prefix: &str, depth: usize, out: &mut Vec<SpanStat>) {
        m.children.sort_by_key(|c| std::cmp::Reverse(c.1.total_ns));
        for (name, child) in &mut m.children {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            out.push(SpanStat {
                path: path.clone(),
                name: name.clone(),
                depth,
                count: child.count,
                total_ns: child.total_ns,
            });
            flatten(child, &path, depth + 1, out);
        }
    }
    flatten(&mut root, "", 0, &mut out);
    out
}

/// Total time recorded under `path` (exact match), in nanoseconds.
pub fn total_ns(path: &str) -> u64 {
    report()
        .iter()
        .find(|s| s.path == path)
        .map(|s| s.total_ns)
        .unwrap_or(0)
}

/// Render the aggregated span tree as an indented table: calls, total
/// milliseconds, and share of the parent's time.
pub fn render_summary() -> String {
    let stats = report();
    if stats.is_empty() {
        return String::new();
    }
    // Parent totals by path for percentage computation.
    let mut totals: HashMap<&str, u64> = HashMap::new();
    for s in &stats {
        totals.insert(&s.path, s.total_ns);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>10} {:>12} {:>7}\n",
        "span", "calls", "total ms", "%parent"
    ));
    for s in &stats {
        let label = format!("{}{}", "  ".repeat(s.depth), s.name);
        let pct = match s.path.rfind('/') {
            Some(cut) => {
                let parent = totals.get(&s.path[..cut]).copied().unwrap_or(0);
                if parent > 0 {
                    format!("{:.1}", 100.0 * s.total_ns as f64 / parent as f64)
                } else {
                    "-".to_string()
                }
            }
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{label:<44} {:>10} {:>12.3} {pct:>7}\n",
            s.count,
            s.total_ns as f64 / 1e6,
        ));
    }
    out
}

/// Clear every thread's aggregated data (open spans survive: the stack
/// is preserved, so guards created before the reset still close safely).
pub fn reset() {
    let tries = registry().lock().unwrap();
    for trie in tries.iter() {
        let mut t = trie.lock().unwrap();
        for n in &mut t.nodes {
            n.count = 0;
            n.total_ns = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global, so this crate keeps all trace
    /// tests in one function to avoid cross-test interference.
    #[test]
    fn spans_aggregate_into_a_tree() {
        assert!(!enabled(), "tracing must default to off");
        {
            // Disabled spans are inert.
            let g = span("never");
            assert!(g.inner.is_none());
        }
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            for _ in 0..2 {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        // A span on another thread lands in the merged report too.
        std::thread::spawn(|| {
            let _g = span("worker_side");
            std::thread::sleep(std::time::Duration::from_millis(1));
        })
        .join()
        .unwrap();
        set_enabled(false);

        let stats = report();
        let outer = stats.iter().find(|s| s.path == "outer").expect("outer");
        let inner = stats
            .iter()
            .find(|s| s.path == "outer/inner")
            .expect("inner nests under outer");
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 6);
        assert!(outer.total_ns >= inner.total_ns, "parent includes child");
        assert!(inner.depth == outer.depth + 1);
        assert!(stats.iter().any(|s| s.path == "worker_side"));
        assert!(total_ns("outer") >= 3_000_000, "3 sleeps of 1ms");

        let summary = render_summary();
        assert!(summary.contains("outer"));
        assert!(summary.contains("inner"));

        reset();
        assert_eq!(total_ns("outer"), 0);
    }
}
