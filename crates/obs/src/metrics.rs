//! A process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are `&'static` and interned by name on first use, so hot
//! paths resolve their metric once (or cache the handle) and then pay a
//! single relaxed atomic op per update. Collection is always on — an
//! increment is cheaper than checking whether anyone is listening.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::hist::LogHistogram;

/// Monotonic event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (stored as f64 bits).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram with Prometheus-style upper-inclusive buckets:
/// bucket `i` counts observations `v` with `bounds[i-1] < v <= bounds[i]`;
/// one extra overflow bucket counts `v > bounds.last()`.
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    #[inline]
    pub fn observe(&self, v: f64) {
        let i = self.bounds.partition_point(|b| *b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS on the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    LogHist(&'static LogHistogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Lock the registry, shrugging off poisoning: a panic elsewhere while
/// interning must not take process-wide telemetry down with it (the map
/// is only ever grown, so a poisoned lock still guards a valid map).
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Intern (or fetch) the counter named `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = lock_registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Intern (or fetch) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = lock_registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Intern (or fetch) the histogram named `name`. The `bounds` apply on
/// first registration; later calls return the existing histogram.
pub fn histogram(name: &'static str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = lock_registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Intern (or fetch) the log₂-bucketed latency histogram named `name`
/// (see [`crate::hist`]): fixed power-of-two buckets over nanoseconds,
/// lock-free observe, mergeable snapshots.
pub fn log_histogram(name: &'static str) -> &'static LogHistogram {
    let mut reg = lock_registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::LogHist(Box::leak(Box::new(LogHistogram::new()))))
    {
        Metric::LogHist(h) => h,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// A point-in-time view of one metric. Snapshots are cold-path values
/// (export, tests), so the size spread between the scalar and histogram
/// variants is not worth boxing away.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        bounds: Vec<f64>,
        buckets: Vec<u64>,
        count: u64,
        sum: f64,
    },
    /// Log₂-bucketed nanosecond histogram; bucket `b ≥ 1` covers
    /// `[2^(b-1), 2^b)`, bucket 0 holds exact zeros.
    LogHist(crate::hist::HistSnapshot),
}

/// Snapshot every registered metric, **sorted by name** — the registry
/// is a `BTreeMap`, so snapshot order (and every serialization built on
/// it) is deterministic across runs and telemetry artifacts diff
/// cleanly. Pinned by `snapshot_and_jsonl_are_sorted_by_name`.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    let reg = lock_registry();
    reg.iter()
        .map(|(&name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram {
                    bounds: h.bounds().to_vec(),
                    buckets: h.bucket_counts(),
                    count: h.count(),
                    sum: h.sum(),
                },
                Metric::LogHist(h) => MetricValue::LogHist(h.snapshot()),
            };
            (name, v)
        })
        .collect()
}

/// Serialize the snapshot as JSONL — one `{"type": ..., "name": ...}`
/// object per line, parseable by [`crate::json::parse`].
pub fn to_jsonl() -> String {
    use crate::json::Json;
    let mut out = String::new();
    for (name, v) in snapshot() {
        let obj = match v {
            MetricValue::Counter(c) => Json::obj(vec![
                ("type", Json::str("counter")),
                ("name", Json::str(name)),
                ("value", Json::Num(c as f64)),
            ]),
            MetricValue::Gauge(g) => Json::obj(vec![
                ("type", Json::str("gauge")),
                ("name", Json::str(name)),
                ("value", Json::Num(g)),
            ]),
            MetricValue::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => Json::obj(vec![
                ("type", Json::str("histogram")),
                ("name", Json::str(name)),
                (
                    "bounds",
                    Json::Arr(bounds.into_iter().map(Json::Num).collect()),
                ),
                (
                    "buckets",
                    Json::Arr(buckets.into_iter().map(|b| Json::Num(b as f64)).collect()),
                ),
                ("count", Json::Num(count as f64)),
                ("sum", Json::Num(sum)),
            ]),
            MetricValue::LogHist(s) => Json::obj(vec![
                ("type", Json::str("log_histogram")),
                ("name", Json::str(name)),
                (
                    "buckets",
                    // Sparse [bucket_index, count] pairs: 65 mostly-empty
                    // buckets per histogram would dominate the snapshot.
                    Json::Arr(
                        s.buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &n)| n > 0)
                            .map(|(b, &n)| {
                                Json::Arr(vec![Json::Num(b as f64), Json::Num(n as f64)])
                            })
                            .collect(),
                    ),
                ),
                ("count", Json::Num(s.count as f64)),
                ("sum", Json::Num(s.sum as f64)),
                ("p50", Json::Num(s.percentile(50.0) as f64)),
                ("p99", Json::Num(s.percentile(99.0) as f64)),
            ]),
        };
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    out
}

/// Render the snapshot as a human-readable table.
pub fn render_table() -> String {
    let mut out = String::new();
    for (name, v) in snapshot() {
        match v {
            MetricValue::Counter(c) => out.push_str(&format!("{name:<40} counter {c}\n")),
            MetricValue::Gauge(g) => out.push_str(&format!("{name:<40} gauge   {g:.6}\n")),
            MetricValue::Histogram {
                count,
                sum,
                bounds,
                buckets,
            } => {
                out.push_str(&format!(
                    "{name:<40} hist    n={count} sum={sum:.3} mean={:.3}\n",
                    if count > 0 { sum / count as f64 } else { 0.0 }
                ));
                for (i, b) in buckets.iter().enumerate() {
                    if *b == 0 {
                        continue;
                    }
                    let label = if i < bounds.len() {
                        format!("<= {}", bounds[i])
                    } else {
                        format!("> {}", bounds[bounds.len() - 1])
                    };
                    out.push_str(&format!("{:<40}   {label:<12} {b}\n", ""));
                }
            }
            MetricValue::LogHist(s) => {
                out.push_str(&format!(
                    "{name:<40} loghist n={} mean={:.0}ns p50={}ns p99={}ns\n",
                    s.count,
                    s.mean(),
                    s.percentile(50.0),
                    s.percentile(99.0),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let c = counter("test.counter");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.counter").get(), 5, "same handle by name");
        let g = gauge("test.gauge");
        g.set(2.5);
        assert_eq!(gauge("test.gauge").get(), 2.5);
        let snap = snapshot();
        assert!(snap
            .iter()
            .any(|(n, v)| *n == "test.counter" && *v == MetricValue::Counter(5)));
    }

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let h = histogram("test.hist.bounds", &[1.0, 10.0, 100.0]);
        // Exactly on each boundary, below the first, above the last.
        h.observe(0.5); // bucket 0 (<= 1)
        h.observe(1.0); // bucket 0 — boundary is inclusive
        h.observe(1.0000001); // bucket 1
        h.observe(10.0); // bucket 1
        h.observe(100.0); // bucket 2
        h.observe(100.0001); // overflow
        h.observe(f64::MAX); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert!(h.sum() > 100.0);
    }

    #[test]
    fn histogram_negative_and_zero_land_in_first_bucket() {
        let h = histogram("test.hist.neg", &[0.0, 5.0]);
        h.observe(-3.0);
        h.observe(0.0);
        h.observe(4.9);
        assert_eq!(h.bucket_counts(), vec![2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_collision_across_types_panics() {
        counter("test.collision");
        gauge("test.collision");
    }

    #[test]
    fn log_histograms_register_and_serialize() {
        let h = log_histogram("test.loghist");
        h.observe(100);
        h.observe(100_000);
        assert_eq!(log_histogram("test.loghist").count(), 2, "same handle");
        let snap = snapshot();
        let (_, v) = snap
            .iter()
            .find(|(n, _)| *n == "test.loghist")
            .expect("registered");
        let MetricValue::LogHist(s) = v else {
            panic!("wrong metric type");
        };
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 100_100);
        // The JSONL line round-trips through the strict parser.
        let line = to_jsonl()
            .lines()
            .find(|l| l.contains("test.loghist"))
            .expect("jsonl line")
            .to_string();
        let doc = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(
            doc.get("type").and_then(|t| t.as_str()),
            Some("log_histogram")
        );
        assert_eq!(doc.get("count").and_then(|c| c.as_f64()), Some(2.0));
        assert_eq!(
            doc.get("buckets").and_then(|b| b.as_arr()).map(|a| a.len()),
            Some(2)
        );
        assert!(render_table().contains("test.loghist"));
    }

    #[test]
    fn snapshot_and_jsonl_are_sorted_by_name() {
        // Register deliberately out of lexicographic order.
        counter("test.order.zz").inc();
        counter("test.order.aa").inc();
        gauge("test.order.mm").set(1.0);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be sorted by metric name");
        // And the JSONL serialization preserves that order line for line.
        let jsonl_names: Vec<String> = to_jsonl()
            .lines()
            .map(|l| {
                crate::json::parse(l)
                    .expect("valid line")
                    .get("name")
                    .and_then(|n| n.as_str())
                    .expect("name field")
                    .to_string()
            })
            .collect();
        let mut jsorted = jsonl_names.clone();
        jsorted.sort();
        assert_eq!(jsonl_names, jsorted, "to_jsonl must be sorted by name");
    }

    #[test]
    fn jsonl_snapshot_parses_back() {
        counter("test.jsonl.counter").add(3);
        histogram("test.jsonl.hist", &[1.0, 2.0]).observe(1.5);
        for line in to_jsonl().lines() {
            let v = crate::json::parse(line).expect("valid JSON line");
            assert!(v.get("type").is_some());
            assert!(v.get("name").and_then(|n| n.as_str()).is_some());
        }
        assert!(render_table().contains("test.jsonl.counter"));
    }
}
