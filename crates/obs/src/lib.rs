//! `mga-obs` — dependency-free observability for the MGA tuner stack.
//!
//! The paper's value claim is quantitative (tuning cost, per-epoch
//! convergence), so every experiment must be *measurable*: where does an
//! epoch's wall time go, how balanced is the worker pool, what exactly
//! did a run train on. This crate provides the four layers the rest of
//! the workspace builds on:
//!
//! * [`trace`] — a hierarchical span tracer: RAII [`span!`] guards feed
//!   per-thread span stacks that aggregate into a wall-time tree (call
//!   counts + total nanoseconds per path), optionally mirrored as JSONL
//!   events to the file named by `MGA_TRACE`. Disabled (the default),
//!   a span is a single relaxed atomic load and **no allocation**.
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   fixed-bucket histograms (always on: increments are single relaxed
//!   atomic ops). `MGA_METRICS_OUT=path` dumps a JSONL snapshot at
//!   [`finish`].
//! * [`log`] — leveled logging to stderr (`MGA_LOG=error|warn|info|debug`,
//!   default `info`) behind the [`error!`]/[`warn!`]/[`info!`]/[`debug!`]
//!   macros, so experiment binaries can narrate progress without
//!   polluting their stdout tables and can run silently in CI.
//! * [`json`] + [`manifest`] — a minimal JSON value type with an emitter
//!   *and* a parser (used by the sink round-trip tests and the CI trace
//!   validator), and [`manifest::RunManifest`]: the machine-readable run
//!   record (seed, thread count, dataset sizes, per-fold timings, final
//!   metrics) every experiment binary writes next to its text output.
//!
//! The serving engine (`mga-serve`) adds a production-telemetry layer on
//! top:
//!
//! * [`hist`] — mergeable log₂-bucketed latency histograms: lock-free
//!   `observe`, shard-mergeable snapshots, and a `percentile` estimator
//!   with a proven 1.5× bound. Registered via
//!   [`metrics::log_histogram`].
//! * [`drift`] — deterministic, tick-driven EWMA drift detectors
//!   (new-kernel rate, cache-miss rate, head-confidence collapse)
//!   emitting typed [`drift::DriftEvent`]s — the triggers for
//!   telemetry-driven continual fine-tuning.
//! * [`export`] — Prometheus text-exposition rendering of the whole
//!   registry (`MGA_PROM_OUT=path` snapshots it at [`finish`]).
//! * [`clock`] — a cheap monotonic nanosecond clock (TSC-based on
//!   x86-64) for hot paths where `Instant::now` is too expensive.
//!
//! Environment variables (all read by [`init_from_env`], which the
//! experiment harness calls once at startup):
//!
//! | Variable | Effect |
//! |---|---|
//! | `MGA_TRACE=path` | enable span tracing; write span-close events as JSONL to `path` (`MGA_TRACE=1` aggregates without a file) |
//! | `MGA_METRICS_OUT=path` | write a JSONL metrics snapshot at [`finish`] |
//! | `MGA_PROM_OUT=path` | write a Prometheus text-format snapshot at [`finish`] |
//! | `MGA_LOG=level` | stderr log level (`error`, `warn`, `info`, `debug`) |
//! | `MGA_FAULT=spec` | arm deterministic fault injection (see [`fault`]) |
//!
//! (`MGA_FLIGHT=path` — the serving flight-recorder dump — is read by
//! `mga-serve`, not here; it is listed in that crate's docs.)

pub mod clock;
pub mod drift;
pub mod export;
pub mod fault;
pub mod hist;
pub mod json;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod trace;

/// Configure tracing, logging, and fault injection from the environment.
/// Idempotent; safe to call more than once (later calls re-read the
/// variables).
pub fn init_from_env() {
    log::init_from_env();
    trace::init_from_env();
    fault::init_from_env();
}

/// End-of-run hook: flush the trace sink, print the aggregated span tree
/// (stderr, only when tracing is enabled), and write the metrics
/// snapshot to `MGA_METRICS_OUT` if set. Binaries call this last.
pub fn finish() {
    trace::flush_sink();
    if trace::enabled() {
        let summary = trace::render_summary();
        if !summary.is_empty() {
            eprintln!("\n── span tree (wall time) ──\n{summary}");
        }
    }
    if let Ok(path) = std::env::var("MGA_METRICS_OUT") {
        let path = path.trim();
        if !path.is_empty() && path != "0" {
            match std::fs::write(path, metrics::to_jsonl()) {
                Ok(()) => info!("metrics snapshot written to {path}"),
                Err(e) => error!("cannot write metrics snapshot {path}: {e}"),
            }
        }
    }
    export::write_prom_if_enabled();
}
