//! Tick-driven drift detectors for the serving path.
//!
//! ROADMAP item 2 (telemetry-driven continual fine-tuning) needs
//! *triggers*: signals that serving traffic has left the training
//! distribution. This module watches the three the paper's deployment
//! story motivates — the **new-kernel rate** (programs the model never
//! trained on), the **cache-miss rate** (working set outgrowing the
//! embedding cache / churning kernels), and **mean head confidence**
//! (decision margins collapsing, the classic symptom of covariate
//! shift).
//!
//! Detection is **deterministic**: the monitor advances on the engine's
//! logical ticks, never a wall clock. Every `window_ticks` ticks it
//! closes a window, folds the window's rates into per-signal EWMAs, and
//! compares them to configured thresholds. Alerts are edge-triggered —
//! a [`DriftEvent`] fires on the window boundary tick where the EWMA
//! first crosses its threshold, and the detector re-arms once the EWMA
//! returns to the healthy side. Replaying the same submit/tick script
//! therefore fires the same events at the same ticks, which is what
//! lets CI assert exact trigger ticks (`validate_trace --drift-replay`).
//!
//! Windows with zero requests are skipped entirely (no EWMA update, no
//! warmup credit): an idle engine is not evidence about the traffic
//! distribution.
//!
//! The monitor allocates nothing after construction; event delivery is
//! by caller-supplied sink (`FnMut(DriftEvent)`), so the serving engine
//! can append into a pre-allocated buffer. Each fired event also bumps
//! the always-on `drift.events` / `drift.events.<kind>` counters in the
//! metrics registry.

use crate::metrics;

/// Which drift signal fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// EWMA of (first-ever-seen kernels / requests) exceeded the limit.
    NewKernelRate,
    /// EWMA of (embedding-cache misses / lookups) exceeded the limit.
    CacheMissRate,
    /// EWMA of mean per-request head confidence fell below the floor.
    ConfidenceCollapse,
}

impl DriftKind {
    /// Stable lower-snake tag used in JSONL events and metric names.
    pub fn tag(&self) -> &'static str {
        match self {
            DriftKind::NewKernelRate => "new_kernel_rate",
            DriftKind::CacheMissRate => "cache_miss_rate",
            DriftKind::ConfidenceCollapse => "confidence_collapse",
        }
    }

    fn counter(&self) -> &'static str {
        match self {
            DriftKind::NewKernelRate => "drift.events.new_kernel_rate",
            DriftKind::CacheMissRate => "drift.events.cache_miss_rate",
            DriftKind::ConfidenceCollapse => "drift.events.confidence_collapse",
        }
    }
}

/// One drift trigger: the signal, the logical tick of the window
/// boundary where it crossed, the smoothed (EWMA) value, the raw rate
/// of the breaching window, and the configured threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    pub kind: DriftKind,
    pub tick: u64,
    pub value: f64,
    pub raw: f64,
    pub threshold: f64,
}

/// Monitor tuning. Thresholds are absolute; smoothing is a standard
/// EWMA with weight `alpha` on the newest window.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Logical ticks per evaluation window.
    pub window_ticks: u64,
    /// EWMA weight of the newest window (0 < alpha <= 1).
    pub alpha: f64,
    /// Evaluated (non-empty) windows before alerts arm — the first
    /// windows establish the baseline instead of firing on it.
    pub warmup_windows: u32,
    /// Alert when the new-kernel-rate EWMA exceeds this.
    pub max_new_kernel_rate: f64,
    /// Alert when the cache-miss-rate EWMA exceeds this.
    pub max_cache_miss_rate: f64,
    /// Alert when the mean-confidence EWMA falls below this.
    pub min_confidence: f64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            window_ticks: 64,
            alpha: 0.3,
            warmup_windows: 2,
            max_new_kernel_rate: 0.5,
            max_cache_miss_rate: 0.5,
            min_confidence: 0.55,
        }
    }
}

/// What the engine observed during one logical tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickStats {
    /// Requests completed this tick.
    pub requests: u64,
    /// Requests whose kernel had never been served before.
    pub new_kernels: u64,
    /// Embedding-cache lookups this tick.
    pub cache_lookups: u64,
    /// Embedding-cache misses this tick.
    pub cache_misses: u64,
    /// Sum of per-request mean head confidence (divide by `requests`).
    pub confidence_sum: f64,
}

impl TickStats {
    /// Fold another tick's stats in (window accumulation).
    fn add(&mut self, o: &TickStats) {
        self.requests += o.requests;
        self.new_kernels += o.new_kernels;
        self.cache_lookups += o.cache_lookups;
        self.cache_misses += o.cache_misses;
        self.confidence_sum += o.confidence_sum;
    }
}

/// One EWMA-with-threshold detector; `above` alerts on EWMA > threshold,
/// otherwise on EWMA < threshold.
#[derive(Debug, Clone)]
struct Detector {
    kind: DriftKind,
    threshold: f64,
    above: bool,
    ewma: Option<f64>,
    breached: bool,
}

impl Detector {
    fn new(kind: DriftKind, threshold: f64, above: bool) -> Detector {
        Detector {
            kind,
            threshold,
            above,
            ewma: None,
            breached: false,
        }
    }

    /// Fold `rate` in and return the event to fire, if any.
    fn update(&mut self, alpha: f64, rate: f64, armed: bool, tick: u64) -> Option<DriftEvent> {
        let ewma = match self.ewma {
            None => rate,
            Some(m) => alpha * rate + (1.0 - alpha) * m,
        };
        self.ewma = Some(ewma);
        let breach = if self.above {
            ewma > self.threshold
        } else {
            ewma < self.threshold
        };
        let fire = armed && breach && !self.breached;
        // Track the breach state even while warming up, so an alert
        // condition present from the first armed window still fires
        // exactly once on the first armed boundary.
        self.breached = breach && armed;
        fire.then_some(DriftEvent {
            kind: self.kind,
            tick,
            value: ewma,
            raw: rate,
            threshold: self.threshold,
        })
    }
}

/// The serving-path drift monitor: three EWMA detectors advanced by
/// logical ticks. See the module docs for the exact window/trigger
/// semantics.
pub struct DriftMonitor {
    cfg: DriftConfig,
    window: TickStats,
    ticks_in_window: u64,
    evaluated_windows: u32,
    detectors: [Detector; 3],
}

impl DriftMonitor {
    pub fn new(cfg: DriftConfig) -> DriftMonitor {
        assert!(cfg.window_ticks > 0, "drift window must be positive");
        assert!(
            cfg.alpha > 0.0 && cfg.alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        let detectors = [
            Detector::new(DriftKind::NewKernelRate, cfg.max_new_kernel_rate, true),
            Detector::new(DriftKind::CacheMissRate, cfg.max_cache_miss_rate, true),
            Detector::new(DriftKind::ConfidenceCollapse, cfg.min_confidence, false),
        ];
        DriftMonitor {
            cfg,
            window: TickStats::default(),
            ticks_in_window: 0,
            evaluated_windows: 0,
            detectors,
        }
    }

    /// The configuration the monitor runs with.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Evaluated (non-empty) windows so far.
    pub fn evaluated_windows(&self) -> u32 {
        self.evaluated_windows
    }

    /// Current EWMA of a signal, if at least one window evaluated.
    pub fn ewma(&self, kind: DriftKind) -> Option<f64> {
        self.detectors
            .iter()
            .find(|d| d.kind == kind)
            .and_then(|d| d.ewma)
    }

    /// Whether a signal's EWMA currently breaches its threshold.
    pub fn breached(&self, kind: DriftKind) -> bool {
        self.detectors
            .iter()
            .find(|d| d.kind == kind)
            .map(|d| d.breached)
            .unwrap_or(false)
    }

    /// Advance one logical tick. `tick` is the engine's tick value (used
    /// only to stamp events); stats are this tick's deltas. Fired events
    /// go to `sink` (0–3 per call, only on window-boundary ticks) and
    /// bump the `drift.events*` counters.
    pub fn on_tick(&mut self, tick: u64, stats: &TickStats, sink: &mut impl FnMut(DriftEvent)) {
        self.window.add(stats);
        self.ticks_in_window += 1;
        if self.ticks_in_window < self.cfg.window_ticks {
            return;
        }
        let w = std::mem::take(&mut self.window);
        self.ticks_in_window = 0;
        if w.requests == 0 {
            // Idle window: no traffic, no evidence, no EWMA update.
            return;
        }
        self.evaluated_windows += 1;
        let armed = self.evaluated_windows > self.cfg.warmup_windows;
        let rates = [
            w.new_kernels as f64 / w.requests as f64,
            if w.cache_lookups == 0 {
                0.0
            } else {
                w.cache_misses as f64 / w.cache_lookups as f64
            },
            w.confidence_sum / w.requests as f64,
        ];
        for (d, &rate) in self.detectors.iter_mut().zip(&rates) {
            if let Some(ev) = d.update(self.cfg.alpha, rate, armed, tick) {
                metrics::counter("drift.events").inc();
                metrics::counter(ev.kind.counter()).inc();
                sink(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64) -> DriftConfig {
        DriftConfig {
            window_ticks: window,
            alpha: 0.5,
            warmup_windows: 1,
            max_new_kernel_rate: 0.4,
            max_cache_miss_rate: 0.4,
            min_confidence: 0.6,
        }
    }

    fn healthy_tick() -> TickStats {
        TickStats {
            requests: 4,
            new_kernels: 0,
            cache_lookups: 4,
            cache_misses: 0,
            confidence_sum: 4.0 * 0.9,
        }
    }

    /// A scripted miss-rate ramp fires exactly once, at the exact window
    /// boundary tick where the EWMA crosses, and re-fires only after the
    /// signal recovers — the determinism contract CI replays.
    #[test]
    fn cache_miss_drift_fires_at_exact_tick() {
        let mut m = DriftMonitor::new(cfg(4));
        let mut events = Vec::new();
        let mut tick = 0u64;
        let mut run = |m: &mut DriftMonitor, events: &mut Vec<DriftEvent>, n: u64, s: TickStats| {
            for _ in 0..n {
                tick += 1;
                m.on_tick(tick, &s, &mut |e| events.push(e));
            }
        };
        // Window 1 (ticks 1–4): healthy baseline (warmup, EWMA = 0).
        run(&mut m, &mut events, 4, healthy_tick());
        // Window 2 (ticks 5–8): total miss storm. Armed from this window
        // on; EWMA = 0.5·1.0 + 0.5·0.0 = 0.5 > 0.4 → fires at tick 8.
        let storm = TickStats {
            requests: 4,
            new_kernels: 0,
            cache_lookups: 4,
            cache_misses: 4,
            confidence_sum: 4.0 * 0.9,
        };
        run(&mut m, &mut events, 4, storm);
        assert_eq!(events.len(), 1, "exactly one event: {events:?}");
        assert_eq!(events[0].kind, DriftKind::CacheMissRate);
        assert_eq!(events[0].tick, 8, "fires on the window boundary tick");
        assert!((events[0].value - 0.5).abs() < 1e-12);
        assert_eq!(events[0].threshold, 0.4);
        // Window 3: still storming — breached already, no re-fire.
        run(&mut m, &mut events, 4, storm);
        assert_eq!(events.len(), 1, "edge-triggered: no repeat while high");
        // Recovery windows pull the EWMA back under 0.4 → re-arms.
        run(&mut m, &mut events, 12, healthy_tick());
        assert!(!m.breached(DriftKind::CacheMissRate));
        // A fresh storm fires again (EWMA jumps back above 0.4).
        run(&mut m, &mut events, 4, storm);
        assert_eq!(events.len(), 2, "re-fires after recovery");
        assert_eq!(events[1].tick, 28);
    }

    #[test]
    fn new_kernel_and_confidence_detectors_fire() {
        let mut m = DriftMonitor::new(cfg(2));
        let mut events = Vec::new();
        let mut sink_events = Vec::new();
        // 2 warmup-ish windows of healthy traffic (window 1 counts as
        // warmup; armed from window 2 onward).
        for t in 1..=4u64 {
            m.on_tick(t, &healthy_tick(), &mut |e| sink_events.push(e));
        }
        assert!(sink_events.is_empty());
        // Every request is a brand-new kernel with collapsed confidence.
        let bad = TickStats {
            requests: 2,
            new_kernels: 2,
            cache_lookups: 2,
            cache_misses: 2,
            confidence_sum: 2.0 * 0.1,
        };
        for t in 5..=20u64 {
            m.on_tick(t, &bad, &mut |e| events.push(e));
        }
        let kinds: Vec<DriftKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&DriftKind::NewKernelRate), "{kinds:?}");
        assert!(kinds.contains(&DriftKind::CacheMissRate));
        assert!(kinds.contains(&DriftKind::ConfidenceCollapse));
        // Each fired exactly once (edge-triggered).
        assert_eq!(events.len(), 3, "{events:?}");
        assert!(m.ewma(DriftKind::ConfidenceCollapse).unwrap() < 0.6);
    }

    #[test]
    fn idle_windows_update_nothing() {
        let mut m = DriftMonitor::new(cfg(2));
        let mut fired = 0usize;
        for t in 1..=100u64 {
            m.on_tick(t, &TickStats::default(), &mut |_| fired += 1);
        }
        assert_eq!(fired, 0);
        assert_eq!(m.evaluated_windows(), 0, "idle windows are skipped");
        assert!(m.ewma(DriftKind::CacheMissRate).is_none());
    }
}
