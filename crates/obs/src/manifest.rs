//! Machine-readable run manifests.
//!
//! Every experiment binary writes one JSON manifest next to its text
//! output: what ran (name, seed, thread count, quick/full), on what
//! (dataset sizes), how long (per-fold wall times), and what came out
//! (final metrics). Successive PRs — and the CI artifact trail — can
//! then compare runs without scraping stdout tables.

use crate::json::Json;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Manifest schema version, bumped on breaking field changes.
pub const SCHEMA_VERSION: i64 = 1;

/// An ordered set of fields serialized as one JSON object.
#[derive(Debug, Clone)]
pub struct RunManifest {
    fields: Vec<(String, Json)>,
}

impl RunManifest {
    /// Start a manifest for the experiment `name`, stamping the schema
    /// version and the wall-clock time.
    pub fn new(name: &str) -> RunManifest {
        let unix_time = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut m = RunManifest { fields: Vec::new() };
        m.set("schema_version", Json::Num(SCHEMA_VERSION as f64));
        m.set("name", Json::str(name));
        m.set("unix_time", Json::Num(unix_time as f64));
        m
    }

    /// The manifest's experiment name.
    pub fn name(&self) -> &str {
        self.get("name").and_then(Json::as_str).unwrap_or("run")
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Set (or replace) a field, preserving insertion order.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
        self
    }

    pub fn set_str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.set(key, Json::Str(value.into()))
    }

    pub fn set_int(&mut self, key: &str, value: i64) -> &mut Self {
        self.set(key, Json::Num(value as f64))
    }

    pub fn set_float(&mut self, key: &str, value: f64) -> &mut Self {
        self.set(key, Json::Num(value))
    }

    pub fn set_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.set(key, Json::Bool(value))
    }

    /// Set a field to an array of numbers (e.g. per-fold timings).
    pub fn set_floats(&mut self, key: &str, values: &[f64]) -> &mut Self {
        self.set(
            key,
            Json::Arr(values.iter().copied().map(Json::Num).collect()),
        )
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields.clone())
    }

    /// Write the manifest as a single JSON object, creating parent
    /// directories as needed.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut text = self.to_json().to_string();
        text.push('\n');
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_file() {
        let mut m = RunManifest::new("fig4");
        m.set_int("seed", 42)
            .set_int("threads", 8)
            .set_bool("quick", true)
            .set_floats("fold_seconds", &[1.25, 0.5])
            .set_float("geomean_speedup", 3.4);
        assert_eq!(m.name(), "fig4");

        let path = std::env::temp_dir().join(format!("mga_manifest_{}.json", std::process::id()));
        m.write(&path).expect("write manifest");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();

        let v = crate::json::parse(text.trim()).expect("valid JSON");
        assert_eq!(v.get("name").and_then(Json::as_str), Some("fig4"));
        assert_eq!(v.get("seed").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            v.get("fold_seconds")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            v.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut m = RunManifest::new("x");
        m.set_int("k", 1);
        m.set_int("k", 2);
        assert_eq!(m.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            m.to_json().to_string().matches("\"k\"").count(),
            1,
            "no duplicate keys"
        );
    }
}
