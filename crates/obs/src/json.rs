//! A minimal JSON value type with an emitter and a strict parser.
//!
//! The workspace bans external dependencies, so the sinks hand-roll
//! their JSON. This module keeps both directions in one place: sinks and
//! manifests *emit* through [`Json`], and the round-trip tests plus the
//! `validate_trace` CI binary *parse* with [`parse`] — any drift between
//! writer and reader fails loudly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(&str, Json)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Escape a string as a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_num(n: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        return write!(f, "null");
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => fmt_num(*n, f),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} of {:?}",
            c as char,
            *pos,
            String::from_utf8_lossy(&b[*pos..b.len().min(*pos + 16)])
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::str("fig4")),
            ("seed", Json::Num(42.0)),
            ("ratio", Json::Num(0.625)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "folds",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)]),
            ),
            ("nested", Json::obj(vec![("k", Json::str("v"))])),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, v);
        assert_eq!(back.get("seed").and_then(Json::as_f64), Some(42.0));
        assert_eq!(back.get("name").and_then(Json::as_str), Some("fig4"));
        assert_eq!(
            back.get("folds").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn escapes_and_unescapes_special_characters() {
        let s = "a\"b\\c\nd\te\u{1}é";
        let text = Json::str(s).to_string();
        assert!(text.starts_with('"') && text.ends_with('"'));
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_string(), "5");
        assert_eq!(Json::Num(5.5).to_string(), "5.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
