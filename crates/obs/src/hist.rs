//! Mergeable log₂-bucketed latency histograms.
//!
//! The serving engine measures nanosecond latencies on every request, so
//! the recording side must be as cheap as a counter bump: a
//! [`LogHistogram`] has **fixed** power-of-two buckets over `u64`
//! nanoseconds (bucket `b ≥ 1` covers `[2^(b-1), 2^b)`, bucket 0 holds
//! exact zeros), so [`LogHistogram::observe`] is one `leading_zeros`
//! plus three relaxed atomic adds — lock-free, allocation-free, and safe
//! to share as a `&'static` handle across threads.
//!
//! Histograms with identical bucketing are closed under addition, which
//! is what makes them *mergeable*: a future multi-shard cluster can sum
//! per-shard snapshots ([`HistSnapshot::merge`]) and compute cluster
//! percentiles without ever shipping raw samples. [`HistSnapshot::diff`]
//! is the windowing counterpart — subtract an earlier snapshot to get
//! the distribution of just the requests in between.
//!
//! The [`percentile`](HistSnapshot::percentile) estimator returns the
//! midpoint of the bucket containing the requested rank. Since a
//! non-zero observation `v` in bucket `b` satisfies
//! `2^(b-1) <= v < 2^b` and the midpoint is `1.5 · 2^(b-1)`, the
//! estimate is always within a **factor of 1.5** of the true sample
//! percentile (ratio in `(0.75, 1.5]`) — the bound the proptests in
//! this module and the `serve_bench` driver-vs-engine cross-check rely
//! on.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit width.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for an observation: 0 for 0, else `64 - leading_zeros`
/// (so `[2^(b-1), 2^b)` maps to bucket `b`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `b` (0 for the zero bucket).
#[inline]
pub fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Midpoint estimate reported for bucket `b`: `1.5 · 2^(b-1)` for
/// non-zero buckets (saturating at the top), 0 for the zero bucket.
#[inline]
pub fn bucket_mid(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        let lo = bucket_lo(b);
        lo.saturating_add(lo / 2)
    }
}

/// A lock-free histogram over `u64` nanoseconds with fixed log₂ buckets.
/// All state is atomic; `observe` never allocates and never takes a
/// lock, so handles can be interned `&'static` in the metrics registry
/// and hit from the serving hot path.
pub struct LogHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub const fn new() -> LogHistogram {
        // `AtomicU64` is not Copy; an inline-const element repeats it.
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation (nanoseconds): one branch-free bucket
    /// computation + three relaxed atomic adds.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (ns).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Add every bucket of `other`'s current state into `self` — the
    /// shard-aggregation primitive (relaxed adds; both sides may keep
    /// observing concurrently).
    pub fn merge_from(&self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter().zip(&other.buckets) {
            let n = o.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for merging, diffing and percentile queries.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Percentile estimate straight off the live histogram (see
    /// [`HistSnapshot::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }
}

/// A plain (non-atomic) histogram state: the unit of merging across
/// shards and of windowing across time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Rebuild a snapshot from serialized bucket counts (e.g. a metrics
    /// JSONL line). Extra buckets are ignored, missing ones are zero.
    pub fn from_parts(buckets: &[u64], count: u64, sum: u64) -> HistSnapshot {
        let mut s = HistSnapshot {
            count,
            sum,
            ..HistSnapshot::default()
        };
        for (dst, &src) in s.buckets.iter_mut().zip(buckets) {
            *dst = src;
        }
        s
    }

    /// Pointwise sum — merging shard histograms loses nothing because
    /// the bucketing is identical by construction.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut out = self.clone();
        for (dst, src) in out.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        out.count += other.count;
        out.sum += other.sum;
        out
    }

    /// Pointwise difference vs. an `earlier` snapshot of the same
    /// histogram: the distribution of observations made in between.
    /// Saturates at zero, so a stale `earlier` cannot underflow.
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for (i, dst) in out.buckets.iter_mut().enumerate() {
            *dst = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `p`-th percentile (`0 < p <= 100`): the midpoint of
    /// the bucket containing rank `ceil(p/100 · count)`. Within a factor
    /// of 1.5 of the exact sample percentile (see module docs); 0 when
    /// the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_mid(b);
            }
        }
        bucket_mid(NUM_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..NUM_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(b)), b, "lower bound lands in bucket");
            assert!(bucket_lo(b) <= bucket_mid(b));
        }
    }

    #[test]
    fn observe_counts_and_sums() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 5, 5, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_011);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1, "one exact zero");
        assert_eq!(s.buckets[bucket_of(5)], 2);
    }

    #[test]
    fn percentile_of_uniform_values_is_in_their_bucket() {
        let h = LogHistogram::new();
        for _ in 0..100 {
            h.observe(700); // bucket [512, 1024)
        }
        for p in [1.0, 50.0, 99.0, 100.0] {
            let est = h.percentile(p);
            assert_eq!(est, bucket_mid(bucket_of(700)));
            assert!((512..1024).contains(&est));
        }
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        assert_eq!(LogHistogram::new().percentile(99.0), 0);
        assert_eq!(HistSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn merge_equals_observing_the_concatenation() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let all = LogHistogram::new();
        for (i, v) in [3u64, 9, 81, 6561, 0, 43046721].iter().enumerate() {
            if i % 2 == 0 { &a } else { &b }.observe(*v);
            all.observe(*v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        // merge_from on the live histogram agrees with snapshot merge.
        a.merge_from(&b);
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn diff_isolates_a_window() {
        let h = LogHistogram::new();
        h.observe(100);
        h.observe(200);
        let before = h.snapshot();
        h.observe(4000);
        h.observe(4001);
        let window = h.snapshot().diff(&before);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum, 8001);
        assert_eq!(window.buckets[bucket_of(4000)], 2);
        assert_eq!(window.buckets[bucket_of(100)], 0);
    }

    /// Exact percentile with the same rank convention the estimator
    /// uses: rank = ceil(p/100 · n), 1-indexed into the sorted sample.
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The estimator is within its documented 1.5× bound of the
        /// exact sorted-vector percentile, for arbitrary samples and
        /// percentiles.
        #[test]
        fn percentile_within_factor_of_exact(
            seed in 0u64..10_000,
            n in 1usize..400,
            pi in 0usize..5,
        ) {
            let p = [10.0, 50.0, 90.0, 99.0, 100.0][pi];
            // Deterministic mixed-magnitude sample from the seed.
            let mut vals = Vec::with_capacity(n);
            let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            for _ in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Spread across ~12 orders of magnitude, with some zeros.
                let mag = s % 40;
                vals.push(if mag >= 38 { 0 } else { (s >> 24) % (1u64 << (mag.min(37) + 4)) });
            }
            let h = LogHistogram::new();
            for &v in &vals {
                h.observe(v);
            }
            vals.sort_unstable();
            let exact = exact_percentile(&vals, p);
            let est = h.percentile(p);
            if exact == 0 {
                prop_assert_eq!(est, 0, "zero sample percentile must estimate 0");
            } else {
                let ratio = est as f64 / exact as f64;
                prop_assert!(
                    ratio > 0.75 && ratio <= 1.5,
                    "estimate {} vs exact {} (ratio {:.3}) out of the 1.5x bound",
                    est, exact, ratio
                );
            }
        }

        /// Count/sum bookkeeping matches the raw sample for any input.
        #[test]
        fn count_and_sum_match_sample(vals in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let h = LogHistogram::new();
            let mut sum = 0u64;
            for &v in &vals {
                h.observe(v);
                sum += v;
            }
            prop_assert_eq!(h.count(), vals.len() as u64);
            prop_assert_eq!(h.sum(), sum);
        }
    }
}
