//! Prometheus text-exposition rendering of the metrics registry.
//!
//! The registry's JSONL snapshot is the machine-readable artifact CI
//! validates; this module renders the *same* snapshot in the Prometheus
//! [text exposition format] so a scrape endpoint (or a file-based
//! textfile collector) can pick serving telemetry up without any new
//! dependency. `MGA_PROM_OUT=<path>` writes one snapshot at
//! [`crate::finish`]; a future serving cluster can call
//! [`render_prometheus`] per scrape.
//!
//! Mapping:
//!
//! * metric names are prefixed `mga_` and every non-`[a-zA-Z0-9_]`
//!   character becomes `_` (`serve.cache_hits` → `mga_serve_cache_hits`);
//! * counters/gauges render as their single sample;
//! * fixed-bucket histograms render as cumulative `_bucket{le="..."}`
//!   series plus `_sum`/`_count`, per the Prometheus histogram
//!   convention (upper-inclusive bounds map directly onto `le`);
//! * log₂ latency histograms ([`crate::hist`]) render the same way with
//!   `le = 2^b` nanosecond boundaries, emitted only up to the highest
//!   non-empty bucket (65 mostly-empty series per histogram would bloat
//!   every scrape). Our buckets are `[2^(b-1), 2^b)` — half-open — so an
//!   observation exactly equal to a boundary sits one `le` series lower
//!   than a strictly Prometheus-native histogram would place it; at
//!   nanosecond granularity this is far below bucket resolution.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::hist::{bucket_lo, HistSnapshot, NUM_BUCKETS};
use crate::metrics::{snapshot, MetricValue};

/// Sanitize a registry metric name into a Prometheus metric name.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mga_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        // Prometheus accepts +Inf/-Inf/NaN literals.
        if v.is_nan() {
            "NaN".to_string()
        } else if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_fixed_hist(
    out: &mut String,
    name: &str,
    bounds: &[f64],
    buckets: &[u64],
    count: u64,
    sum: f64,
) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        cum += n;
        let le = if i < bounds.len() {
            fmt_f64(bounds[i])
        } else {
            "+Inf".to_string()
        };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_sum {}\n", fmt_f64(sum)));
    out.push_str(&format!("{name}_count {count}\n"));
}

fn render_log_hist(out: &mut String, name: &str, s: &HistSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let top = (0..NUM_BUCKETS)
        .rev()
        .find(|&b| s.buckets[b] > 0)
        .unwrap_or(0);
    let mut cum = 0u64;
    for b in 0..=top {
        cum += s.buckets[b];
        // Bucket b covers [2^(b-1), 2^b); its Prometheus upper bound is
        // the next power of two (bucket 0 is the exact-zero bucket).
        let le = if b == 0 { 0 } else { bucket_lo(b + 1) };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
    out.push_str(&format!("{name}_sum {}\n", s.sum));
    out.push_str(&format!("{name}_count {}\n", s.count));
}

/// Render every registered metric in Prometheus text exposition format,
/// sorted by name (inherited from [`snapshot`], so exports diff
/// cleanly).
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (name, v) in snapshot() {
        let pname = prom_name(name);
        match v {
            MetricValue::Counter(c) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {c}\n"));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", fmt_f64(g)));
            }
            MetricValue::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => render_fixed_hist(&mut out, &pname, &bounds, &buckets, count, sum),
            MetricValue::LogHist(s) => render_log_hist(&mut out, &pname, &s),
        }
    }
    out
}

/// Write a Prometheus snapshot to the file named by `MGA_PROM_OUT`
/// (empty or `0` disables). Called from [`crate::finish`].
pub fn write_prom_if_enabled() {
    if let Ok(path) = std::env::var("MGA_PROM_OUT") {
        let path = path.trim();
        if !path.is_empty() && path != "0" {
            match std::fs::write(path, render_prometheus()) {
                Ok(()) => crate::info!("prometheus snapshot written to {path}"),
                Err(e) => crate::error!("cannot write prometheus snapshot {path}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prom_name("serve.cache_hits"), "mga_serve_cache_hits");
        assert_eq!(prom_name("serve.lat.e2e"), "mga_serve_lat_e2e");
        assert_eq!(prom_name("a-b/c"), "mga_a_b_c");
    }

    #[test]
    fn renders_all_metric_types_well_formed() {
        metrics::counter("test.prom.counter").add(7);
        metrics::gauge("test.prom.gauge").set(1.25);
        metrics::histogram("test.prom.hist", &[1.0, 10.0]).observe(3.0);
        let lh = metrics::log_histogram("test.prom.loghist");
        lh.observe(900);
        lh.observe(3000);
        let text = render_prometheus();

        assert!(text.contains("# TYPE mga_test_prom_counter counter\nmga_test_prom_counter 7\n"));
        assert!(text.contains("# TYPE mga_test_prom_gauge gauge\nmga_test_prom_gauge 1.25\n"));
        assert!(text.contains("mga_test_prom_hist_bucket{le=\"1\"} 0"));
        assert!(text.contains("mga_test_prom_hist_bucket{le=\"10\"} 1"));
        assert!(text.contains("mga_test_prom_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mga_test_prom_hist_count 1"));
        // 900 ∈ [512, 1024) → le="1024"; 3000 ∈ [2048, 4096) → le="4096".
        assert!(text.contains("mga_test_prom_loghist_bucket{le=\"1024\"} 1"));
        assert!(text.contains("mga_test_prom_loghist_bucket{le=\"4096\"} 2"));
        assert!(text.contains("mga_test_prom_loghist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("mga_test_prom_loghist_sum 3900"));

        // Structural well-formedness: every non-comment line is
        // `name[{labels}] value` with a parseable value, and bucket
        // series are cumulative per metric.
        let mut last: Option<(String, u64)> = None;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "only TYPE comments: {line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("mga_"), "prefixed: {line}");
            let v: f64 = value.parse().expect("numeric sample value");
            if let Some(base) = name.split('{').next() {
                if name.contains("_bucket{") {
                    let cum = v as u64;
                    if let Some((ref lbase, lcum)) = last {
                        if lbase == base {
                            assert!(cum >= lcum, "buckets must be cumulative: {line}");
                        }
                    }
                    last = Some((base.to_string(), cum));
                } else {
                    last = None;
                }
            }
        }
    }
}
