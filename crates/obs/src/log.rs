//! Leveled logging to stderr.
//!
//! Experiment binaries print their *results* to stdout (those tables are
//! the product) and narrate progress through these macros, so a CI run
//! with `MGA_LOG=error` (or the harness's `--quiet` flag) stays silent
//! on stderr while the data output is untouched.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Would a message at `l` be printed?
#[inline]
pub fn enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Read `MGA_LOG`; unknown values fall back to the default (`info`).
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MGA_LOG") {
        match Level::parse(&v) {
            Some(l) => set_level(l),
            None => eprintln!(
                "[warn] MGA_LOG={v:?} is not a level; using {}",
                level().name()
            ),
        }
    }
}

/// Backend for the level macros: one stderr line, `[level] message`.
pub fn write(l: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {args}", l.name());
}

#[macro_export]
macro_rules! error {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, format_args!($($t)*));
        }
    };
}

#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write($crate::log::Level::Warn, format_args!($($t)*));
        }
    };
}

#[macro_export]
macro_rules! info {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, format_args!($($t)*));
        }
    };
}

#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, format_args!($($t)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_gating() {
        let prev = level();
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(prev);
    }
}
