//! A cheap monotonic nanosecond clock for hot-path telemetry.
//!
//! `Instant::now()` costs a `clock_gettime` call (~20–25 ns even via the
//! vDSO) — too much to spend several times inside a ~300 ns serving
//! request. On x86-64 this module reads the invariant TSC instead
//! (`rdtsc`, ~6–8 ns) and converts cycles to nanoseconds with a factor
//! calibrated once against `Instant` at first use; other architectures
//! fall back to `Instant` against a process-wide epoch.
//!
//! The clock is for **measurement only**: readings are never fed into
//! control flow (the serving engine's batching decisions are driven by
//! logical ticks), so TSC quirks (migration across very old sockets,
//! virtualized rate changes) can skew a latency sample but never a
//! result. Resolution/accuracy is more than enough for the log₂ latency
//! buckets in [`crate::hist`].

use std::sync::OnceLock;
use std::time::Instant;

struct Calib {
    #[cfg(not(target_arch = "x86_64"))]
    epoch: Instant,
    #[cfg(target_arch = "x86_64")]
    tsc_base: u64,
    /// Nanoseconds per 2^20 TSC cycles (fixed-point, avoids float math
    /// on the read path).
    #[cfg(target_arch = "x86_64")]
    ns_per_mi_cycles: u64,
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // Safe on every x86-64: RDTSC is unprivileged baseline ISA.
    unsafe { core::arch::x86_64::_rdtsc() }
}

fn calib() -> &'static Calib {
    static CALIB: OnceLock<Calib> = OnceLock::new();
    CALIB.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            // Calibrate cycles→ns over a short spin; 2 ms keeps first-use
            // cost negligible while bounding the rate error well under
            // the 1.5× bucket resolution of the latency histograms.
            let tsc_base = rdtsc();
            let t0 = Instant::now();
            while t0.elapsed().as_micros() < 2_000 {
                std::hint::spin_loop();
            }
            let cycles = (rdtsc() - tsc_base).max(1);
            let ns = t0.elapsed().as_nanos() as u64;
            Calib {
                tsc_base,
                ns_per_mi_cycles: (ns << 20) / cycles,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Calib {
                epoch: Instant::now(),
            }
        }
    })
}

/// Force calibration now (e.g. at engine construction) so the first
/// measured request does not absorb the one-time calibration spin.
pub fn init() {
    let _ = calib();
}

/// Monotonic nanoseconds since an arbitrary process-local epoch.
#[inline]
pub fn now_ns() -> u64 {
    let c = calib();
    #[cfg(target_arch = "x86_64")]
    {
        let cycles = rdtsc().wrapping_sub(c.tsc_base);
        (cycles >> 20).wrapping_mul(c.ns_per_mi_cycles)
            + (((cycles & 0xFFFFF) * c.ns_per_mi_cycles) >> 20)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        c.epoch.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_roughly_calibrated() {
        init();
        let a = now_ns();
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < 5_000 {
            std::hint::spin_loop();
        }
        let b = now_ns();
        assert!(b > a, "clock must advance");
        let measured = (b - a) as f64;
        let wall = t0.elapsed().as_nanos() as f64;
        let ratio = measured / wall;
        // Within the histogram bucket resolution of the wall clock.
        assert!(
            (0.5..2.0).contains(&ratio),
            "clock rate off: measured {measured} ns vs wall {wall} ns"
        );
    }
}
