//! Round-trip test for the JSONL span sink: emit spans into a file, then
//! re-parse every line with the crate's own parser and check the event
//! schema and the aggregate invariants.
//!
//! Tracing state is process-global, so the whole scenario lives in one
//! test function (integration tests get their own process, isolating
//! this from the unit tests).

use mga_obs::json::{parse, Json};
use mga_obs::trace;

#[test]
fn span_events_round_trip_through_jsonl_sink() {
    let path = std::env::temp_dir().join(format!("mga_trace_{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap();
    trace::set_sink_path(path_str).expect("create sink");
    trace::set_enabled(true);

    {
        mga_obs::span!("epoch");
        for _ in 0..3 {
            mga_obs::span!("forward");
            let _inner = trace::span("gnn.msg.control");
        }
        mga_obs::span!("backward");
    }
    // A span from another thread carries a distinct thread id.
    std::thread::spawn(|| {
        mga_obs::span!("worker");
    })
    .join()
    .unwrap();

    trace::set_enabled(false);
    trace::clear_sink();

    let text = std::fs::read_to_string(&path).expect("read trace file");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    // 1 epoch + 3 forward + 3 inner + 1 backward + 1 worker = 9 events.
    assert_eq!(lines.len(), 9, "one JSONL event per span close");

    let mut threads = std::collections::BTreeSet::new();
    let mut by_path: std::collections::BTreeMap<String, u64> = Default::default();
    for line in &lines {
        let v = parse(line).unwrap_or_else(|e| panic!("invalid JSON {line:?}: {e}"));
        assert_eq!(v.get("type").and_then(Json::as_str), Some("span"));
        let path = v
            .get("path")
            .and_then(Json::as_str)
            .expect("path")
            .to_string();
        let name = v.get("name").and_then(Json::as_str).expect("name");
        assert!(path.ends_with(name), "path {path:?} must end with {name:?}");
        let dur = v.get("dur_ns").and_then(Json::as_f64).expect("dur_ns");
        let start = v.get("start_ns").and_then(Json::as_f64).expect("start_ns");
        assert!(dur >= 0.0 && start >= 0.0);
        threads.insert(v.get("thread").and_then(Json::as_f64).expect("thread") as u64);
        *by_path.entry(path).or_default() += 1;
    }
    assert!(threads.len() >= 2, "main + worker thread ids");

    // Children close inside their parents, under the right paths.
    assert_eq!(by_path.get("epoch"), Some(&1));
    assert_eq!(by_path.get("epoch/forward"), Some(&3));
    assert_eq!(by_path.get("epoch/forward/gnn.msg.control"), Some(&3));
    assert_eq!(by_path.get("epoch/backward"), Some(&1));
    assert_eq!(by_path.get("worker"), Some(&1));

    // The aggregated tree agrees with the event stream.
    let stats = trace::report();
    let fwd = stats
        .iter()
        .find(|s| s.path == "epoch/forward")
        .expect("aggregated forward node");
    assert_eq!(fwd.count, 3);
    let epoch = stats.iter().find(|s| s.path == "epoch").unwrap();
    assert!(epoch.total_ns >= fwd.total_ns, "parent time includes child");
}
