//! `mga-bench` — experiment harness shared by the per-figure binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md's per-experiment index) and accepts `--quick` for a reduced
//! dataset/epoch budget, printing the same rows/series the paper reports.

use mga_core::model::{Modality, ModelConfig};
use mga_core::OmpDataset;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::inputs::openmp_input_sizes;
use mga_kernels::KernelSpec;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::OmpConfig;

/// Typed failure of an experiment binary's evaluation/report path —
/// replaces ad-hoc `unwrap()`s so a malformed dataset or an empty result
/// set exits with a named cause instead of a panic backtrace.
#[derive(Debug)]
pub enum BenchError {
    /// Filesystem failure writing or reading a report artifact.
    Io(std::io::Error),
    /// An eval invariant did not hold (empty result set, missing series
    /// entry, unknown configuration) — the message names what and where.
    MissingData(String),
    /// A hard correctness invariant was violated (e.g. serving diverged
    /// from the training-side predict) — always a bug, never noise.
    Invariant(String),
}

impl BenchError {
    /// Shorthand for the pervasive "this collection should not have been
    /// empty / this key should have existed" case.
    pub fn missing(what: impl Into<String>) -> BenchError {
        BenchError::MissingData(what.into())
    }
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "I/O error: {e}"),
            BenchError::MissingData(what) => write!(f, "missing data: {what}"),
            BenchError::Invariant(what) => write!(f, "invariant violated: {what}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            BenchError::MissingData(_) | BenchError::Invariant(_) => None,
        }
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> BenchError {
        BenchError::Io(e)
    }
}

/// Exit path for experiment `main`s: print the error with the binary's
/// name and exit 1, so CI logs name the failing experiment.
pub fn exit_on_error(bin: &str, result: Result<(), BenchError>) {
    if let Err(e) = result {
        eprintln!("{bin}: {e}");
        std::process::exit(1);
    }
}

/// Common command-line options.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Reduced dataset and epochs (CI-friendly).
    pub quick: bool,
    pub seed: u64,
    /// Suppress stderr narration (errors only); result tables on stdout
    /// are unaffected.
    pub quiet: bool,
}

/// Parse `--quick` / `--seed N` / `--quiet` from `std::env::args`, and
/// initialize observability from the environment (`MGA_LOG`, `MGA_TRACE`,
/// `MGA_METRICS_OUT`) — every experiment binary calls this first.
pub fn parse_opts() -> RunOpts {
    mga_obs::init_from_env();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let quiet = args.iter().any(|a| a == "--quiet");
    if quiet {
        mga_obs::log::set_level(mga_obs::log::Level::Error);
    }
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    RunOpts { quick, seed, quiet }
}

/// Start a run manifest for experiment `name`, pre-stamped with the
/// shared run parameters (seed, quick/full, pool thread count).
pub fn manifest(name: &str, opts: RunOpts) -> mga_obs::manifest::RunManifest {
    let mut m = mga_obs::manifest::RunManifest::new(name);
    m.set_int("seed", opts.seed as i64)
        .set_bool("quick", opts.quick)
        .set_int("threads", mga_nn::pool::num_threads() as i64);
    m
}

/// Finish an experiment run: stamp the pool's dispatch totals into the
/// manifest, write it under `results/manifests/`, then flush the
/// observability sinks (span-tree summary, `MGA_METRICS_OUT`, optional
/// `MGA_POOL_STATS=1` dump).
pub fn finish_run(m: &mut mga_obs::manifest::RunManifest) {
    let pool = mga_nn::pool::stats();
    m.set_int(
        "pool_jobs",
        (pool.jobs_dispatched + pool.jobs_inline) as i64,
    );
    m.set_int(
        "pool_chunks",
        (pool.chunks_submitted + pool.chunks_inline) as i64,
    );
    m.set_float("pool_imbalance", pool.imbalance_ratio());
    let path = std::path::Path::new("results/manifests").join(format!("{}.json", m.name()));
    match m.write(&path) {
        Ok(()) => mga_obs::info!("manifest written to {}", path.display()),
        Err(e) => mga_obs::error!("cannot write manifest {}: {e}", path.display()),
    }
    mga_nn::pool::dump_stats_if_enabled();
    mga_obs::finish();
}

/// The IR2Vec-style vector width used across experiments.
pub fn vec_dim(opts: RunOpts) -> usize {
    if opts.quick {
        16
    } else {
        48
    }
}

/// The model configuration for a given modality/feature setting.
pub fn model_cfg(opts: RunOpts, modality: Modality, use_aux: bool) -> ModelConfig {
    let dim = vec_dim(opts);
    if opts.quick {
        ModelConfig {
            modality,
            use_aux,
            gnn: GnnConfig {
                dim: 12,
                layers: 2,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: dim,
                hidden_dim: 14,
                code_dim: 10,
                epochs: 40,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 25,
            lr: 0.02,
            seed: opts.seed,
        }
    } else {
        ModelConfig {
            modality,
            use_aux,
            gnn: GnnConfig {
                dim: 32,
                layers: 2,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: dim,
                hidden_dim: 32,
                code_dim: 16,
                epochs: 80,
                ..DaeConfig::default()
            },
            hidden: 64,
            epochs: 70,
            lr: 0.012,
            seed: opts.seed,
        }
    }
}

/// Model configuration for the device-mapping task (§4.2). The task is
/// binary and converges fast, so it uses a lighter GNN than the OpenMP
/// experiments but trains longer (the paper's near-98% regime).
pub fn devmap_model_cfg(opts: RunOpts, modality: Modality) -> ModelConfig {
    let dim = vec_dim(opts);
    if opts.quick {
        let mut cfg = model_cfg(opts, modality, true);
        cfg.epochs = 35;
        cfg
    } else {
        ModelConfig {
            modality,
            use_aux: true,
            gnn: GnnConfig {
                dim: 16,
                layers: 2,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: dim,
                hidden_dim: 24,
                code_dim: 12,
                epochs: 60,
                ..DaeConfig::default()
            },
            hidden: 32,
            epochs: 90,
            lr: 0.015,
            seed: opts.seed,
        }
    }
}

/// The thread-prediction dataset of §4.1.3 (45 loops × 30 inputs on Comet
/// Lake, threads 1–8). `--quick` trims to 12 loops × 6 inputs.
pub fn thread_dataset(opts: RunOpts) -> OmpDataset {
    let cpu = CpuSpec::comet_lake();
    let mut specs = mga_kernels::catalog::openmp_thread_dataset();
    let mut sizes = openmp_input_sizes();
    if opts.quick {
        specs = pick_every(specs, 45 / 12);
        sizes = sizes.into_iter().step_by(5).collect();
    }
    let space = mga_sim::openmp::thread_space(&cpu);
    OmpDataset::build(specs, sizes, space, cpu, vec_dim(opts), opts.seed)
}

/// The large-search-space dataset of §4.1.4 (30 apps on Skylake 4114,
/// Table 2's 147 configurations).
pub fn large_space_dataset(opts: RunOpts) -> OmpDataset {
    let cpu = CpuSpec::skylake_4114();
    let mut specs = mga_kernels::catalog::large_space_apps();
    let mut sizes = openmp_input_sizes();
    if opts.quick {
        specs.truncate(10);
        sizes = sizes.into_iter().step_by(6).collect();
    } else {
        // The paper evaluates per-app; 10 input sizes keep the full run
        // tractable while still exercising the cache ladder.
        sizes = sizes.into_iter().step_by(3).collect();
    }
    let space = mga_sim::openmp::large_space();
    OmpDataset::build(specs, sizes, space, cpu, vec_dim(opts), opts.seed)
}

fn pick_every(specs: Vec<KernelSpec>, stride: usize) -> Vec<KernelSpec> {
    specs.into_iter().step_by(stride.max(1)).collect()
}

/// Render a labeled ASCII bar (for figure-like terminal output).
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let frac = (value / max).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!(
        "{label:<28} {:>6.3} |{}{}|",
        value,
        "█".repeat(filled),
        " ".repeat(width - filled)
    )
}

/// Print a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Write a CSV alongside the textual output (under `results/csv/`), so
/// the figures can be re-plotted. Errors are reported but non-fatal —
/// experiments still print their tables.
pub fn csv_write(name: &str, header: &str, rows: &[String]) {
    let dir = std::path::Path::new("results/csv");
    if let Err(e) = std::fs::create_dir_all(dir) {
        mga_obs::error!("csv: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    match std::fs::write(&path, body) {
        Ok(()) => mga_obs::info!("csv written to {}", path.display()),
        Err(e) => mga_obs::error!("csv: cannot write {path:?}: {e}"),
    }
}

/// Geometric mean helper re-exported for binaries.
pub use mga_core::metrics::geomean;

/// Format an `OmpConfig` compactly.
pub fn cfg_str(c: &OmpConfig) -> String {
    format!(
        "{} threads, {} schedule, chunk {}",
        c.threads,
        c.schedule.name(),
        if c.chunk == 0 {
            "default".to_string()
        } else {
            c.chunk.to_string()
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_datasets_build() {
        let opts = RunOpts {
            quick: true,
            seed: 1,
            quiet: false,
        };
        let ds = thread_dataset(opts);
        assert!(ds.specs.len() >= 10);
        assert_eq!(ds.sizes.len(), 6);
        assert_eq!(ds.space.len(), 8);
        let ds2 = large_space_dataset(opts);
        assert_eq!(ds2.specs.len(), 10);
        assert_eq!(ds2.space.len(), 147);
    }

    #[test]
    fn bar_renders_bounded() {
        let s = bar("x", 0.5, 1.0, 10);
        assert!(s.contains("█████"));
        let s2 = bar("x", 2.0, 1.0, 10);
        assert!(s2.contains(&"█".repeat(10)));
    }
}
