//! Machine-readable performance snapshot: times one training epoch and
//! end-to-end inference for the Figure-4 configuration and writes
//! `BENCH_train.json` (one `{name, iters, ns_per_iter}` record per line)
//! so successive PRs can chart the perf trajectory on the same machine.
//!
//! Usage: `cargo run --release --bin bench_report [--quick] [--seed N]`.
//! Pass `MGA_THREADS=1` to snapshot the sequential baseline.

use mga_bench::{finish_run, manifest, model_cfg, parse_opts, thread_dataset};
use mga_core::cv::kfold_by_group;
use mga_core::model::{batch_targets, FusionModel, Modality};
use mga_core::omp::OmpTask;
use mga_nn::optim::AdamW;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Median ns per call over timed batches (~0.5 s measurement per entry).
/// Returns the median so callers can stamp it into the run manifest.
fn time(name: &str, records: &mut Vec<String>, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Duration::from_millis(500);
    let mut samples = Vec::new();
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget || iters == 0 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
        iters += 1;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let ns = samples[samples.len() / 2];
    println!("{name:<28} {ns:>16.1} ns/iter  ({iters} iters)");
    records.push(format!(
        "{{\"name\": \"{name}\", \"iters\": {iters}, \"ns_per_iter\": {ns:.1}}}"
    ));
    ns
}

fn main() {
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let fold = &folds[0];
    let cfg = model_cfg(opts, Modality::Multimodal, true);

    println!(
        "bench_report: Fig. 4 config, {} train / {} val samples, {} threads",
        fold.train.len(),
        fold.val.len(),
        mga_nn::pool::num_threads()
    );

    let mut man = manifest("bench_report", opts);
    man.set_int("train_samples", fold.train.len() as i64)
        .set_int("val_samples", fold.val.len() as i64);

    let mut records = Vec::new();
    let mut model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());
    let prep = model.prepare(&data, &fold.train);
    let targets = batch_targets(&data, &fold.train, task.codec.head_sizes().len());

    let prep_ns = time("prepare_fold", &mut records, || {
        std::hint::black_box(model.prepare(&data, &fold.train));
    });
    let mut opt = AdamW::new(0.02).with_weight_decay(0.001);
    let epoch_ns = time("train_epoch", &mut records, || {
        std::hint::black_box(model.train_epoch(&prep, &targets, &mut opt));
    });
    let inf_ns = time("inference_fold", &mut records, || {
        std::hint::black_box(model.predict(&data, &fold.val));
    });
    let one_ns = time("inference_one_sample", &mut records, || {
        std::hint::black_box(model.predict(&data, &fold.val[..1]));
    });
    man.set_float("prepare_fold_ns", prep_ns)
        .set_float("train_epoch_ns", epoch_ns)
        .set_float("inference_fold_ns", inf_ns)
        .set_float("inference_one_sample_ns", one_ns);

    let path = "BENCH_train.json";
    let write_records = || -> std::io::Result<()> {
        let mut fh = std::fs::File::create(path)?;
        for r in &records {
            writeln!(fh, "{r}")?;
        }
        Ok(())
    };
    match write_records() {
        Ok(()) => println!("\nwrote {} records to {path}", records.len()),
        Err(e) => {
            eprintln!("bench_report: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    finish_run(&mut man);
}
