//! Machine-readable performance snapshot: times one training epoch and
//! end-to-end inference for the Figure-4 configuration and writes
//! `BENCH_train.json` (one `{name, iters, ns_per_iter}` record per line)
//! so successive PRs can chart the perf trajectory on the same machine.
//!
//! Usage: `cargo run --release --bin bench_report [--quick] [--seed N]`.
//! Pass `MGA_THREADS=1` to snapshot the sequential baseline.
//!
//! Training scales across threads via micro-batch data parallelism, and
//! the pool is sized once per process — so the `train_epoch_threads_{N}`
//! records come from re-executing this binary with `--epoch-probe` under
//! `MGA_THREADS=N`. `train_scaling_4x` is their 4-thread/1-thread ratio
//! (per-mille, lower is better): a within-run ratio, machine-portable
//! where the absolute records are not, gating the parallel epoch's
//! health — on a multi-core box it shows the real speedup, on a
//! single-core box pure dispatch overhead, and a serialization bug
//! inflates it either way.

use mga_bench::{finish_run, manifest, model_cfg, parse_opts, thread_dataset};
use mga_core::cv::kfold_by_group;
use mga_core::model::{batch_targets, FusionModel, Modality};
use mga_core::omp::OmpTask;
use mga_nn::optim::AdamW;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Median ns per call over timed batches (~0.5 s measurement per entry).
/// Returns the median so callers can stamp it into the run manifest.
fn time(name: &str, records: &mut Vec<String>, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Duration::from_millis(500);
    let mut samples = Vec::new();
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget || iters == 0 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
        iters += 1;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let ns = samples[samples.len() / 2];
    println!("{name:<28} {ns:>16.1} ns/iter  ({iters} iters)");
    records.push(format!(
        "{{\"name\": \"{name}\", \"iters\": {iters}, \"ns_per_iter\": {ns:.1}}}"
    ));
    ns
}

/// `--epoch-probe` mode: build the same fold and model as the main run,
/// time `train_epoch`, print one parseable line and exit. Run in a child
/// process per thread count (the pool reads `MGA_THREADS` once).
fn epoch_probe() -> ! {
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let fold = &folds[0];
    let cfg = model_cfg(opts, Modality::Multimodal, true);
    let mut model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());
    let prep = model.prepare(&data, &fold.train);
    let targets = batch_targets(&data, &fold.train, task.codec.head_sizes().len());
    let mut opt = AdamW::new(0.02).with_weight_decay(0.001);
    let mut records = Vec::new();
    let ns = time("train_epoch_probe", &mut records, || {
        std::hint::black_box(model.train_epoch(&prep, &targets, &mut opt));
    });
    println!("epoch_probe_ns: {ns:.1}");
    std::process::exit(0);
}

/// Re-exec this binary as an epoch probe under `MGA_THREADS=threads`;
/// returns the measured ns/epoch, or `None` if the child failed.
fn probe_threads(threads: usize, quick: bool, seed: u64) -> Option<f64> {
    let exe = std::env::current_exe().ok()?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--epoch-probe").arg("--quiet");
    if quick {
        cmd.arg("--quick");
    }
    cmd.arg("--seed").arg(seed.to_string());
    let out = cmd
        .env("MGA_THREADS", threads.to_string())
        // The probe must not inherit trace/metrics sinks — its child
        // telemetry would interleave with (and corrupt) this run's.
        .env_remove("MGA_TRACE")
        .env_remove("MGA_METRICS_OUT")
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!("epoch probe (MGA_THREADS={threads}) failed: {}", out.status);
        return None;
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("epoch_probe_ns: ")?.trim().parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--epoch-probe") {
        epoch_probe();
    }
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let fold = &folds[0];
    let cfg = model_cfg(opts, Modality::Multimodal, true);

    println!(
        "bench_report: Fig. 4 config, {} train / {} val samples, {} threads",
        fold.train.len(),
        fold.val.len(),
        mga_nn::pool::num_threads()
    );

    let mut man = manifest("bench_report", opts);
    man.set_int("train_samples", fold.train.len() as i64)
        .set_int("val_samples", fold.val.len() as i64);

    let mut records = Vec::new();
    let mut model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());
    let prep = model.prepare(&data, &fold.train);
    let targets = batch_targets(&data, &fold.train, task.codec.head_sizes().len());

    let prep_ns = time("prepare_fold", &mut records, || {
        std::hint::black_box(model.prepare(&data, &fold.train));
    });
    let mut opt = AdamW::new(0.02).with_weight_decay(0.001);
    let epoch_ns = time("train_epoch", &mut records, || {
        std::hint::black_box(model.train_epoch(&prep, &targets, &mut opt));
    });
    let inf_ns = time("inference_fold", &mut records, || {
        std::hint::black_box(model.predict(&data, &fold.val));
    });
    let one_ns = time("inference_one_sample", &mut records, || {
        std::hint::black_box(model.predict(&data, &fold.val[..1]));
    });
    man.set_float("prepare_fold_ns", prep_ns)
        .set_float("train_epoch_ns", epoch_ns)
        .set_float("inference_fold_ns", inf_ns)
        .set_float("inference_one_sample_ns", one_ns);

    // Thread-scaling records for the data-parallel epoch, one probe
    // subprocess per thread count (see the module docs).
    let mut per_thread = Vec::new();
    for threads in [1usize, 2, 4] {
        match probe_threads(threads, opts.quick, opts.seed) {
            Some(ns) => {
                let name = format!("train_epoch_threads_{threads}");
                println!("{name:<28} {ns:>16.1} ns/iter  (probe)");
                records.push(format!(
                    "{{\"name\": \"{name}\", \"iters\": 1, \"ns_per_iter\": {ns:.1}}}"
                ));
                man.set_float(&format!("{name}_ns"), ns);
                per_thread.push((threads, ns));
            }
            None => eprintln!("bench_report: skipping train_epoch_threads_{threads} record"),
        }
    }
    let t1 = per_thread.iter().find(|(t, _)| *t == 1).map(|&(_, ns)| ns);
    let t4 = per_thread.iter().find(|(t, _)| *t == 4).map(|&(_, ns)| ns);
    if let (Some(t1), Some(t4)) = (t1, t4) {
        if t1 > 0.0 {
            let ratio = (t4 / t1 * 1000.0).round();
            println!("{:<28} {ratio:>16.1} per-mille (4t/1t)", "train_scaling_4x");
            records.push(format!(
                "{{\"name\": \"train_scaling_4x\", \"iters\": 1, \"ns_per_iter\": {ratio:.1}}}"
            ));
            man.set_float("train_scaling_4x_permille", ratio);
        }
    }

    let path = "BENCH_train.json";
    let write_records = || -> std::io::Result<()> {
        let mut fh = std::fs::File::create(path)?;
        for r in &records {
            writeln!(fh, "{r}")?;
        }
        Ok(())
    };
    match write_records() {
        Ok(()) => println!("\nwrote {} records to {path}", records.len()),
        Err(e) => {
            eprintln!("bench_report: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    finish_run(&mut man);
}
