//! §4.1.1 counter-space reduction: collect the extended PAPI preset over
//! the PolyBench loops × input ladder, rank by |Pearson correlation| with
//! execution time, and keep the top five — the paper's selection step
//! (after Alcaraz et al.).

use mga_bench::{heading, parse_opts};
use mga_kernels::catalog::openmp_catalog;
use mga_kernels::inputs::openmp_input_sizes;
use mga_sim::cpu::CpuSpec;
use mga_sim::papi::{rank_counters, select_counters, EXTENDED_NAMES, PAPER_FIVE};

fn main() {
    let opts = parse_opts();
    let mut specs: Vec<_> = openmp_catalog()
        .into_iter()
        .filter(|s| s.suite == mga_kernels::Suite::Polybench)
        .collect();
    let mut sizes = openmp_input_sizes();
    if opts.quick {
        specs.truncate(10);
        sizes = sizes.into_iter().step_by(4).collect();
    }
    let cpu = CpuSpec::comet_lake();

    heading("Counter-space reduction (paper §4.1.1)");
    println!(
        "profiled {} PolyBench loops x {} inputs at the default configuration\n",
        specs.len(),
        sizes.len()
    );
    let ranked = rank_counters(&specs, &sizes, &cpu);
    let kept = select_counters(&specs, &sizes, &cpu, 5);
    println!("{:<14} {:>10}   selected?", "counter", "|r|");
    for (idx, r) in ranked.iter() {
        let keep = kept.contains(idx);
        let in_paper = PAPER_FIVE.contains(idx);
        println!(
            "{:<14} {r:>10.3}   {}{}",
            EXTENDED_NAMES[*idx],
            if keep { "KEEP" } else { "drop" },
            if in_paper {
                "  (one of the paper's five)"
            } else {
                ""
            }
        );
    }
    let selected: Vec<&str> = kept.iter().map(|i| EXTENDED_NAMES[*i]).collect();
    let overlap = kept.iter().filter(|i| PAPER_FIVE.contains(i)).count();
    println!(
        "\nselected: {selected:?}\noverlap with the paper's five: {overlap}/5 \
         (paper keeps L1_DCM, L2_TCM, L3_LDM, BR_INS, BR_MSP)"
    );
    println!(
        "\n(raw counts all scale with problem size, so correlations are uniformly high;\n\
         the redundancy walk keeps one representative per collinear family — the\n\
         paper's five is one such representative set, and the model consumes it.)"
    );
}
