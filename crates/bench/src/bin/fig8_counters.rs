//! Figure 8 — normalized performance-counter values for the 2mm kernel:
//! default configuration (all 20 threads, static) vs. the predicted
//! configuration. The paper's predicted config (16 threads, dynamic,
//! chunk 8) cuts cache misses and branch mispredictions; improved
//! performance tracks those reductions.

use mga_bench::{
    bar, cfg_str, exit_on_error, heading, large_space_dataset, model_cfg, parse_opts, BenchError,
};
use mga_core::cv::leave_one_group_out;
use mga_core::model::{FusionModel, Modality};
use mga_core::omp::OmpTask;
use mga_sim::openmp::{simulate, OmpConfig};

fn main() {
    exit_on_error("fig8_counters", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let ds = large_space_dataset(opts);
    let task = OmpTask::new(&ds);

    // Leave 2mm out, train on the rest, predict 2mm's config at a LARGE
    // input.
    let groups = ds.app_groups();
    let folds = leave_one_group_out(&groups);
    let fold = folds
        .iter()
        .find(|f| ds.specs[ds.samples[f.val[0]].kernel].app == "2mm")
        .unwrap_or_else(|| {
            eprintln!("fig8_counters: no leave-one-out fold holds 2mm");
            std::process::exit(1);
        });
    let data = task.train_data(&ds);
    let cfg = model_cfg(opts, Modality::Multimodal, true);
    let model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());

    // Pick the 2mm sample in the cache-transition regime (~16 MB): this
    // is where configuration choices move the counters, mirroring the
    // paper's LARGE dataset on its machine.
    let target_ws = 16.0 * 1024.0 * 1024.0;
    let &sample_idx = fold
        .val
        .iter()
        .min_by(|&&a, &&b| {
            let da = (ds.samples[a].ws_bytes - target_ws).abs();
            let db = (ds.samples[b].ws_bytes - target_ws).abs();
            da.total_cmp(&db)
        })
        .ok_or_else(|| BenchError::missing("empty validation fold"))?;
    let preds = model.predict(&data, &[sample_idx]);
    let heads: Vec<usize> = preds.iter().map(|p| p[0]).collect();
    let cfg_idx = task.codec.decode(&heads);
    let predicted: OmpConfig = ds.space[cfg_idx];
    let default = OmpConfig::default_for(&ds.cpu);
    let sample = &ds.samples[sample_idx];
    let spec = &ds.specs[sample.kernel];

    heading("Figure 8: 2mm counters, default vs predicted configuration");
    println!("default:   {}", cfg_str(&default));
    println!(
        "predicted: {} (paper example: 16 threads, dynamic, chunk 8)",
        cfg_str(&predicted)
    );

    let rd = simulate(spec, sample.ws_bytes, &default, &ds.cpu);
    let rp = simulate(spec, sample.ws_bytes, &predicted, &ds.cpu);
    let rows = [
        ("L1 cache misses", rd.counters.l1_dcm, rp.counters.l1_dcm),
        ("L2 cache misses", rd.counters.l2_tcm, rp.counters.l2_tcm),
        ("L3 load misses", rd.counters.l3_ldm, rp.counters.l3_ldm),
        (
            "branch mispredictions",
            rd.counters.br_msp,
            rp.counters.br_msp,
        ),
        ("clock cycles", rd.counters.ref_cyc, rp.counters.ref_cyc),
    ];
    println!("\nnormalized to the default run [lower is better]:");
    for (name, d, p) in rows {
        let norm = if d > 0.0 { p / d } else { 1.0 };
        println!("{}", bar(name, norm, 1.2, 40));
    }
    println!(
        "\nruntime: default {:.4}s -> predicted {:.4}s ({:.2}x speedup; oracle {:.2}x)",
        rd.runtime,
        rp.runtime,
        rd.runtime / rp.runtime,
        ds.oracle_speedup(sample)
    );
    Ok(())
}
