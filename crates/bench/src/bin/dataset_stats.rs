//! Dataset diagnostics: the label structure the learning problem rests
//! on — oracle headroom, the "one fixed config per loop" ceiling (the
//! best any static-only model or one-shot search tuner can do), best-config
//! label mass, and per-suite oracle speedups.

use mga_bench::{exit_on_error, heading, parse_opts, BenchError};
use mga_kernels::catalog::openmp_thread_dataset;
use mga_kernels::inputs::openmp_input_sizes;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::{simulate, thread_space, OmpConfig};

fn main() {
    exit_on_error("dataset_stats", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let cpu = CpuSpec::comet_lake();
    let mut specs = openmp_thread_dataset();
    let mut sizes = openmp_input_sizes();
    if opts.quick {
        specs.truncate(12);
        sizes = sizes.into_iter().step_by(5).collect();
    }
    let space = thread_space(&cpu);
    let dcfg = OmpConfig::default_for(&cpu);

    heading("Label structure of the thread-prediction dataset");
    println!(
        "{} loops x {} inputs, {} configurations on {}\n",
        specs.len(),
        sizes.len(),
        space.len(),
        cpu.name
    );

    let mut logs_oracle = 0.0f64;
    let mut logs_ceiling = 0.0f64;
    let mut n = 0usize;
    let mut label_mass = vec![0usize; space.len()];
    let mut per_suite: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();

    for spec in &specs {
        let mut per_cfg_log = vec![0.0f64; space.len()];
        let mut oracle_log = 0.0f64;
        for &ws in &sizes {
            let d = simulate(spec, ws, &dcfg, &cpu).runtime;
            let rts: Vec<f64> = space
                .iter()
                .map(|c| simulate(spec, ws, c, &cpu).runtime)
                .collect();
            let (best_idx, best) = rts
                .iter()
                .cloned()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .ok_or_else(|| BenchError::missing("kernel with no simulated runtimes"))?;
            label_mass[best_idx] += 1;
            oracle_log += (d / best).ln();
            for (k, &rt) in rts.iter().enumerate() {
                per_cfg_log[k] += (d / rt).ln();
            }
        }
        let best_fixed = per_cfg_log.iter().cloned().fold(f64::MIN, f64::max);
        logs_ceiling += best_fixed;
        logs_oracle += oracle_log;
        n += sizes.len();
        let e = per_suite.entry(spec.suite.name()).or_insert((0.0, 0));
        e.0 += oracle_log;
        e.1 += sizes.len();
    }

    let oracle = (logs_oracle / n as f64).exp();
    let ceiling = (logs_ceiling / n as f64).exp();
    println!("oracle geomean speedup over default:        {oracle:.3}x");
    println!("one-fixed-config-per-loop ceiling:          {ceiling:.3}x");
    println!(
        "input-adaptivity premium (oracle / ceiling): {:.3}x",
        oracle / ceiling
    );
    println!("  (the premium is what per-input prediction — i.e. dynamic features — buys)\n");

    println!("best-config label mass:");
    for (k, &m) in label_mass.iter().enumerate() {
        println!(
            "  {:>2} threads: {:>5} samples ({:.1}%)",
            space[k].threads,
            m,
            m as f64 / n as f64 * 100.0
        );
    }

    println!("\nper-suite oracle geomean:");
    for (suite, (log_sum, count)) in per_suite {
        println!("  {suite:<16} {:.3}x", (log_sum / count as f64).exp());
    }
    Ok(())
}
