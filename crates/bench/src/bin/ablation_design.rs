//! Design-choice ablations (DESIGN.md's ablation index).
//!
//! The paper reports trying GCN / GAT / GraphSAGE / GGNN for the relation
//! sub-networks and picking GGNN (§4.1.3), using late fusion (§2.5), and
//! modeling vectors with a DAE rather than feeding them raw (§3.2). This
//! binary quantifies those choices on the thread-prediction task:
//!
//! * GGNN vs. GCN vs. GraphSAGE updates in the heterogeneous GNN;
//! * DAE-encoded vectors vs. raw vectors (VectorOnly with `dae.code_dim`
//!   equal to the input, epochs 0 is approximated by a tiny-epoch DAE);
//! * swap-noise level 0 % / 10 % / 30 %.

use mga_bench::{geomean, heading, model_cfg, parse_opts, thread_dataset};
use mga_core::cv::kfold_by_group;
use mga_core::model::Modality;
use mga_core::omp::{eval_model_fold, OmpTask};
use mga_gnn::UpdateKind;

fn main() {
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let fold = &folds[0];

    heading("Ablation 1: GNN update function (paper picked GGNN)");
    for (name, kind) in [
        ("GGNN (gated)", UpdateKind::Gru),
        ("GraphSAGE-style", UpdateKind::SageConcat),
        ("GCN-style", UpdateKind::Gcn),
        ("GAT-style attention", UpdateKind::Gat),
    ] {
        let mut cfg = model_cfg(opts, Modality::GraphOnly, true);
        cfg.gnn.update = kind;
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        println!(
            "{name:<18} geomean speedup {:.2}x, accuracy {:.0}%",
            geomean(&ach),
            e.accuracy * 100.0
        );
    }

    heading("Ablation 2: swap-noise level in the DAE (paper uses 10%)");
    for noise in [0.0f32, 0.10, 0.30] {
        let mut cfg = model_cfg(opts, Modality::Multimodal, true);
        cfg.dae.swap_noise = noise;
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        println!(
            "swap noise {:>4.0}%   geomean speedup {:.2}x, accuracy {:.0}%",
            noise * 100.0,
            geomean(&ach),
            e.accuracy * 100.0
        );
    }

    heading("Ablation 3: DAE compression width (code dim)");
    for code in [4usize, 16, 32] {
        let mut cfg = model_cfg(opts, Modality::Multimodal, true);
        cfg.dae.code_dim = code;
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        println!(
            "code dim {code:<4}      geomean speedup {:.2}x, accuracy {:.0}%",
            geomean(&ach),
            e.accuracy * 100.0
        );
    }

    heading("Ablation 4: late fusion (paper) vs early feature-level fusion");
    for (name, modality) in [
        ("late fusion (MGA)", Modality::Multimodal),
        ("early fusion (flat features)", Modality::EarlyFusion),
    ] {
        let cfg = model_cfg(opts, modality, true);
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        println!(
            "{name:<30} geomean speedup {:.2}x, accuracy {:.0}%",
            geomean(&ach),
            e.accuracy * 100.0
        );
    }

    heading("Ablation 5: heterogeneous (per-relation) vs homogeneous GNN (§3.2)");
    for (name, homogeneous) in [
        ("heterogeneous (paper)", false),
        ("homogeneous union graph", true),
    ] {
        let mut cfg = model_cfg(opts, Modality::GraphOnly, true);
        cfg.gnn.homogeneous = homogeneous;
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        println!(
            "{name:<26} geomean speedup {:.2}x, accuracy {:.0}%",
            geomean(&ach),
            e.accuracy * 100.0
        );
    }

    heading("Ablation 6: number of hetero-GNN message-passing layers (paper: 2)");
    for layers in [1usize, 2, 3] {
        let mut cfg = model_cfg(opts, Modality::Multimodal, true);
        cfg.gnn.layers = layers;
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        println!(
            "{layers} layer(s)         geomean speedup {:.2}x, accuracy {:.0}%",
            geomean(&ach),
            e.accuracy * 100.0
        );
    }
}
