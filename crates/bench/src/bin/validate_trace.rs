//! Validate observability artifacts (CI helper).
//!
//! Usage: `validate_trace FILE...` — each argument is a `.jsonl` stream
//! (trace or metrics: one JSON object per line) or a `.json` run
//! manifest (a single object). Every document must parse with the
//! strict `mga_obs::json` parser; span events and manifests are
//! additionally checked for their required fields. Exits nonzero on the
//! first malformed file, so CI can gate on it.

use mga_obs::json::Json;

fn check_span_event(obj: &[(String, Json)], path: &str, line_no: usize) -> Result<(), String> {
    let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    match get("type") {
        Some(Json::Str(t)) if t == "span" => {}
        // Non-span event types are allowed; only spans have a fixed shape.
        Some(Json::Str(_)) => return Ok(()),
        _ => return Err(format!("{path}:{line_no}: event missing string \"type\"")),
    }
    for key in ["path", "name", "thread", "start_ns", "dur_ns"] {
        match get(key) {
            Some(Json::Str(_)) if key == "path" || key == "name" => {}
            Some(Json::Num(n)) if key != "path" && key != "name" && *n >= 0.0 => {}
            _ => return Err(format!("{path}:{line_no}: span event missing \"{key}\"")),
        }
    }
    Ok(())
}

fn check_manifest(obj: &[(String, Json)], path: &str) -> Result<(), String> {
    for key in ["schema_version", "name"] {
        if !obj.iter().any(|(n, _)| n == key) {
            return Err(format!("{path}: manifest missing \"{key}\""));
        }
    }
    Ok(())
}

fn validate_file(path: &str) -> Result<usize, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".json") {
        let doc =
            mga_obs::json::parse(body.trim()).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        match doc {
            Json::Obj(ref obj) => check_manifest(obj, path)?,
            _ => return Err(format!("{path}: manifest must be a JSON object")),
        }
        return Ok(1);
    }
    // JSONL: trace or metrics stream.
    let mut n = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        match doc {
            Json::Obj(ref obj) => check_span_event(obj, path, i + 1)?,
            _ => return Err(format!("{path}:{}: line must be a JSON object", i + 1)),
        }
        n += 1;
    }
    if n == 0 {
        return Err(format!("{path}: no JSON documents found"));
    }
    Ok(n)
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: validate_trace FILE...");
        std::process::exit(2);
    }
    let mut failed = false;
    for f in &files {
        match validate_file(f) {
            Ok(n) => println!("{f}: OK ({n} documents)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
