//! Validate observability artifacts (CI helper).
//!
//! Usage: `validate_trace [--tape-zero-alloc METRICS]
//! [--serve-zero-alloc METRICS] FILE...` — each
//! positional argument is a `.jsonl` stream (trace or metrics: one JSON
//! object per line) or a `.json` run manifest (a single object). Every
//! document must parse with the strict `mga_obs::json` parser; span
//! events and manifests are additionally checked for their required
//! fields. Exits nonzero on the first malformed file, so CI can gate on
//! it.
//!
//! `--tape-zero-alloc METRICS` additionally asserts the tape memory
//! plan held for the run that produced `METRICS`: the
//! `tape.arena_reuse` counter must be positive (buffers were recycled)
//! and `tape.steady_alloc_bytes` must exist and be exactly zero (no
//! steady-state epoch allocated tape-tensor memory).
//!
//! `--serve-zero-alloc METRICS` asserts the same discipline for the
//! serving engine: `serve.arena_reuse` positive and
//! `serve.steady_alloc_bytes` exactly zero — steady-state request
//! serving must not touch the allocator for scratch.

use mga_obs::json::Json;

fn check_span_event(obj: &[(String, Json)], path: &str, line_no: usize) -> Result<(), String> {
    let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    match get("type") {
        Some(Json::Str(t)) if t == "span" => {}
        // Non-span event types are allowed; only spans have a fixed shape.
        Some(Json::Str(_)) => return Ok(()),
        _ => return Err(format!("{path}:{line_no}: event missing string \"type\"")),
    }
    for key in ["path", "name", "thread", "start_ns", "dur_ns"] {
        match get(key) {
            Some(Json::Str(_)) if key == "path" || key == "name" => {}
            Some(Json::Num(n)) if key != "path" && key != "name" && *n >= 0.0 => {}
            _ => return Err(format!("{path}:{line_no}: span event missing \"{key}\"")),
        }
    }
    Ok(())
}

fn check_manifest(obj: &[(String, Json)], path: &str) -> Result<(), String> {
    for key in ["schema_version", "name"] {
        if !obj.iter().any(|(n, _)| n == key) {
            return Err(format!("{path}: manifest missing \"{key}\""));
        }
    }
    Ok(())
}

fn validate_file(path: &str) -> Result<usize, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".json") {
        let doc =
            mga_obs::json::parse(body.trim()).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        match doc {
            Json::Obj(ref obj) => check_manifest(obj, path)?,
            _ => return Err(format!("{path}: manifest must be a JSON object")),
        }
        return Ok(1);
    }
    // JSONL: trace or metrics stream.
    let mut n = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        match doc {
            Json::Obj(ref obj) => check_span_event(obj, path, i + 1)?,
            _ => return Err(format!("{path}:{}: line must be a JSON object", i + 1)),
        }
        n += 1;
    }
    if n == 0 {
        return Err(format!("{path}: no JSON documents found"));
    }
    Ok(n)
}

/// Read a named counter from a metrics JSONL file, if present.
fn read_counter(path: &str, name: &str) -> Result<Option<f64>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        if let Json::Obj(obj) = doc {
            let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            if matches!(get("name"), Some(Json::Str(n)) if n == name) {
                if let Some(Json::Num(v)) = get("value") {
                    return Ok(Some(*v));
                }
            }
        }
    }
    Ok(None)
}

/// Assert the tape memory plan held: buffers were recycled and no
/// steady-state (replay) epoch allocated.
fn check_tape_zero_alloc(path: &str) -> Result<(), String> {
    match read_counter(path, "tape.arena_reuse")? {
        Some(v) if v > 0.0 => {}
        Some(_) => {
            return Err(format!(
                "{path}: tape.arena_reuse is zero — no buffer reuse"
            ))
        }
        None => return Err(format!("{path}: tape.arena_reuse counter missing")),
    }
    match read_counter(path, "tape.steady_alloc_bytes")? {
        Some(0.0) => Ok(()),
        Some(v) => Err(format!(
            "{path}: steady-state epochs allocated {v} bytes of tape memory (must be 0)"
        )),
        None => Err(format!(
            "{path}: tape.steady_alloc_bytes counter missing — did training replay any epoch?"
        )),
    }
}

/// Assert the serving engine's memory plan held: scratch cycled through
/// the arena and nothing was allocated after the construction prewarm.
fn check_serve_zero_alloc(path: &str) -> Result<(), String> {
    match read_counter(path, "serve.arena_reuse")? {
        Some(v) if v > 0.0 => {}
        Some(_) => {
            return Err(format!(
                "{path}: serve.arena_reuse is zero — serving scratch was not recycled"
            ))
        }
        None => return Err(format!("{path}: serve.arena_reuse gauge missing")),
    }
    match read_counter(path, "serve.steady_alloc_bytes")? {
        Some(0.0) => Ok(()),
        Some(v) => Err(format!(
            "{path}: steady-state serving allocated {v} bytes of scratch (must be 0)"
        )),
        None => Err(format!(
            "{path}: serve.steady_alloc_bytes gauge missing — did the engine publish metrics?"
        )),
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut files: Vec<String> = Vec::new();
    let mut tape_zero_alloc: Option<String> = None;
    let mut serve_zero_alloc: Option<String> = None;
    while let Some(a) = args.next() {
        if a == "--tape-zero-alloc" || a == "--serve-zero-alloc" {
            match args.next() {
                Some(f) if a == "--tape-zero-alloc" => tape_zero_alloc = Some(f),
                Some(f) => serve_zero_alloc = Some(f),
                None => {
                    eprintln!("{a} requires a metrics file argument");
                    std::process::exit(2);
                }
            }
        } else {
            files.push(a);
        }
    }
    if files.is_empty() && tape_zero_alloc.is_none() && serve_zero_alloc.is_none() {
        eprintln!(
            "usage: validate_trace [--tape-zero-alloc METRICS] [--serve-zero-alloc METRICS] FILE..."
        );
        std::process::exit(2);
    }
    let mut failed = false;
    if let Some(metrics) = &tape_zero_alloc {
        match check_tape_zero_alloc(metrics) {
            Ok(()) => println!("{metrics}: tape memory plan OK (steady-state zero-alloc)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if let Some(metrics) = &serve_zero_alloc {
        match check_serve_zero_alloc(metrics) {
            Ok(()) => println!("{metrics}: serve memory plan OK (steady-state zero-alloc)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    for f in &files {
        match validate_file(f) {
            Ok(n) => println!("{f}: OK ({n} documents)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
