//! Validate observability artifacts (CI helper).
//!
//! Usage: `validate_trace [--tape-zero-alloc METRICS]
//! [--serve-zero-alloc METRICS] FILE...` — each
//! positional argument is a `.jsonl` stream (trace or metrics: one JSON
//! object per line) or a `.json` run manifest (a single object). Every
//! document must parse with the strict `mga_obs::json` parser; span
//! events and manifests are additionally checked for their required
//! fields. Exits nonzero on the first malformed file, so CI can gate on
//! it.
//!
//! `--tape-zero-alloc METRICS` additionally asserts the tape memory
//! plan held for the run that produced `METRICS`: the
//! `tape.arena_reuse` counter must be positive (buffers were recycled)
//! and `tape.steady_alloc_bytes` must exist and be exactly zero (no
//! steady-state epoch allocated tape-tensor memory).
//!
//! `--serve-zero-alloc METRICS` asserts the same discipline for the
//! serving engine: `serve.arena_reuse` positive and
//! `serve.steady_alloc_bytes` exactly zero — steady-state request
//! serving must not touch the allocator for scratch.
//!
//! `--flight FILE` validates a flight-recorder dump (`MGA_FLIGHT`):
//! every line is a well-formed `{"type":"request",...}` record (ids,
//! ticks, batch, cache flag, precision tag, per-head classes/margins)
//! or `{"type":"drift",...}` event, and at least one request was
//! recorded.
//!
//! `--prom FILE` validates a Prometheus text-exposition snapshot
//! (`MGA_PROM_OUT`): `mga_`-prefixed sample names, numeric values,
//! cumulative bucket series whose `+Inf` sample equals `_count`.
//!
//! `--drift-replay` runs the built-in synthetic drift scenario and
//! asserts each detector fires at its exact expected tick — the
//! determinism contract that makes drift events replayable in CI.

use mga_obs::drift::{DriftConfig, DriftKind, DriftMonitor, TickStats};
use mga_obs::json::Json;

fn check_span_event(obj: &[(String, Json)], path: &str, line_no: usize) -> Result<(), String> {
    let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    match get("type") {
        Some(Json::Str(t)) if t == "span" => {}
        // Non-span event types are allowed; only spans have a fixed shape.
        Some(Json::Str(_)) => return Ok(()),
        _ => return Err(format!("{path}:{line_no}: event missing string \"type\"")),
    }
    for key in ["path", "name", "thread", "start_ns", "dur_ns"] {
        match get(key) {
            Some(Json::Str(_)) if key == "path" || key == "name" => {}
            Some(Json::Num(n)) if key != "path" && key != "name" && *n >= 0.0 => {}
            _ => return Err(format!("{path}:{line_no}: span event missing \"{key}\"")),
        }
    }
    Ok(())
}

fn check_manifest(obj: &[(String, Json)], path: &str) -> Result<(), String> {
    for key in ["schema_version", "name"] {
        if !obj.iter().any(|(n, _)| n == key) {
            return Err(format!("{path}: manifest missing \"{key}\""));
        }
    }
    Ok(())
}

fn validate_file(path: &str) -> Result<usize, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".json") {
        let doc =
            mga_obs::json::parse(body.trim()).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        match doc {
            Json::Obj(ref obj) => check_manifest(obj, path)?,
            _ => return Err(format!("{path}: manifest must be a JSON object")),
        }
        return Ok(1);
    }
    // JSONL: trace or metrics stream.
    let mut n = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        match doc {
            Json::Obj(ref obj) => check_span_event(obj, path, i + 1)?,
            _ => return Err(format!("{path}:{}: line must be a JSON object", i + 1)),
        }
        n += 1;
    }
    if n == 0 {
        return Err(format!("{path}: no JSON documents found"));
    }
    Ok(n)
}

/// Read a named counter from a metrics JSONL file, if present.
fn read_counter(path: &str, name: &str) -> Result<Option<f64>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        if let Json::Obj(obj) = doc {
            let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            if matches!(get("name"), Some(Json::Str(n)) if n == name) {
                if let Some(Json::Num(v)) = get("value") {
                    return Ok(Some(*v));
                }
            }
        }
    }
    Ok(None)
}

/// Assert the tape memory plan held: buffers were recycled and no
/// steady-state (replay) epoch allocated.
fn check_tape_zero_alloc(path: &str) -> Result<(), String> {
    match read_counter(path, "tape.arena_reuse")? {
        Some(v) if v > 0.0 => {}
        Some(_) => {
            return Err(format!(
                "{path}: tape.arena_reuse is zero — no buffer reuse"
            ))
        }
        None => return Err(format!("{path}: tape.arena_reuse counter missing")),
    }
    match read_counter(path, "tape.steady_alloc_bytes")? {
        Some(0.0) => Ok(()),
        Some(v) => Err(format!(
            "{path}: steady-state epochs allocated {v} bytes of tape memory (must be 0)"
        )),
        None => Err(format!(
            "{path}: tape.steady_alloc_bytes counter missing — did training replay any epoch?"
        )),
    }
}

/// Assert the serving engine's memory plan held: scratch cycled through
/// the arena and nothing was allocated after the construction prewarm.
fn check_serve_zero_alloc(path: &str) -> Result<(), String> {
    match read_counter(path, "serve.arena_reuse")? {
        Some(v) if v > 0.0 => {}
        Some(_) => {
            return Err(format!(
                "{path}: serve.arena_reuse is zero — serving scratch was not recycled"
            ))
        }
        None => return Err(format!("{path}: serve.arena_reuse gauge missing")),
    }
    match read_counter(path, "serve.steady_alloc_bytes")? {
        Some(0.0) => Ok(()),
        Some(v) => Err(format!(
            "{path}: steady-state serving allocated {v} bytes of scratch (must be 0)"
        )),
        None => Err(format!(
            "{path}: serve.steady_alloc_bytes gauge missing — did the engine publish metrics?"
        )),
    }
}

/// Validate one flight-recorder JSONL line.
fn check_flight_line(obj: &[(String, Json)], path: &str, line_no: usize) -> Result<bool, String> {
    let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    let num = |k: &str| -> Result<f64, String> {
        match get(k) {
            Some(Json::Num(n)) if *n >= 0.0 => Ok(*n),
            _ => Err(format!(
                "{path}:{line_no}: missing non-negative number \"{k}\""
            )),
        }
    };
    match get("type") {
        Some(Json::Str(t)) if t == "request" => {
            for k in ["id", "kernel", "e2e_ns"] {
                num(k)?;
            }
            let submit = num("submit_tick")?;
            let served = num("served_tick")?;
            if served < submit {
                return Err(format!("{path}:{line_no}: served before submitted"));
            }
            if num("queue_ticks")? != served - submit {
                return Err(format!(
                    "{path}:{line_no}: queue_ticks disagrees with the tick stamps"
                ));
            }
            if num("batch")? < 1.0 {
                return Err(format!("{path}:{line_no}: batch must be >= 1"));
            }
            if !matches!(get("cache_hit"), Some(Json::Bool(_))) {
                return Err(format!("{path}:{line_no}: missing bool \"cache_hit\""));
            }
            match get("precision") {
                Some(Json::Str(p)) if ["f32", "bf16", "int8"].contains(&p.as_str()) => {}
                _ => return Err(format!("{path}:{line_no}: bad \"precision\" tag")),
            }
            let classes = match get("classes") {
                Some(Json::Arr(a)) => a.len(),
                _ => return Err(format!("{path}:{line_no}: missing array \"classes\"")),
            };
            match get("margins") {
                Some(Json::Arr(a)) if a.len() == classes => {}
                _ => {
                    return Err(format!(
                        "{path}:{line_no}: \"margins\" must mirror \"classes\""
                    ))
                }
            }
            match get("confidence") {
                Some(Json::Num(c)) if (0.0..=1.0).contains(c) => {}
                _ => return Err(format!("{path}:{line_no}: confidence must be in [0,1]")),
            }
            Ok(true)
        }
        Some(Json::Str(t)) if t == "drift" => {
            match get("kind") {
                Some(Json::Str(k))
                    if ["new_kernel_rate", "cache_miss_rate", "confidence_collapse"]
                        .contains(&k.as_str()) => {}
                _ => return Err(format!("{path}:{line_no}: unknown drift \"kind\"")),
            }
            num("tick")?;
            for k in ["value", "raw", "threshold"] {
                if !matches!(get(k), Some(Json::Num(_))) {
                    return Err(format!("{path}:{line_no}: missing number \"{k}\""));
                }
            }
            Ok(false)
        }
        _ => Err(format!(
            "{path}:{line_no}: type must be \"request\" or \"drift\""
        )),
    }
}

/// Validate a flight dump: all lines well-formed, at least one request.
fn check_flight(path: &str) -> Result<(usize, usize), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (mut requests, mut drifts) = (0usize, 0usize);
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        match doc {
            Json::Obj(ref obj) => {
                if check_flight_line(obj, path, i + 1)? {
                    requests += 1;
                } else {
                    drifts += 1;
                }
            }
            _ => return Err(format!("{path}:{}: line must be a JSON object", i + 1)),
        }
    }
    if requests == 0 {
        return Err(format!("{path}: no request records — recorder never ran?"));
    }
    Ok((requests, drifts))
}

/// Validate a Prometheus text-exposition snapshot: prefixed names,
/// numeric samples, cumulative bucket series closed by a `+Inf` sample
/// that equals `_count`.
fn check_prom(path: &str) -> Result<usize, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut samples = 0usize;
    let mut bucket_series: Option<(String, f64)> = None;
    let mut inf_closed: Vec<(String, f64)> = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if !rest.trim_start().starts_with("TYPE ") {
                return Err(format!("{path}:{line_no}: only # TYPE comments expected"));
            }
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{path}:{line_no}: expected \"name value\""))?;
        if !name.starts_with("mga_") {
            return Err(format!("{path}:{line_no}: sample not mga_-prefixed"));
        }
        let v: f64 = value
            .parse()
            .map_err(|_| format!("{path}:{line_no}: non-numeric sample value {value:?}"))?;
        samples += 1;
        if let Some((base, rest)) = name.split_once("_bucket{le=") {
            if let Some((prev_base, prev_cum)) = &bucket_series {
                if prev_base == base && v < *prev_cum {
                    return Err(format!(
                        "{path}:{line_no}: bucket series for {base} not cumulative"
                    ));
                }
            }
            bucket_series = Some((base.to_string(), v));
            if rest.starts_with("\"+Inf\"") {
                inf_closed.push((base.to_string(), v));
            }
        } else {
            if let Some(total) = name.strip_suffix("_count").and_then(|base| {
                inf_closed
                    .iter()
                    .find(|(b, _)| b == base)
                    .map(|(_, inf)| *inf)
            }) {
                if total != v {
                    return Err(format!(
                        "{path}:{line_no}: _count {v} disagrees with +Inf bucket {total}"
                    ));
                }
            }
            bucket_series = None;
        }
    }
    if samples == 0 {
        return Err(format!("{path}: no samples"));
    }
    Ok(samples)
}

/// Replay the built-in synthetic drift scenario and assert the exact
/// trigger ticks. Mirrors the documented semantics: window boundaries
/// count on-tick calls, idle windows are skipped, detectors are
/// edge-triggered and re-arm on recovery.
fn check_drift_replay() -> Result<(), String> {
    let cfg = DriftConfig {
        window_ticks: 4,
        alpha: 0.5,
        warmup_windows: 1,
        max_new_kernel_rate: 0.4,
        max_cache_miss_rate: 0.4,
        min_confidence: 0.6,
    };
    let mut monitor = DriftMonitor::new(cfg);
    let healthy = TickStats {
        requests: 4,
        new_kernels: 0,
        cache_lookups: 4,
        cache_misses: 0,
        confidence_sum: 4.0 * 0.9,
    };
    let storm = TickStats {
        requests: 4,
        new_kernels: 4,
        cache_lookups: 4,
        cache_misses: 4,
        confidence_sum: 4.0 * 0.1,
    };
    let mut events = Vec::new();
    let mut tick = 0u64;
    // Window 1 (ticks 1–4): healthy warmup. Window 2 (ticks 5–8):
    // full storm — every EWMA crosses on the boundary tick 8. Windows
    // 3–5 (ticks 9–20): recovery decays the rate EWMAs to 0.0625 and
    // re-arms every detector. Window 6 (ticks 21–24): second storm —
    // the rate EWMAs hit 0.5·1.0 + 0.5·0.0625 = 0.53125 and the
    // confidence EWMA 0.475, so all three fire again at tick 24.
    let script: [(u64, &TickStats); 4] = [(4, &healthy), (4, &storm), (12, &healthy), (4, &storm)];
    for (n, stats) in script {
        for _ in 0..n {
            tick += 1;
            monitor.on_tick(tick, stats, &mut |e| events.push(e));
        }
    }
    let expect = [
        (DriftKind::NewKernelRate, 8),
        (DriftKind::CacheMissRate, 8),
        (DriftKind::ConfidenceCollapse, 8),
        (DriftKind::NewKernelRate, 24),
        (DriftKind::CacheMissRate, 24),
        (DriftKind::ConfidenceCollapse, 24),
    ];
    if events.len() != expect.len() {
        return Err(format!(
            "drift replay: expected {} events, got {}: {events:?}",
            expect.len(),
            events.len()
        ));
    }
    for (ev, (kind, tick)) in events.iter().zip(expect) {
        if ev.kind != kind || ev.tick != tick {
            return Err(format!(
                "drift replay: expected {kind:?} at tick {tick}, got {:?} at tick {}",
                ev.kind, ev.tick
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut files: Vec<String> = Vec::new();
    let mut tape_zero_alloc: Option<String> = None;
    let mut serve_zero_alloc: Option<String> = None;
    let mut flight: Option<String> = None;
    let mut prom: Option<String> = None;
    let mut drift_replay = false;
    while let Some(a) = args.next() {
        if a == "--drift-replay" {
            drift_replay = true;
        } else if [
            "--tape-zero-alloc",
            "--serve-zero-alloc",
            "--flight",
            "--prom",
        ]
        .contains(&a.as_str())
        {
            let Some(f) = args.next() else {
                eprintln!("{a} requires a file argument");
                std::process::exit(2);
            };
            match a.as_str() {
                "--tape-zero-alloc" => tape_zero_alloc = Some(f),
                "--serve-zero-alloc" => serve_zero_alloc = Some(f),
                "--flight" => flight = Some(f),
                _ => prom = Some(f),
            }
        } else {
            files.push(a);
        }
    }
    if files.is_empty()
        && tape_zero_alloc.is_none()
        && serve_zero_alloc.is_none()
        && flight.is_none()
        && prom.is_none()
        && !drift_replay
    {
        eprintln!(
            "usage: validate_trace [--tape-zero-alloc METRICS] [--serve-zero-alloc METRICS] \
             [--flight FILE] [--prom FILE] [--drift-replay] FILE..."
        );
        std::process::exit(2);
    }
    let mut failed = false;
    if let Some(metrics) = &tape_zero_alloc {
        match check_tape_zero_alloc(metrics) {
            Ok(()) => println!("{metrics}: tape memory plan OK (steady-state zero-alloc)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if let Some(metrics) = &serve_zero_alloc {
        match check_serve_zero_alloc(metrics) {
            Ok(()) => println!("{metrics}: serve memory plan OK (steady-state zero-alloc)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if let Some(f) = &flight {
        match check_flight(f) {
            Ok((req, drift)) => {
                println!("{f}: flight dump OK ({req} requests, {drift} drift events)")
            }
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if let Some(f) = &prom {
        match check_prom(f) {
            Ok(n) => println!("{f}: prometheus snapshot OK ({n} samples)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if drift_replay {
        match check_drift_replay() {
            Ok(()) => println!("drift replay OK (all detectors fired at their exact ticks)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    for f in &files {
        match validate_file(f) {
            Ok(n) => println!("{f}: OK ({n} documents)"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
