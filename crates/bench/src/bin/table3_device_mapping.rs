//! Table 3 — OpenCL heterogeneous device mapping (§4.2).
//!
//! 10-fold stratified CV on ~670 labeled (kernel, transfer, work-group)
//! points per device. The MGA model fuses the two static modalities with
//! transfer/work-group sizes (no performance counters here, matching the
//! paper). Paper: MGA 97.9 % / 97.7 % accuracy on the NVIDIA / AMD
//! systems; speedups 1.3× (oracle 1.34×) and 1.62× (oracle 1.66×) over
//! static mapping.

use mga_bench::{
    csv_write, devmap_model_cfg, exit_on_error, finish_run, heading, manifest, parse_opts, vec_dim,
    BenchError,
};
use mga_core::dataset::OclDataset;
use mga_core::devmap::run_devmap;
use mga_core::model::Modality;
use mga_sim::gpu::GpuSpec;

fn main() {
    exit_on_error("table3_device_mapping", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let mut specs = mga_kernels::catalog::opencl_catalog();
    if opts.quick {
        specs.truncate(64);
    }
    let k = if opts.quick { 4 } else { 10 };
    let mut man = manifest("table3_device_mapping", opts);
    man.set_int("kernels", specs.len() as i64)
        .set_int("cv_folds", k as i64);

    // Reference accuracies cited by the paper (its Table 3 cites Grewe,
    // DeepTune and inst2vec numbers from the IR2Vec paper).
    let cited = [
        ("Grewe et al. (cited)", 74.56, 70.29),
        ("DeepTune (cited)", 80.88, 83.24),
        ("inst2vec (cited)", 82.65, 82.35),
        ("PROGRAML (paper)", 80.0, 86.6),
        ("IR2Vec (paper)", 89.68, 92.82),
        ("MGA (paper)", 97.9, 97.7),
    ];

    heading("Table 3: heterogeneous device mapping accuracy (%)");
    println!("{} OpenCL kernels, {k}-fold stratified CV\n", specs.len());
    println!("{:<26} {:>12} {:>12}", "model", "NVIDIA GPU", "AMD GPU");
    for (name, nv, amd) in cited {
        println!("{name:<26} {nv:>12.2} {amd:>12.2}");
    }
    println!("{}", "-".repeat(52));

    let devices = [
        ("NVIDIA GTX 970", GpuSpec::gtx_970()),
        ("AMD Tahiti 7970", GpuSpec::tahiti_7970()),
    ];
    let modalities = [
        ("PROGRAML (ours)", Modality::GraphOnly),
        ("IR2Vec (ours)", Modality::VectorOnly),
        ("MGA (ours)", Modality::Multimodal),
    ];

    let mut results = Vec::new();
    for (dev_name, gpu) in &devices {
        let ds = OclDataset::build(specs.clone(), gpu.clone(), vec_dim(opts), opts.seed);
        println!(
            "\n[{dev_name}] {} labeled points, {} GPU-labeled",
            ds.samples.len(),
            ds.labels().iter().filter(|&&l| l == 1).count()
        );
        for (mname, modality) in &modalities {
            let cfg = devmap_model_cfg(opts, *modality);
            let r = run_devmap(&ds, &cfg, k, opts.seed);
            println!(
                "{mname:<26} accuracy {:.1}%  F1 {:.2}  speedup {:.2}x (oracle {:.2}x)",
                r.accuracy * 100.0,
                r.f1,
                r.speedup,
                r.oracle_speedup
            );
            results.push((dev_name.to_string(), mname.to_string(), r));
        }
    }

    for (dev, m, r) in &results {
        let key = format!(
            "{}_{}",
            if dev.starts_with("NVIDIA") {
                "nvidia"
            } else {
                "amd"
            },
            m.split_whitespace().next().unwrap_or(m).to_lowercase()
        );
        man.set_float(&format!("accuracy_{key}"), r.accuracy)
            .set_float(&format!("speedup_{key}"), r.speedup);
    }

    let csv_rows: Vec<String> = results
        .iter()
        .map(|(dev, m, r)| {
            format!(
                "{dev},{m},{:.4},{:.4},{:.4},{:.4}",
                r.accuracy, r.f1, r.speedup, r.oracle_speedup
            )
        })
        .collect();
    csv_write(
        "table3_device_mapping",
        "device,model,accuracy,f1,speedup,oracle_speedup",
        &csv_rows,
    );

    heading("shape check vs the paper");
    for dev in ["NVIDIA GTX 970", "AMD Tahiti 7970"] {
        let of = |m: &str| {
            results
                .iter()
                .find(|(d, mm, _)| d == dev && mm.starts_with(m))
                .map(|(_, _, r)| r.accuracy)
                .ok_or_else(|| BenchError::missing(format!("no {m} result for {dev}")))
        };
        let (mga, ir2v, prog) = (of("MGA")?, of("IR2Vec")?, of("PROGRAML")?);
        println!(
            "{dev}: MGA {:.1}% vs best unimodal {:.1}% — multimodal wins: {}",
            mga * 100.0,
            ir2v.max(prog) * 100.0,
            mga >= ir2v.max(prog)
        );
    }
    finish_run(&mut man);
    Ok(())
}
