//! §4.1.5 "Observations and Analysis" — tuning-cost comparison.
//!
//! For the 2mm benchmark with the LARGE input on the Skylake system, the
//! paper reports ≈90 s for the MGA tuner (two profiling runs +
//! inference) vs. ≈180 s (OpenTuner, time limit), ≈260 s (ytopt, 10 max
//! evaluations) and ≈220 s (BLISS). The MGA cost is independent of the
//! search-space size; the search tuners pay per evaluation.

use mga_bench::{cfg_str, exit_on_error, heading, parse_opts, BenchError};
use mga_kernels::catalog::openmp_catalog;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::{large_space, simulate, OmpConfig};
use mga_tuners::{bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike, Evaluator, Space};

fn main() {
    exit_on_error("tuning_cost", run());
}

fn run() -> Result<(), BenchError> {
    let _opts = parse_opts();
    let cpu = CpuSpec::skylake_4114();
    let spec = openmp_catalog()
        .into_iter()
        .find(|s| s.app == "2mm")
        .unwrap_or_else(|| {
            eprintln!("tuning_cost: 2mm missing from kernel catalog");
            std::process::exit(1);
        });
    let ws = 32.0 * 1024.0 * 1024.0; // LARGE (~1000x1000 doubles, a few arrays)
    let space = Space::new(large_space());

    heading("Tuning cost for 2mm (LARGE) on Skylake 4114");
    let default_cfg = OmpConfig::default_for(&cpu);
    let default_rt = simulate(&spec, ws, &default_cfg, &cpu).runtime;
    println!(
        "default runtime: {default_rt:.2}s  ({})",
        cfg_str(&default_cfg)
    );

    // --- MGA inference cost: two profiling runs (the five counters can't
    // be collected in one run) + model inference.
    let profiling_runs = 2.0;
    let per_run_overhead = 2.0; // launch/instrumentation
    let inference_s = 0.4; // graph+vector encode + forward pass
    let mga_cost = profiling_runs * (default_rt + per_run_overhead) + inference_s;
    println!(
        "\nMGA tuner: {:.0}s  = {} profiling runs x ({:.1}s run + {:.1}s overhead) + {:.1}s inference (paper: ~90s)",
        mga_cost, profiling_runs as u32, default_rt, per_run_overhead, inference_s
    );

    // --- Search tuners: budgeted evaluations on the real objective.
    let runs: Vec<(&str, mga_tuners::TunerFactory, usize)> = vec![
        (
            "OpenTuner",
            Box::new(|s| Box::new(OpenTunerLike::new(s))),
            25,
        ),
        ("ytopt", Box::new(|s| Box::new(YtoptLike::new(s))), 10),
        ("BLISS", Box::new(|s| Box::new(BlissLike::new(s))), 15),
    ];
    let paper = [("OpenTuner", 180.0), ("ytopt", 260.0), ("BLISS", 220.0)];
    println!();
    for (name, mk, budget) in &runs {
        let mut tuner = mk(7);
        let mut ev = Evaluator::new(&spec, ws, &cpu);
        let chosen = tuner.tune(&space, &mut ev, *budget);
        let chosen_rt = simulate(&spec, ws, &chosen, &cpu).runtime;
        let paper_s = paper
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| BenchError::missing(format!("no paper cost figure for tuner {name}")))?
            .1;
        println!(
            "{name:<10} {:.0}s over {} evaluations -> {} ({:.2}x speedup)   (paper: ~{paper_s:.0}s)",
            ev.spent_seconds,
            ev.evals,
            cfg_str(&chosen),
            default_rt / chosen_rt
        );
    }

    println!(
        "\nMGA's cost is flat in the search-space size; the search tuners pay\n\
         per evaluation and grow with the space (the paper's conclusion)."
    );
    Ok(())
}
