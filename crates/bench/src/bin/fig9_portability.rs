//! Figure 9 — µ-architecture portability (§4.1.5).
//!
//! The thread-prediction model is trained **only on Comet Lake data**;
//! it then predicts thread counts for Broadwell and Sandy Bridge
//! (single-socket 8-core parts, so the model transfers without
//! retraining). For each left-out PolyBench kernel, the target system is
//! profiled twice, the cache counters are rescaled by cache-capacity
//! ratios, and the rescaled features drive the pre-trained model.

use mga_bench::{finish_run, geomean, heading, manifest, model_cfg, parse_opts, vec_dim};
use mga_core::cv::{leave_one_group_out, run_folds};
use mga_core::model::{FusionModel, Modality, TrainData};
use mga_core::omp::{portability_features, OmpTask};
use mga_core::OmpDataset;
use mga_kernels::catalog::polybench_portability_kernels;
use mga_kernels::inputs::{openmp_input_sizes, polybench_standard_large};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

fn main() {
    let opts = parse_opts();
    let source = CpuSpec::comet_lake();
    let mut specs = polybench_portability_kernels();
    let mut sizes = openmp_input_sizes();
    if opts.quick {
        specs.truncate(8);
        sizes = sizes.into_iter().step_by(6).collect();
    }
    let train_ds = OmpDataset::build(
        specs.clone(),
        sizes,
        thread_space(&source),
        source.clone(),
        vec_dim(opts),
        opts.seed,
    );
    let task = OmpTask::new(&train_ds);
    let folds = leave_one_group_out(&train_ds.groups());
    let mut man = manifest("fig9_portability", opts);
    man.set_int("kernels", specs.len() as i64)
        .set_str("source_arch", &source.name);

    let targets = [CpuSpec::broadwell_8c(), CpuSpec::sandy_bridge_8c()];
    let eval_sizes: Vec<f64> = polybench_standard_large().to_vec();

    heading("Figure 9: thread prediction on Broadwell/Sandy Bridge (trained on Comet Lake)");
    println!(
        "{} PolyBench kernels, STANDARD + LARGE inputs, leave-one-out\n",
        specs.len()
    );
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>14}",
        "kernel", "BW speedup", "BW oracle", "SB speedup", "SB oracle"
    );

    let mut per_target_speedups: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    let mut per_target_oracle: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];

    // Left-out kernels (folds) evaluate in parallel; the model seed
    // derives from the fold index, so results match the sequential loop.
    let fold_outs = run_folds(&folds, |fi, fold| {
        let kernel_idx = train_ds.samples[fold.val[0]].kernel;
        let kernel_name = train_ds.specs[kernel_idx].app.clone();
        let data = task.train_data(&train_ds);
        let mut cfg = model_cfg(opts, Modality::Multimodal, true);
        cfg.seed = opts.seed.wrapping_add(fi as u64);
        let model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());

        let mut row = format!("{kernel_name:<24} ");
        let mut target_stats: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        for target in targets.iter() {
            // Profile the validation kernel on the target system at the
            // two dataset sizes and rescale the counters.
            let eval_ds = OmpDataset::build(
                vec![specs[kernel_idx].clone()],
                eval_sizes.clone(),
                thread_space(target),
                target.clone(),
                vec_dim(opts),
                opts.seed,
            );
            let aux: Vec<Vec<f32>> = eval_ds
                .samples
                .iter()
                .map(|s| portability_features(&s.counters, &source, target))
                .collect();
            // Prediction view: the left-out kernel's graph/vector from the
            // training dataset, target-arch counters as aux.
            let sample_kernel = vec![kernel_idx; eval_ds.samples.len()];
            let dummy_labels: Vec<Vec<usize>> = task
                .labels
                .iter()
                .map(|_| vec![0usize; eval_ds.samples.len()])
                .collect();
            let pdata = TrainData {
                graphs: &train_ds.graphs,
                vectors: &train_ds.vectors,
                sample_kernel: &sample_kernel,
                aux: &aux,
                labels: &dummy_labels,
            };
            let idx: Vec<usize> = (0..eval_ds.samples.len()).collect();
            let preds = model.predict(&pdata, &idx);
            let mut speeds = Vec::new();
            let mut oracles = Vec::new();
            for (j, s) in eval_ds.samples.iter().enumerate() {
                let heads: Vec<usize> = preds.iter().map(|p| p[j]).collect();
                let cfg_idx = task.codec.decode(&heads);
                speeds.push(eval_ds.achieved_speedup(s, cfg_idx));
                oracles.push(eval_ds.oracle_speedup(s));
            }
            let g = geomean(&speeds);
            let o = geomean(&oracles);
            row.push_str(&format!("{g:>13.2}x {o:>13.2}x "));
            target_stats.push((speeds, oracles));
        }
        (row, target_stats)
    });
    for (row, target_stats) in fold_outs {
        for (ti, (speeds, oracles)) in target_stats.into_iter().enumerate() {
            per_target_speedups[ti].extend(speeds);
            per_target_oracle[ti].extend(oracles);
        }
        println!("{row}");
    }

    heading("summary [higher is better]");
    for (ti, target) in targets.iter().enumerate() {
        let g = geomean(&per_target_speedups[ti]);
        let o = geomean(&per_target_oracle[ti]);
        man.set_float(&format!("geomean_speedup_{}", target.name), g)
            .set_float(&format!("geomean_oracle_{}", target.name), o);
        println!(
            "{:<28} geomean speedup {:.2}x vs oracle {:.2}x (normalized {:.3})",
            target.name,
            g,
            o,
            g / o
        );
    }
    println!(
        "\nno retraining was performed for the target architectures; only two\n\
         profiling runs per kernel (the paper's §4.1.5 protocol)."
    );
    finish_run(&mut man);
}
