//! Extension experiment (paper §7 future work): the online hybrid tuner.
//!
//! Compares, at matched evaluation budgets on held-out loops of the
//! large search space:
//!   * the pure MGA model (0 real evaluations),
//!   * the online tuner (model prior + greedy refinement),
//!   * cold-started search tuners (no prior).

use mga_bench::{
    exit_on_error, geomean, heading, large_space_dataset, model_cfg, parse_opts, BenchError,
};
use mga_core::cv::kfold_by_group;
use mga_core::model::{FusionModel, Modality};
use mga_core::omp::OmpTask;
use mga_core::online::evaluate_online;
use mga_tuners::{bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike, Evaluator, Space};

fn main() {
    exit_on_error("online_tuner", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let ds = large_space_dataset(opts);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let fold = &folds[0];
    let data = task.train_data(&ds);

    heading("Online hybrid tuner (future work): model prior + real feedback");
    println!(
        "space: {} configs; {} held-out samples\n",
        ds.space.len(),
        fold.val.len()
    );

    let cfg = model_cfg(opts, Modality::Multimodal, true);
    let model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());

    let budgets = [3usize, 6, 10];
    println!(
        "{:<26} {}",
        "method",
        budgets
            .iter()
            .map(|b| format!("budget {b:<9}"))
            .collect::<String>()
    );

    // Pure model row (budget-independent).
    let oracle: Vec<f64> = fold
        .val
        .iter()
        .map(|&i| ds.oracle_speedup(&ds.samples[i]))
        .collect();
    let model_only = evaluate_online(&ds, &data, &model, &task.codec, &fold.val, 1);
    let m_geo = geomean(&model_only.iter().map(|r| r.0).collect::<Vec<_>>());
    println!(
        "{:<26} {}",
        "MGA model (0 evals)",
        budgets
            .iter()
            .map(|_| format!("{m_geo:<16.3}"))
            .collect::<String>()
    );

    let mut row = format!("{:<26} ", "MGA + online refinement");
    for &b in &budgets {
        let res = evaluate_online(&ds, &data, &model, &task.codec, &fold.val, b);
        let g = geomean(&res.iter().map(|r| r.1).collect::<Vec<_>>());
        row.push_str(&format!("{g:<16.3}"));
    }
    println!("{row}");

    let space = Space::new(ds.space.clone());
    let tuner_rows: Vec<(&str, mga_tuners::TunerFactory)> = vec![
        ("ytopt (cold)", Box::new(|s| Box::new(YtoptLike::new(s)))),
        (
            "OpenTuner (cold)",
            Box::new(|s| Box::new(OpenTunerLike::new(s))),
        ),
        ("BLISS (cold)", Box::new(|s| Box::new(BlissLike::new(s)))),
    ];
    for (name, mk) in &tuner_rows {
        let mut row = format!("{name:<26} ");
        for &b in &budgets {
            let mut speeds = Vec::new();
            for &i in &fold.val {
                let s = &ds.samples[i];
                let mut tuner = mk(i as u64);
                let mut ev = Evaluator::new(&ds.specs[s.kernel], s.ws_bytes, &ds.cpu);
                let chosen = tuner.tune(&space, &mut ev, b);
                let idx =
                    ds.space.iter().position(|c| *c == chosen).ok_or_else(|| {
                        BenchError::missing("tuner chose a config outside the space")
                    })?;
                speeds.push(ds.achieved_speedup(s, idx));
            }
            row.push_str(&format!("{:<16.3}", geomean(&speeds)));
        }
        println!("{row}");
    }
    println!(
        "{:<26} {}",
        "oracle",
        budgets
            .iter()
            .map(|_| format!("{:<16.3}", geomean(&oracle)))
            .collect::<String>()
    );
    // Data-driven summary: where does the online tuner stand at the
    // smallest budget, and what does refinement add over the pure model?
    let online_small = {
        let res = evaluate_online(&ds, &data, &model, &task.codec, &fold.val, budgets[0]);
        geomean(&res.iter().map(|r| r.1).collect::<Vec<_>>())
    };
    let last_budget = *budgets
        .last()
        .ok_or_else(|| BenchError::missing("empty budget list"))?;
    let online_big = {
        let res = evaluate_online(&ds, &data, &model, &task.codec, &fold.val, last_budget);
        geomean(&res.iter().map(|r| r.1).collect::<Vec<_>>())
    };
    println!(
        "\nrefinement adds {:+.1}% over the pure model at budget {}, {:+.1}% at budget {};\n\
         unlike the cold tuners, the model needs no evaluations at all to reach {:.3}\n\
         ({:.0}% of oracle).",
        (online_small / m_geo - 1.0) * 100.0,
        budgets[0],
        (online_big / m_geo - 1.0) * 100.0,
        last_budget,
        m_geo,
        m_geo / geomean(&oracle) * 100.0
    );
    Ok(())
}
