//! Table 2 + Figure 7 — scaling to the large search space.
//!
//! Threads {1,2,4,8,12,16,20} × {static,dynamic,guided} × chunks
//! {1,8,32,64,128,256,512} on the Skylake 4114 (10c/20t), 30 apps from
//! PolyBench/Rodinia/LULESH, leave-one-application-out validation.
//! Paper: normalized speedups > 0.95 for 21/30 apps and > 0.85 for
//! 28/30; geomean 2.23× vs. oracle 2.38×; MGA beats ytopt / OpenTuner /
//! BLISS on 28 / 29 / 26 of 30 apps.

use mga_bench::{
    csv_write, exit_on_error, finish_run, geomean, heading, large_space_dataset, manifest,
    model_cfg, parse_opts, BenchError,
};
use mga_core::cv::{leave_one_group_out, run_folds};
use mga_core::metrics::summarize;
use mga_core::model::Modality;
use mga_core::omp::{eval_model_fold, eval_tuner_fold, OmpTask};
use mga_tuners::{bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike, Tuner};

fn main() {
    exit_on_error("fig7_large_space", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let ds = large_space_dataset(opts);
    let task = OmpTask::new(&ds);
    let folds = leave_one_group_out(&ds.app_groups());
    let mut man = manifest("fig7_large_space", opts);
    man.set_int("apps", ds.specs.len() as i64)
        .set_int("inputs", ds.sizes.len() as i64)
        .set_int("space", ds.space.len() as i64);
    heading("Figure 7: large search space, leave-one-application-out");
    println!(
        "search space: {} configs (Table 2), {} apps x {} inputs on {}",
        ds.space.len(),
        ds.specs.len(),
        ds.sizes.len(),
        ds.cpu.name
    );

    let budgets = [("ytopt", 10usize), ("OpenTuner", 25), ("BLISS", 15)];
    let mut rows: Vec<(String, f64, Vec<f64>)> = Vec::new(); // app, mga_norm, tuner_norms
    let mut mga_pairs = Vec::new();

    println!(
        "\n{:<22} {:>8} {:>8} {:>8} {:>8}",
        "application", "MGA", "ytopt", "OpenTnr", "BLISS"
    );
    // Applications (folds) evaluate in parallel; model and tuner seeds
    // derive from the fold index alone, so the numbers match the
    // sequential loop exactly.
    let fold_outs = run_folds(&folds, |fi, fold| {
        let app = ds.specs[ds.samples[fold.val[0]].kernel].app.clone();
        let mut cfg = model_cfg(opts, Modality::Multimodal, true);
        cfg.seed = opts.seed.wrapping_add(fi as u64);
        let e = eval_model_fold(&ds, &task, cfg, fold);
        let (_, _, mga_norm) = summarize(&e.pairs);

        let mut tuner_norms = Vec::new();
        for (name, budget) in budgets.iter() {
            let mut mk = |seed: u64| -> Box<dyn Tuner> {
                match *name {
                    "ytopt" => Box::new(YtoptLike::new(seed)),
                    "OpenTuner" => Box::new(OpenTunerLike::new(seed)),
                    _ => Box::new(BlissLike::new(seed)),
                }
            };
            let te = eval_tuner_fold(&ds, &mut mk, *budget, fold);
            let (_, _, n) = summarize(&te.pairs);
            tuner_norms.push(n);
        }
        (app, mga_norm, e.pairs, tuner_norms)
    });
    for (app, mga_norm, pairs, tuner_norms) in fold_outs {
        mga_pairs.extend(pairs);
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            app, mga_norm, tuner_norms[0], tuner_norms[1], tuner_norms[2]
        );
        rows.push((app, mga_norm, tuner_norms));
    }

    heading("summary");
    let n_apps = rows.len();
    let above95 = rows.iter().filter(|r| r.1 > 0.95).count();
    let above85 = rows.iter().filter(|r| r.1 > 0.85).count();
    println!(
        "MGA normalized speedup > 0.95x for {above95}/{n_apps} apps (paper: 21/30), \
         > 0.85x for {above85}/{n_apps} (paper: 28/30)"
    );
    for (ti, (name, _)) in budgets.iter().enumerate() {
        let wins = rows.iter().filter(|r| r.1 > r.2[ti]).count();
        let t95 = rows.iter().filter(|r| r.2[ti] > 0.95).count();
        println!(
            "MGA beats {name} on {wins}/{n_apps} apps; {name} > 0.95x on {t95}/{n_apps} \
             (paper: MGA wins 28/29/26; >0.95 on 7/2/12)"
        );
    }
    let ach: Vec<f64> = mga_pairs.iter().map(|p| p.achieved).collect();
    let ora: Vec<f64> = mga_pairs.iter().map(|p| p.oracle).collect();
    println!(
        "geomean: MGA {:.2}x vs oracle {:.2}x (paper: 2.23x vs 2.38x)",
        geomean(&ach),
        geomean(&ora)
    );
    let worst = rows
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or_else(|| BenchError::missing("no per-application rows to rank"))?;
    println!(
        "worst application: {} ({:.3} normalized; paper: trisolv)",
        worst.0, worst.1
    );

    let csv_rows: Vec<String> = rows
        .iter()
        .map(|(app, mga, t)| format!("{app},{mga:.4},{:.4},{:.4},{:.4}", t[0], t[1], t[2]))
        .collect();
    csv_write(
        "fig7_large_space",
        "application,mga_normalized,ytopt_normalized,opentuner_normalized,bliss_normalized",
        &csv_rows,
    );
    man.set_int("apps_above_095", above95 as i64)
        .set_int("apps_above_085", above85 as i64)
        .set_float("geomean_speedup_MGA", geomean(&ach))
        .set_float("geomean_speedup_oracle", geomean(&ora))
        .set_str("worst_app", &worst.0)
        .set_float("worst_app_normalized", worst.1);
    finish_run(&mut man);
    Ok(())
}
