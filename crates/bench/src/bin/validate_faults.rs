//! Fault-injection validation harness.
//!
//! Arms each `MGA_FAULT` site in turn and asserts the corresponding
//! recovery path actually engages:
//!
//! * `grad:nan`   — guardrails catch the NaN, training rolls back, halves
//!   the learning rate and still converges;
//! * `pool:panic` — a worker panic surfaces with the failing chunk index
//!   and the pool stays usable;
//! * `ckpt:truncate` / `ckpt:bitflip` — corrupted checkpoints are
//!   rejected with a typed `Malformed` error, never a panic;
//! * `sample:empty` — degenerate graph samples degrade to the remaining
//!   modalities instead of crashing prediction;
//! * resume — a run killed mid-training (simulated via an exhausted
//!   retry budget after a mid-run checkpoint) resumes bitwise identical
//!   to an uninterrupted run;
//! * determinism — with no fault armed, fault-tolerant training equals
//!   classic training exactly;
//! * `shard:crash` / `shard:stall` — a serving-cluster shard dies (or
//!   stalls) mid-stream; queued work is evacuated and rerouted, health
//!   flips, and every accepted request is still answered;
//! * `route:misdirect` — the router delivers to the wrong shard; the
//!   cluster absorbs it as a redirect, again with zero loss;
//! * `swap:corrupt` — a hot-swap candidate checkpoint is bit-flipped in
//!   transit; the swap is rejected with a typed error, the serving plan
//!   epoch never moves (instant rollback), and a clean retry succeeds.
//!
//! Exits nonzero if any scenario fails; CI runs this on every push.

use mga_core::cv::kfold_by_group;
use mga_core::model::{FitOptions, FusionModel, Modality, ModelConfig};
use mga_core::omp::OmpTask;
use mga_core::persist;
use mga_core::{GuardrailConfig, OmpDataset, TrainError};
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_obs::fault;
use mga_obs::metrics;
use mga_serve::{load_candidate, Cluster, ClusterConfig, Health, Request, ServeConfig, SwapError};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

struct Harness {
    failures: Vec<String>,
}

impl Harness {
    fn check(&mut self, scenario: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {scenario}");
        } else {
            println!("FAIL  {scenario}: {detail}");
            self.failures.push(format!("{scenario}: {detail}"));
        }
    }
}

/// Mirror of the fault module's deterministic draw (documented in
/// `mga_obs::fault`), used to pick a seed whose first fire lands on a
/// chosen check ordinal.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn first_fire_ordinal(seed: u64, prob: f64, horizon: u64) -> Option<u64> {
    let threshold = (prob * u64::MAX as f64) as u64;
    (0..horizon)
        .find(|&n| splitmix64(seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(n)) <= threshold)
}

fn small_task() -> (OmpDataset, OmpTask, Vec<usize>, Vec<usize>) {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
    let cpu = CpuSpec::comet_lake();
    let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 1);
    let (train, val) = (folds[0].train.clone(), folds[0].val.clone());
    (ds, task, train, val)
}

fn small_cfg(epochs: usize) -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 10,
            layers: 1,
            update: mga_gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 12,
            hidden_dim: 8,
            code_dim: 4,
            epochs: 10,
            ..DaeConfig::default()
        },
        hidden: 16,
        epochs,
        lr: 0.02,
        seed: 2,
    }
}

fn main() {
    mga_obs::init_from_env();
    // This harness drives injection itself; an inherited spec would
    // corrupt the scenarios.
    fault::clear();
    let mut h = Harness {
        failures: Vec::new(),
    };
    let (ds, task, train, val) = small_task();
    let data = task.train_data(&ds);
    let head_sizes = task.codec.head_sizes();
    let tmp = std::env::temp_dir().join("mga_validate_faults");
    if let Err(e) = std::fs::create_dir_all(&tmp) {
        eprintln!("validate_faults: cannot create {tmp:?}: {e}");
        std::process::exit(1);
    }

    // --- Scenario 1: no faults — try_fit is exactly fit. ---
    let reference = FusionModel::fit(small_cfg(20), &data, &train, &head_sizes);
    let ref_preds = reference.predict(&data, &val);
    {
        let m = FusionModel::try_fit(
            small_cfg(20),
            &data,
            &train,
            &head_sizes,
            &FitOptions::default(),
        );
        match m {
            Ok(m) => h.check(
                "determinism: try_fit == fit (no faults)",
                m.predict(&data, &val) == ref_preds && m.final_loss == reference.final_loss,
                "guarded training diverged from classic training".into(),
            ),
            Err(e) => h.check(
                "determinism: try_fit == fit (no faults)",
                false,
                e.to_string(),
            ),
        }
    }

    // --- Scenario 2: grad:nan — guardrails recover and training
    // converges. ---
    {
        let before_fired = metrics::counter("fault.fired.grad").get();
        let before_rec = metrics::counter("health.recoveries").get();
        // ~10% of epochs poisoned; generous retry budget.
        fault::set_spec("grad:nan:0.1:11").expect("valid spec");
        let opts = FitOptions {
            guard: GuardrailConfig {
                max_retries: 16,
                snapshot_every: 3,
                ..GuardrailConfig::default()
            },
            ..FitOptions::default()
        };
        let res = FusionModel::try_fit(small_cfg(30), &data, &train, &head_sizes, &opts);
        fault::clear();
        let fired = metrics::counter("fault.fired.grad").get() - before_fired;
        let recovered = metrics::counter("health.recoveries").get() - before_rec;
        match res {
            Ok(m) => {
                h.check(
                    "grad:nan: fault fired and recovery engaged",
                    fired >= 1 && recovered >= 1,
                    format!("fired={fired} recoveries={recovered}"),
                );
                h.check(
                    "grad:nan: training still converges",
                    m.final_loss.is_finite() && m.final_loss < 5.0,
                    format!("final_loss={}", m.final_loss),
                );
            }
            Err(e) => {
                h.check("grad:nan: recovery", false, format!("training failed: {e}"));
            }
        }
    }

    // --- Scenario 3: pool:panic — panic carries the chunk index; the
    // pool survives. ---
    {
        let before = metrics::counter("pool.task_panics").get();
        fault::set_spec("pool:panic:1.0:3").expect("valid spec");
        let caught = std::panic::catch_unwind(|| {
            mga_nn::pool::parallel_for(64, |_i| {});
        });
        fault::clear();
        let msg = match &caught {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default(),
            Ok(()) => String::new(),
        };
        let panics = metrics::counter("pool.task_panics").get() - before;
        h.check(
            "pool:panic: panic reports failing chunk",
            caught.is_err() && msg.contains("chunk") && msg.contains("injected pool fault"),
            format!("caught={} msg={msg:?}", caught.is_err()),
        );
        h.check(
            "pool:panic: task_panics counted",
            panics >= 1,
            format!("pool.task_panics delta = {panics}"),
        );
        // The pool must drain cleanly and stay usable.
        let still_works = std::panic::catch_unwind(|| {
            let total = std::sync::atomic::AtomicU64::new(0);
            mga_nn::pool::parallel_for(128, |i| {
                total.fetch_add(i as u64, std::sync::atomic::Ordering::Relaxed);
            });
            total.load(std::sync::atomic::Ordering::Relaxed)
        });
        h.check(
            "pool:panic: pool usable afterwards",
            matches!(still_works, Ok(x) if x == (0..128u64).sum()),
            format!("{:?}", still_works.as_ref().ok()),
        );
    }

    // --- Scenario 4: ckpt corruption — typed rejection, no panic. ---
    for kind in ["truncate", "bitflip"] {
        let path = tmp.join(format!("corrupt_{kind}.ckpt"));
        let _ = std::fs::remove_file(&path);
        fault::set_spec(&format!("ckpt:{kind}:1.0:5")).expect("valid spec");
        let save = persist::save_checkpoint_to_file(&reference, 12, 5, None, &path);
        fault::clear();
        let loaded = persist::load_checkpoint_from_file(&path);
        h.check(
            &format!("ckpt:{kind}: corrupted checkpoint rejected as Malformed"),
            save.is_ok() && matches!(loaded, Err(persist::PersistError::Malformed(_))),
            format!("save={:?} load_ok={}", save.err(), loaded.is_ok()),
        );
        // Clean save/load round-trips once disarmed.
        let save2 = persist::save_checkpoint_to_file(&reference, 12, 5, None, &path);
        let reload = persist::load_from_file(&path);
        h.check(
            &format!("ckpt:{kind}: clean save/load after disarm"),
            save2.is_ok()
                && reload
                    .map(|m| m.predict(&data, &val) == ref_preds)
                    .unwrap_or(false),
            "reloaded model mismatched".into(),
        );
        let _ = std::fs::remove_file(&path);
    }

    // --- Scenario 5: sample:empty — prediction degrades gracefully. ---
    {
        let before = metrics::counter("model.degraded_graphs").get();
        fault::set_spec("sample:empty:0.5:9").expect("valid spec");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reference.predict(&data, &val)
        }));
        fault::clear();
        let degraded = metrics::counter("model.degraded_graphs").get() - before;
        let shape_ok = caught
            .as_ref()
            .map(|p| p.len() == ref_preds.len() && p[0].len() == val.len())
            .unwrap_or(false);
        h.check(
            "sample:empty: prediction survives degenerate graphs",
            shape_ok && degraded >= 1,
            format!("panicked={} degraded={degraded}", caught.is_err()),
        );
    }

    // --- Scenario 6: mid-training crash + resume is bitwise exact. ---
    {
        let path = tmp.join("resume.ckpt");
        let _ = std::fs::remove_file(&path);
        let epochs = 20usize;
        // Pick a fault seed whose first grad fire lands after the last
        // periodic checkpoint (epoch 14) but before the end of training,
        // so the "crash" interrupts a run that already checkpointed.
        let seed = (0..100_000u64)
            .find(|&s| matches!(first_fire_ordinal(s, 0.05, 64), Some(n) if (15..20).contains(&n)))
            .expect("a seed with first fire in epochs 15..20 exists");
        fault::set_spec(&format!("grad:nan:0.05:{seed}")).expect("valid spec");
        let opts = FitOptions {
            guard: GuardrailConfig {
                max_retries: 0, // crash on first fault, like a SIGKILL
                ..GuardrailConfig::default()
            },
            checkpoint: Some(&path),
            checkpoint_every: 7,
            resume: true,
        };
        let crashed = FusionModel::try_fit(small_cfg(epochs), &data, &train, &head_sizes, &opts);
        fault::clear();
        let interrupted = matches!(crashed, Err(TrainError::RetryBudgetExhausted { .. }));
        let ckpt_exists = path.exists();
        // Restart with identical options and no faults: must resume from
        // the epoch-14 checkpoint and finish identically to `reference`
        // (same config, trained uninterrupted).
        let before_resumes = metrics::counter("train.resumes").get();
        let resumed = FusionModel::try_fit(small_cfg(epochs), &data, &train, &head_sizes, &opts);
        let resumes = metrics::counter("train.resumes").get() - before_resumes;
        match resumed {
            Ok(m) => {
                h.check(
                    "resume: interrupted run left a checkpoint",
                    interrupted && ckpt_exists,
                    format!("interrupted={interrupted} ckpt_exists={ckpt_exists}"),
                );
                h.check(
                    "resume: continuation is bitwise identical",
                    resumes == 1
                        && m.predict(&data, &val) == ref_preds
                        && m.final_loss == reference.final_loss,
                    format!(
                        "resumes={resumes} final_loss {} vs {}",
                        m.final_loss, reference.final_loss
                    ),
                );
            }
            Err(e) => h.check("resume: continuation", false, format!("resume failed: {e}")),
        }
        let _ = std::fs::remove_file(&path);
    }

    // --- Scenario 7: serving cluster under shard crash / stall /
    // misdirect — every accepted request answered, no matter what. ---
    let cluster_cfg = || ClusterConfig {
        shards: 4,
        queue_capacity: 64,
        serve: ServeConfig {
            max_batch: 4,
            max_wait_ticks: 1,
            cache_capacity: 16,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    // Drive a fixed submit/tick script; returns (submitted, cluster
    // accepted/answered totals, surviving shard count).
    let drive = |cluster: &mut Cluster<'_>, steps: usize| -> (u64, u64, u64, usize) {
        let mut out = Vec::new();
        let mut submitted = 0u64;
        for step in 0..steps {
            let i = val[step % val.len()];
            let req = Request {
                id: submitted,
                kernel: data.sample_kernel[i],
                aux: data.aux[i].clone(),
            };
            if cluster.submit(req, None).is_ok() {
                submitted += 1;
            }
            if step % 3 == 2 {
                cluster.tick();
                cluster.drain(&mut out);
            }
        }
        fault::clear(); // flush below must not keep injecting
        cluster.flush();
        cluster.drain(&mut out);
        let live = (0..cluster.shards())
            .filter(|&s| cluster.health(s) != Health::Down)
            .count();
        (
            submitted,
            cluster.accepted_total(),
            cluster.answered_total(),
            live,
        )
    };
    {
        let before = metrics::counter("fault.fired.shard").get();
        fault::set_spec("shard:crash:0.02:21").expect("valid spec");
        let mut cluster = Cluster::new(&reference, data.graphs, data.vectors, cluster_cfg());
        let (submitted, accepted, answered, live) = drive(&mut cluster, 96);
        let fired = metrics::counter("fault.fired.shard").get() - before;
        h.check(
            "shard:crash: fault fired and a shard went down",
            fired >= 1 && live < 4,
            format!("fired={fired} live={live}"),
        );
        h.check(
            "shard:crash: every accepted request answered",
            submitted == accepted && accepted == answered && answered > 0,
            format!("submitted={submitted} accepted={accepted} answered={answered}"),
        );
    }
    {
        let before = metrics::counter("fault.fired.shard").get();
        fault::set_spec("shard:stall:1.0:17").expect("valid spec");
        let mut cluster = Cluster::new(&reference, data.graphs, data.vectors, cluster_cfg());
        let (submitted, accepted, answered, live) = drive(&mut cluster, 48);
        let fired = metrics::counter("fault.fired.shard").get() - before;
        h.check(
            "shard:stall: stalls injected, shards survive",
            fired >= 1 && live == 4,
            format!("fired={fired} live={live}"),
        );
        h.check(
            "shard:stall: every accepted request answered",
            submitted == accepted && accepted == answered && answered > 0,
            format!("submitted={submitted} accepted={accepted} answered={answered}"),
        );
    }
    {
        let before_fired = metrics::counter("fault.fired.route").get();
        let before_redir = metrics::counter("serve.redirect_total").get();
        fault::set_spec("route:misdirect:1.0:13").expect("valid spec");
        let mut cluster = Cluster::new(&reference, data.graphs, data.vectors, cluster_cfg());
        let (submitted, accepted, answered, _) = drive(&mut cluster, 48);
        let fired = metrics::counter("fault.fired.route").get() - before_fired;
        let redirected = metrics::counter("serve.redirect_total").get() - before_redir;
        h.check(
            "route:misdirect: every request misdirected and redirected",
            fired == submitted && redirected == submitted,
            format!("submitted={submitted} fired={fired} redirected={redirected}"),
        );
        h.check(
            "route:misdirect: every accepted request answered",
            submitted == accepted && accepted == answered && answered > 0,
            format!("submitted={submitted} accepted={accepted} answered={answered}"),
        );
    }

    // --- Scenario 8: swap:corrupt — corrupted hot-swap candidate is
    // rejected, the plan epoch never moves, and a clean retry lands. ---
    {
        let v2 = FusionModel::fit(
            ModelConfig {
                seed: 7,
                ..small_cfg(12)
            },
            &data,
            &train,
            &head_sizes,
        );
        let path = tmp.join("swap_candidate.ckpt");
        let _ = std::fs::remove_file(&path);
        let saved = persist::save_checkpoint_to_file(&v2, 12, 5, None, &path);
        let mut cluster = Cluster::new(&reference, data.graphs, data.vectors, cluster_cfg());
        let before = metrics::counter("fault.fired.swap").get();
        fault::set_spec("swap:corrupt:1.0:5").expect("valid spec");
        let corrupted = load_candidate(&path);
        fault::clear();
        let fired = metrics::counter("fault.fired.swap").get() - before;
        h.check(
            "swap:corrupt: corrupted candidate rejected as Load error",
            saved.is_ok() && fired >= 1 && matches!(corrupted, Err(SwapError::Load(_))),
            format!("saved={:?} fired={fired}", saved.err()),
        );
        h.check(
            "swap:corrupt: plan epoch unmoved after rejection",
            cluster.engine(0).plan_epoch() == 0,
            format!("epoch={}", cluster.engine(0).plan_epoch()),
        );
        let clean = load_candidate(&path);
        let swapped = clean.as_ref().map(|m| cluster.swap(0, m)).ok();
        h.check(
            "swap:corrupt: clean retry swaps and bumps the epoch",
            matches!(swapped, Some(Ok(()))) && cluster.engine(0).plan_epoch() == 1,
            format!(
                "load_ok={} epoch={}",
                clean.is_ok(),
                cluster.engine(0).plan_epoch()
            ),
        );
        let _ = std::fs::remove_file(&path);
    }

    // --- Every site must have fired at least once over the run. ---
    for site in ["grad", "pool", "ckpt", "sample", "shard", "route", "swap"] {
        let n = metrics::counter(match site {
            "grad" => "fault.fired.grad",
            "pool" => "fault.fired.pool",
            "ckpt" => "fault.fired.ckpt",
            "sample" => "fault.fired.sample",
            "shard" => "fault.fired.shard",
            "route" => "fault.fired.route",
            _ => "fault.fired.swap",
        })
        .get();
        h.check(
            &format!("coverage: site `{site}` fired"),
            n >= 1,
            format!("fault.fired.{site} = {n}"),
        );
    }

    println!();
    if h.failures.is_empty() {
        println!("validate_faults: all scenarios passed");
    } else {
        println!("validate_faults: {} scenario(s) FAILED", h.failures.len());
        for f in &h.failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}
