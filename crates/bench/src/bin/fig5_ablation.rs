//! Figure 5 — impact of static and dynamic features (thread prediction,
//! randomized 80/20 split).
//!
//! Red bars: static + dynamic features (MGA / IR2Vec / PROGRAML).
//! Green bars: static features only.
//! Blue bar: dynamic features (performance counters) only.
//! Yellow bars: ytopt / OpenTuner / BLISS.
//! Paper: 3.9× / 3.6× / 3.0× with both; 2.8× / 2.5× / 2.5× static-only;
//! 2.1× dynamic-only.

use mga_bench::{bar, geomean, heading, model_cfg, parse_opts, thread_dataset};
use mga_core::cv::{kfold_by_group, Fold};
use mga_core::model::Modality;
use mga_core::omp::{eval_model_fold, eval_tuner_fold, OmpTask};
use mga_tuners::{bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike};

fn main() {
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);

    // Randomized 80/20 split by loop (fold 0 of a 5-fold by group).
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed.wrapping_add(99));
    let split: &Fold = &folds[0];

    heading("Figure 5: speedups with static/dynamic feature ablations (80/20 split)");
    let mut results: Vec<(String, f64)> = Vec::new();

    let model_runs = [
        ("MGA (static+dynamic)", Modality::Multimodal, true),
        ("IR2Vec (static+dynamic)", Modality::VectorOnly, true),
        ("PROGRAML (static+dynamic)", Modality::GraphOnly, true),
        ("MGA (static only)", Modality::Multimodal, false),
        ("IR2Vec (static only)", Modality::VectorOnly, false),
        ("PROGRAML (static only)", Modality::GraphOnly, false),
        ("dynamic only (counters)", Modality::AuxOnly, true),
    ];
    for (name, modality, use_aux) in model_runs {
        let cfg = model_cfg(opts, modality, use_aux);
        let e = eval_model_fold(&ds, &task, cfg, split);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        results.push((name.to_string(), geomean(&ach)));
    }

    let tuner_makers: Vec<(&str, mga_tuners::TunerFactory)> = vec![
        ("ytopt", Box::new(|s| Box::new(YtoptLike::new(s)))),
        ("OpenTuner", Box::new(|s| Box::new(OpenTunerLike::new(s)))),
        ("BLISS", Box::new(|s| Box::new(BlissLike::new(s)))),
    ];
    for (name, mk) in &tuner_makers {
        let mut m = |seed: u64| mk(seed);
        let e = eval_tuner_fold(&ds, &mut m, 4, split);
        let ach: Vec<f64> = e.pairs.iter().map(|p| p.achieved).collect();
        results.push((name.to_string(), geomean(&ach)));
    }

    let max = results.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    for (name, v) in &results {
        println!("{}", bar(name, *v, max, 40));
    }

    let both = results[0].1;
    let static_only = results[3].1;
    let dyn_only = results[6].1;
    println!(
        "\nMGA: both {both:.2}x vs static-only {static_only:.2}x vs dynamic-only {dyn_only:.2}x \
         (paper: 3.9x / 2.8x / 2.1x — both features matter)"
    );
}
