//! Figure 6 — thread prediction on *unseen loops and input sizes*.
//!
//! 20 % of the 30 input sizes are held out entirely; loops are 5-folded.
//! Each validation fold therefore contains only unseen loops evaluated at
//! unseen input sizes. Paper: geomean speedups 2.35× vs. oracle 2.68×.

use mga_bench::{finish_run, geomean, heading, manifest, model_cfg, parse_opts, thread_dataset};
use mga_core::cv::{holdout_indices, kfold_by_group, run_folds, Fold};
use mga_core::metrics::summarize;
use mga_core::model::Modality;
use mga_core::omp::{eval_model_fold, OmpTask};

fn main() {
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let mut man = manifest("fig6_unseen_inputs", opts);
    man.set_int("loops", ds.specs.len() as i64)
        .set_int("inputs", ds.sizes.len() as i64)
        .set_int("space", ds.space.len() as i64);

    // Hold out 20% of the input-size indices.
    let held_inputs = holdout_indices(ds.sizes.len(), 0.2, opts.seed.wrapping_add(7));
    println!(
        "held-out input-size indices: {held_inputs:?} of {} sizes",
        ds.sizes.len()
    );

    // 5-fold by loop, with a different seed than Fig. 4 so validation
    // loops differ from the previous experiment (as the paper requires).
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed.wrapping_add(1234));

    heading("Figure 6: normalized speedups on unseen loops AND unseen inputs");
    let mut fold_speedups = Vec::new();
    let mut all_pairs = Vec::new();
    // Folds evaluate in parallel; seeds derive from the fold index, so
    // results match the sequential loop exactly.
    let fold_outs = run_folds(&folds, |fi, fold| {
        // Train: training loops at non-held-out inputs.
        // Validate: validation loops at held-out inputs only.
        let train: Vec<usize> = fold
            .train
            .iter()
            .copied()
            .filter(|&i| !held_inputs.contains(&ds.samples[i].input))
            .collect();
        let val: Vec<usize> = fold
            .val
            .iter()
            .copied()
            .filter(|&i| held_inputs.contains(&ds.samples[i].input))
            .collect();
        if val.is_empty() {
            return None;
        }
        let restricted = Fold { train, val };
        let mut cfg = model_cfg(opts, Modality::Multimodal, true);
        cfg.seed = opts.seed.wrapping_add(100 + fi as u64);
        Some(eval_model_fold(&ds, &task, cfg, &restricted).pairs)
    });
    for (fi, pairs) in fold_outs.into_iter().enumerate() {
        let Some(pairs) = pairs else { continue };
        let (a, o, n) = summarize(&pairs);
        println!(
            "fold {}: MGA speedup {a:.2}x, oracle {o:.2}x, normalized {n:.3}",
            fi + 1
        );
        fold_speedups.push(a);
        all_pairs.extend(pairs);
    }
    let ach: Vec<f64> = all_pairs.iter().map(|p| p.achieved).collect();
    let ora: Vec<f64> = all_pairs.iter().map(|p| p.oracle).collect();
    println!(
        "\ngeomean across folds: MGA {:.2}x vs oracle {:.2}x (paper: 2.35x vs 2.68x)",
        geomean(&ach),
        geomean(&ora)
    );
    println!(
        "per-fold MGA speedups: {:?} (paper: 1.68x 6.0x 1.04x 2.5x 2.73x)",
        fold_speedups
            .iter()
            .map(|s| format!("{s:.2}x"))
            .collect::<Vec<_>>()
    );
    man.set_int("held_out_inputs", held_inputs.len() as i64)
        .set_float("geomean_speedup_MGA", geomean(&ach))
        .set_float("geomean_speedup_oracle", geomean(&ora))
        .set_floats("fold_speedups", &fold_speedups);
    finish_run(&mut man);
}
