//! Extension experiment (paper §7: "expand our work to GPUs"):
//! work-group-size tuning for OpenCL kernels with the same multimodal
//! pipeline — predict the best work-group among {32,…,512} for unseen
//! kernels and compare with the device default and the oracle.

use mga_bench::{devmap_model_cfg, finish_run, geomean, heading, manifest, parse_opts, vec_dim};
use mga_core::cv::{kfold_by_group, run_folds};
use mga_core::model::{FusionModel, Modality};
use mga_core::wgsize::{WgDataset, WgTask, WG_CANDIDATES};
use mga_sim::gpu::GpuSpec;

fn main() {
    let opts = parse_opts();
    let mut specs = mga_kernels::catalog::opencl_catalog();
    if opts.quick {
        specs.truncate(64);
    }
    let mut man = manifest("wgsize_tuning", opts);
    man.set_int("kernels", specs.len() as i64);
    for gpu in [GpuSpec::tahiti_7970(), GpuSpec::gtx_970()] {
        let ds = WgDataset::build(specs.clone(), gpu, vec_dim(opts), opts.seed);
        let task = WgTask::new(&ds);
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), if opts.quick { 3 } else { 5 }, opts.seed);

        heading(&format!(
            "Work-group tuning on {} ({} kernels x 3 transfer classes)",
            ds.gpu.name,
            ds.specs.len()
        ));

        // Label distribution.
        let mut hist = [0usize; 5];
        for s in &ds.samples {
            hist[s.best] += 1;
        }
        println!("best work-group distribution:");
        for (c, &wg) in WG_CANDIDATES.iter().enumerate() {
            println!(
                "  wg={wg:<4} {:>5} samples ({:.1}%)",
                hist[c],
                hist[c] as f64 / ds.samples.len() as f64 * 100.0
            );
        }

        let mut hits = 0usize;
        let mut total = 0usize;
        let mut speedups = Vec::new();
        let mut oracle = Vec::new();
        // Folds train in parallel; per-fold seeds keep the results
        // identical to the sequential loop.
        let fold_outs = run_folds(&folds, |fi, fold| {
            let mut cfg = devmap_model_cfg(opts, Modality::Multimodal);
            cfg.seed = opts.seed.wrapping_add(fi as u64);
            let model = FusionModel::fit(cfg, &data, &fold.train, &[WG_CANDIDATES.len()]);
            let preds = model.predict(&data, &fold.val);
            let mut f_hits = 0usize;
            let mut f_speed = Vec::new();
            let mut f_oracle = Vec::new();
            for (j, &i) in fold.val.iter().enumerate() {
                let s = &ds.samples[i];
                if preds[0][j] == s.best {
                    f_hits += 1;
                }
                f_speed.push(ds.speedup_over_default(s, preds[0][j]));
                f_oracle.push(ds.speedup_over_default(s, s.best));
            }
            (f_hits, fold.val.len(), f_speed, f_oracle)
        });
        for (h, t, s, o) in fold_outs {
            hits += h;
            total += t;
            speedups.extend(s);
            oracle.extend(o);
        }
        println!(
            "\nunseen-kernel accuracy: {:.1}% ({hits}/{total})",
            hits as f64 / total as f64 * 100.0
        );
        println!(
            "geomean GPU-time speedup over the device-default work-group ({}): \
             predicted {:.3}x, oracle {:.3}x (normalized {:.3})",
            ds.gpu.preferred_wg,
            geomean(&speedups),
            geomean(&oracle),
            geomean(&speedups) / geomean(&oracle)
        );
        man.set_float(
            &format!("accuracy_{}", ds.gpu.name),
            hits as f64 / total as f64,
        )
        .set_float(
            &format!("geomean_speedup_{}", ds.gpu.name),
            geomean(&speedups),
        )
        .set_float(&format!("geomean_oracle_{}", ds.gpu.name), geomean(&oracle));
    }
    println!(
        "\n(the same graphs, vectors and fusion model tune a GPU runtime parameter —\n\
         the §7 direction — with no pipeline changes beyond a new label source.)"
    );
    finish_run(&mut man);
}
