//! Bench-regression gate (CI helper): compare a freshly measured
//! `BENCH_train.json` against the committed baseline and fail on
//! regression.
//!
//! Usage: `bench_check BASELINE CURRENT [--max-regression PCT] [--gate NAMES]`.
//!
//! Both files are `bench_report`/`serve_bench` output (one `{name,
//! iters, ns_per_iter}` record per line). By default only the training
//! steady-state hot paths are gated — `train_epoch` and
//! `inference_one_sample` — because the other entries (fold
//! preparation, whole-fold inference) are dominated by one-off work too
//! noisy for a shared CI runner; `--gate a,b,c` overrides the gated set
//! (e.g. `--gate serve_one_request,serve_throughput,serve_p99` against
//! `BENCH_serve.json` baselines). A gated entry fails if its current
//! ns/iter exceeds the
//! baseline by more than the allowed regression (default 15%).
//! Improvements always pass (and are reported, so the baseline can be
//! refreshed).

const GATED: [&str; 2] = ["train_epoch", "inference_one_sample"];

/// Extract `name → ns_per_iter` from bench_report JSONL.
fn read_report(path: &str) -> Result<Vec<(String, f64)>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = mga_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        let mga_obs::json::Json::Obj(obj) = doc else {
            return Err(format!("{path}:{}: line must be a JSON object", i + 1));
        };
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let (Some(mga_obs::json::Json::Str(name)), Some(mga_obs::json::Json::Num(ns))) =
            (get("name"), get("ns_per_iter"))
        else {
            return Err(format!("{path}:{}: record missing name/ns_per_iter", i + 1));
        };
        out.push((name.clone(), *ns));
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(out)
}

fn lookup(report: &[(String, f64)], name: &str) -> Option<f64> {
    report.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut max_regression = 0.15f64;
    let mut gated: Vec<String> = GATED.iter().map(|s| s.to_string()).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regression" {
            let pct = args
                .get(i + 1)
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--max-regression requires a numeric percentage");
                    std::process::exit(2);
                });
            max_regression = pct / 100.0;
            i += 2;
        } else if args[i] == "--gate" {
            let names = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--gate requires a comma-separated benchmark-name list");
                std::process::exit(2);
            });
            gated = names
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if gated.is_empty() {
                eprintln!("--gate requires at least one benchmark name");
                std::process::exit(2);
            }
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        eprintln!("usage: bench_check BASELINE CURRENT [--max-regression PCT] [--gate NAMES]");
        std::process::exit(2);
    };

    let baseline = read_report(baseline_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let current = read_report(current_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    let mut failed = false;
    for name in &gated {
        let (Some(base), Some(cur)) = (lookup(&baseline, name), lookup(&current, name)) else {
            eprintln!("bench_check: \"{name}\" missing from baseline or current report");
            failed = true;
            continue;
        };
        let ratio = cur / base;
        let delta_pct = (ratio - 1.0) * 100.0;
        let verdict = if ratio > 1.0 + max_regression {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{name:<24} baseline {base:>14.1} ns  current {cur:>14.1} ns  {delta_pct:>+7.1}%  {verdict}"
        );
    }
    if failed {
        eprintln!(
            "bench_check: regression beyond {:.0}% on a gated benchmark",
            max_regression * 100.0
        );
        std::process::exit(1);
    }
}
