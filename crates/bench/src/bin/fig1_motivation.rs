//! Figure 1 — motivation.
//!
//! (a) kmeans runtime at 1–8 threads on the 8-core Comet Lake system;
//! (b) distribution of best thread counts across all 45 OpenMP loops and
//!     30 input sizes (the paper reports ≈64 % of combinations needing a
//!     non-default thread count).

use mga_bench::{bar, exit_on_error, heading, parse_opts, thread_dataset, BenchError};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::{simulate, OmpConfig, Schedule};

fn main() {
    exit_on_error("fig1_motivation", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let cpu = CpuSpec::comet_lake();

    heading("Figure 1a: kmeans execution time vs. thread count (Comet Lake)");
    let kmeans = mga_kernels::catalog::openmp_catalog()
        .into_iter()
        .find(|s| s.app == "kmeans")
        .unwrap_or_else(|| {
            eprintln!("fig1_motivation: kmeans missing from kernel catalog");
            std::process::exit(1);
        });
    let ws = 128.0 * 1024.0 * 1024.0;
    let mut times = Vec::new();
    for t in 1..=8u32 {
        let cfg = OmpConfig {
            threads: t,
            schedule: Schedule::Static,
            chunk: 0,
        };
        times.push(simulate(&kmeans, ws, &cfg, &cpu).runtime);
    }
    let max = times.iter().cloned().fold(f64::MIN, f64::max);
    for (i, &t) in times.iter().enumerate() {
        println!(
            "{}",
            bar(&format!("{} threads", i + 1), t * 1e3, max * 1e3, 40)
        );
    }
    let default_t = times[7];
    let best = times
        .iter()
        .cloned()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .ok_or_else(|| BenchError::missing("no timed thread counts"))?;
    let better: Vec<usize> = times
        .iter()
        .enumerate()
        .filter(|(_, &t)| t < default_t)
        .map(|(i, _)| i + 1)
        .collect();
    println!(
        "thread counts beating the 8-thread default: {better:?} \
         (best: {} threads, {:.1}% faster)",
        best.0 + 1,
        (1.0 - best.1 / default_t) * 100.0
    );

    heading("Figure 1b: distribution of best thread counts (45 loops x 30 inputs)");
    let ds = thread_dataset(opts);
    let mut hist = vec![0usize; ds.space.len()];
    for s in &ds.samples {
        hist[s.best] += 1;
    }
    let total: usize = hist.iter().sum();
    let hmax = *hist
        .iter()
        .max()
        .ok_or_else(|| BenchError::missing("empty best-thread histogram"))? as f64;
    for (i, &h) in hist.iter().enumerate() {
        println!(
            "{}",
            bar(
                &format!("best = {} threads", ds.space[i].threads),
                h as f64,
                hmax,
                40
            )
        );
    }
    let nondefault = total - hist[ds.space.len() - 1];
    println!(
        "combinations needing tuning (best != {} threads): {}/{} = {:.1}%  (paper: ~64%)",
        ds.cpu.hw_threads(),
        nondefault,
        total,
        nondefault as f64 / total as f64 * 100.0
    );
    Ok(())
}
