//! Figure 4 — OpenMP thread prediction, 5-fold CV by loop.
//!
//! Per validation fold: normalized speedups (achieved / oracle) of the
//! MGA tuner, the IR2Vec and PROGRAML unimodal tuners, and the ytopt /
//! OpenTuner / BLISS baselines; plus the geometric-mean speedups over all
//! folds and the MGA best-thread accuracy (§4.1.3 reports 86 % geomean
//! accuracy and geomean speedups of 3.4× vs. oracle 3.62×).

use mga_bench::{
    csv_write, exit_on_error, finish_run, geomean, heading, manifest, model_cfg, parse_opts,
    thread_dataset, BenchError,
};
use mga_core::cv::{kfold_by_group, run_folds, run_folds_timed};
use mga_core::metrics::{summarize, SpeedupPair};
use mga_core::model::Modality;
use mga_core::omp::{eval_model_fold_ckpt, eval_tuner_fold, OmpTask};
use mga_tuners::{bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike};

fn main() {
    exit_on_error("fig4_thread_prediction", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    // `--seeds N` averages model geomeans over N training seeds (fold
    // assignment stays fixed) to damp single-seed ordering noise.
    let n_seeds: u64 = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--seeds")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(1)
    };
    // With MGA_CKPT_DIR set, every fold's model training checkpoints
    // into (and resumes from) that directory — a killed run restarted
    // with the same arguments reproduces the uninterrupted output.
    let ckpt_dir = std::env::var_os("MGA_CKPT_DIR").map(std::path::PathBuf::from);
    if let Some(dir) = &ckpt_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fig4_thread_prediction: cannot create MGA_CKPT_DIR {dir:?}: {e}");
            std::process::exit(1);
        }
    }
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let mut man = manifest("fig4_thread_prediction", opts);
    man.set_int("loops", ds.specs.len() as i64)
        .set_int("inputs", ds.sizes.len() as i64)
        .set_int("space", ds.space.len() as i64)
        .set_int("folds", folds.len() as i64)
        .set_int("seed_runs", n_seeds as i64);
    heading("Figure 4: thread prediction, normalized speedups per fold");
    println!(
        "dataset: {} loops x {} inputs, space = {} thread counts on {}",
        ds.specs.len(),
        ds.sizes.len(),
        ds.space.len(),
        ds.cpu.name
    );

    let methods: Vec<(&str, Modality)> = vec![
        ("MGA", Modality::Multimodal),
        ("IR2Vec", Modality::VectorOnly),
        ("PROGRAML", Modality::GraphOnly),
    ];
    // Budgets mirror the paper's time limits: OpenTuner's cheap search
    // techniques afford more evaluations than the Bayesian tuners.
    let budgets = [("ytopt", 4usize), ("OpenTuner", 10), ("BLISS", 6)];

    let mut all: Vec<(String, Vec<Vec<SpeedupPair>>, Vec<f64>)> = Vec::new();

    for (name, modality) in &methods {
        // Per fold, collect pairs across all training seeds (averaging in
        // speedup space via the pooled geomean downstream).
        let mut per_fold: Vec<Vec<SpeedupPair>> = vec![Vec::new(); folds.len()];
        let mut accs = Vec::new();
        for srun in 0..n_seeds {
            // Folds train concurrently; each fold's model seed depends
            // only on (fold index, seed run), so the results match the
            // sequential loop exactly.
            let evals = run_folds_timed(&folds, |fi, fold| {
                let mut cfg = model_cfg(opts, *modality, true);
                cfg.seed = opts.seed.wrapping_add(fi as u64).wrapping_add(srun * 1000);
                let path = ckpt_dir
                    .as_ref()
                    .map(|d| d.join(format!("fig4_{name}_s{srun}_f{fi}.ckpt")));
                eval_model_fold_ckpt(&ds, &task, cfg, fold, path.as_deref())
            });
            if *name == "MGA" && srun == 0 {
                let secs: Vec<f64> = evals.iter().map(|(_, s)| *s).collect();
                man.set_floats("fold_seconds", &secs);
            }
            for (fi, (e, _)) in evals.into_iter().enumerate() {
                accs.push(e.accuracy);
                per_fold[fi].extend(e.pairs);
            }
        }
        all.push((name.to_string(), per_fold, accs));
    }

    let tuner_makers: Vec<(&str, mga_tuners::TunerFactory)> = vec![
        ("ytopt", Box::new(|s| Box::new(YtoptLike::new(s)))),
        ("OpenTuner", Box::new(|s| Box::new(OpenTunerLike::new(s)))),
        ("BLISS", Box::new(|s| Box::new(BlissLike::new(s)))),
    ];
    for (name, mk) in &tuner_makers {
        let budget = budgets
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| BenchError::missing(format!("no eval budget for tuner {name}")))?
            .1;
        let per_fold: Vec<Vec<SpeedupPair>> = run_folds(&folds, |_, fold| {
            let mut m = |seed: u64| mk(seed);
            eval_tuner_fold(&ds, &mut m, budget, fold).pairs
        });
        all.push((name.to_string(), per_fold, vec![]));
    }

    // Per-fold normalized speedups table.
    println!(
        "\n{:<12} {}",
        "method",
        (1..=5).map(|f| format!("fold{f:<7}")).collect::<String>()
    );
    for (name, per_fold, _) in &all {
        let mut row = format!("{name:<12} ");
        for pairs in per_fold {
            let (a, o, _) = summarize(pairs);
            row.push_str(&format!("{:<8.3}", a / o));
        }
        println!("{row}");
    }

    // MGA per-fold raw speedups (the numbers under Fig. 4's caption).
    let mga = &all[0];
    let mga_fold_speedups: Vec<f64> = mga.1.iter().map(|pairs| summarize(pairs).0).collect();
    println!(
        "\nMGA speedups per fold over default: {:?} (paper: 2.71x 4.68x 8.09x 3.51x 1.31x)",
        mga_fold_speedups
            .iter()
            .map(|s| format!("{s:.2}x"))
            .collect::<Vec<_>>()
    );

    // Overall geomeans.
    heading("geometric-mean speedups across all folds (paper: ytopt 1.46x, OpenTuner 2.33x, BLISS 1.67x, PROGRAML 2.79x, IR2Vec 3.17x, MGA 3.4x; oracle 3.62x)");
    let oracle_all: Vec<f64> = all[0].1.iter().flatten().map(|p| p.oracle).collect();
    for (name, per_fold, accs) in &all {
        let ach: Vec<f64> = per_fold.iter().flatten().map(|p| p.achieved).collect();
        let g = geomean(&ach);
        man.set_float(&format!("geomean_speedup_{name}"), g);
        if accs.is_empty() {
            println!("{name:<12} {g:.2}x");
        } else {
            let acc = geomean(accs);
            man.set_float(&format!("accuracy_{name}"), acc);
            println!(
                "{name:<12} {g:.2}x   (best-thread accuracy {:.0}%)",
                acc * 100.0
            );
        }
    }
    man.set_float("geomean_speedup_oracle", geomean(&oracle_all));
    println!("{:<12} {:.2}x", "oracle", geomean(&oracle_all));

    let mut rows = Vec::new();
    for (name, per_fold, _) in &all {
        for (fi, pairs) in per_fold.iter().enumerate() {
            let (a, o, _) = summarize(pairs);
            rows.push(format!("{name},{},{:.4},{:.4},{:.4}", fi + 1, a, o, a / o));
        }
    }
    csv_write(
        "fig4_thread_prediction",
        "method,fold,speedup,oracle,normalized",
        &rows,
    );
    finish_run(&mut man);
    Ok(())
}
