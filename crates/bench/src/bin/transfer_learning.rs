//! Extension experiment (paper §7: "incorporate transfer … learning"):
//! sample efficiency of fine-tuning a Comet-Lake-trained model on a new
//! µ-architecture (Sandy Bridge) versus training from scratch there.
//!
//! Three regimes per target budget of K loops:
//!   * zero-shot — the source model with §4.1.5 counter rescaling;
//!   * fine-tuned — source model + a few epochs on the K target loops;
//!   * scratch — a fresh model trained only on the K target loops.

use mga_bench::{heading, model_cfg, parse_opts, vec_dim};
use mga_core::cv::kfold_by_group;
use mga_core::metrics::SpeedupPair;
use mga_core::model::{FusionModel, Modality, TrainData};
use mga_core::omp::{portability_features, OmpTask};
use mga_core::OmpDataset;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_kernels::inputs::openmp_input_sizes;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

fn main() {
    let opts = parse_opts();
    let source_cpu = CpuSpec::comet_lake();
    let target_cpu = CpuSpec::sandy_bridge_8c();

    let mut specs = openmp_thread_dataset();
    let mut sizes = openmp_input_sizes();
    if opts.quick {
        specs = specs.into_iter().step_by(3).collect();
        sizes = sizes.into_iter().step_by(5).collect();
    } else {
        sizes = sizes.into_iter().step_by(2).collect();
    }

    heading("Transfer learning across µ-architectures (§7 future work)");
    println!(
        "source: {} | target: {} | {} loops x {} inputs\n",
        source_cpu.name,
        target_cpu.name,
        specs.len(),
        sizes.len()
    );

    // Datasets on both machines (same loops, same sizes, same space shape).
    let src_ds = OmpDataset::build(
        specs.clone(),
        sizes.clone(),
        thread_space(&source_cpu),
        source_cpu.clone(),
        vec_dim(opts),
        opts.seed,
    );
    let tgt_ds = OmpDataset::build(
        specs,
        sizes,
        thread_space(&target_cpu),
        target_cpu.clone(),
        vec_dim(opts),
        opts.seed,
    );
    let src_task = OmpTask::new(&src_ds);
    let tgt_task = OmpTask::new(&tgt_ds);

    // Validation loops: one fold of the target dataset, never used for
    // any training below.
    let folds = kfold_by_group(&tgt_ds.groups(), 4, opts.seed.wrapping_add(3));
    let val = folds[0].val.clone();
    let train_pool = folds[0].train.clone();

    // Source model trained on ALL source-machine samples of the training
    // loops (the deployment scenario: the old machine's data is free).
    let src_data = src_task.train_data(&src_ds);
    let src_train: Vec<usize> = train_pool.clone();
    let cfg = model_cfg(opts, Modality::Multimodal, true);
    println!(
        "training the source model on {} Comet Lake samples ...",
        src_train.len()
    );
    let source_model = FusionModel::fit(
        cfg.clone(),
        &src_data,
        &src_train,
        &src_task.codec.head_sizes(),
    );

    // Target-side feature view (rescaled counters per §4.1.5).
    let rescaled_aux: Vec<Vec<f32>> = tgt_ds
        .samples
        .iter()
        .map(|s| portability_features(&s.counters, &source_cpu, &target_cpu))
        .collect();
    let rescaled_data = TrainData {
        graphs: &tgt_ds.graphs,
        vectors: &tgt_ds.vectors,
        sample_kernel: &tgt_task.sample_kernel,
        aux: &rescaled_aux,
        labels: &tgt_task.labels,
    };
    let eval = |model: &FusionModel, data: &TrainData<'_>| -> (f64, f64) {
        let preds = model.predict(data, &val);
        let mut pairs = Vec::new();
        for (j, &i) in val.iter().enumerate() {
            let heads: Vec<usize> = preds.iter().map(|p| p[j]).collect();
            let cfg_idx = tgt_task.codec.decode(&heads);
            let s = &tgt_ds.samples[i];
            pairs.push(SpeedupPair {
                achieved: tgt_ds.achieved_speedup(s, cfg_idx),
                oracle: tgt_ds.oracle_speedup(s),
            });
        }
        let (a, o, _) = mga_core::metrics::summarize(&pairs);
        (a, o)
    };

    let (zero_a, oracle) = eval(&source_model, &rescaled_data);
    println!("\n{:<26} {:>12} {:>12}", "regime", "speedup", "normalized");
    println!(
        "{:<26} {:>11.3}x {:>12.3}",
        "zero-shot (rescaled)",
        zero_a,
        zero_a / oracle
    );

    // Budgets: K target loops' samples for fine-tuning / scratch.
    let loops_in_pool: Vec<usize> = {
        let mut l: Vec<usize> = train_pool
            .iter()
            .map(|&i| tgt_ds.samples[i].kernel)
            .collect();
        l.sort_unstable();
        l.dedup();
        l
    };
    for &k_loops in &[2usize, 5, 10] {
        if k_loops > loops_in_pool.len() {
            continue;
        }
        let chosen: Vec<usize> = loops_in_pool.iter().copied().take(k_loops).collect();
        let subset: Vec<usize> = train_pool
            .iter()
            .copied()
            .filter(|&i| chosen.contains(&tgt_ds.samples[i].kernel))
            .collect();

        let mut warm = match mga_core::persist::load_model(&mga_core::persist::save_model(
            &source_model,
            tgt_ds.vectors[0].len(),
            5,
        )) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("transfer_learning: model clone via checkpoint failed: {e}");
                std::process::exit(1);
            }
        };
        warm.fine_tune(&rescaled_data, &subset, cfg.epochs / 3, cfg.lr * 0.5);
        let (ft_a, _) = eval(&warm, &rescaled_data);

        let scratch = FusionModel::fit(
            cfg.clone(),
            &rescaled_data,
            &subset,
            &tgt_task.codec.head_sizes(),
        );
        let (sc_a, _) = eval(&scratch, &rescaled_data);

        println!(
            "{:<26} {:>11.3}x {:>12.3}   (scratch on same {} loops: {:.3}x / {:.3})",
            format!("fine-tuned ({k_loops} loops)"),
            ft_a,
            ft_a / oracle,
            k_loops,
            sc_a,
            sc_a / oracle
        );
    }
    println!("{:<26} {:>11.3}x {:>12.3}", "oracle", oracle, 1.0);
    println!(
        "\nwarm-started fine-tuning keeps the source knowledge (near zero-shot or\n\
         better) while scratch models need far more target data to catch up."
    );
}
