//! Serving performance snapshot: times the `mga-serve` engine on the
//! Figure-4 configuration and writes `BENCH_serve.json` (one `{name,
//! iters, ns_per_iter}` record per line, same schema as
//! `BENCH_train.json`) so `bench_check` can gate serving regressions.
//!
//! Records:
//! * `serve_one_request` — the synchronous single-request fast path
//!   (cached static embedding + scaler + trunk/heads), the successor to
//!   `inference_one_sample` for deployment latency;
//! * `serve_throughput` — ns per request through the batched engine on
//!   a steady request stream (the record carries `requests_per_sec` too);
//! * `serve_p50` / `serve_p95` / `serve_p99` — per-request wall latency
//!   percentiles over that stream, measured by this driver (the engine
//!   never reads a clock on a batching-decision path; batching stays
//!   deterministic). Each is the median over several sessions, since
//!   any single session's tail is dominated by OS jitter;
//! * `serve_p50_engine` / `serve_p95_engine` / `serve_p99_engine` — the
//!   same percentiles as measured *inside* the engine by its
//!   `serve.lat.e2e` log₂ histogram. These are bucket-midpoint
//!   estimates (values move in ~1.5–2× steps), so CI gates them with a
//!   far looser threshold than the driver-side records; the bench
//!   asserts driver and engine p99 agree within 8× (see `DESIGN.md`
//!   § Serving observability for the bound's derivation);
//! * `serve_one_request_bare` — the fast path with `telemetry: false`,
//!   so the recorder + histogram overhead stays visible as the gap to
//!   `serve_one_request`.
//!
//! With `MGA_FLIGHT=<path>` set, the engine's flight history (request +
//! drift JSONL) is dumped at exit; `MGA_PROM_OUT=<path>` snapshots the
//! metrics registry in Prometheus text format.
//!
//! Usage: `cargo run --release --bin serve_bench [--quick] [--seed N]`.

use mga_bench::{
    exit_on_error, finish_run, manifest, model_cfg, parse_opts, thread_dataset, BenchError,
};
use mga_core::cv::kfold_by_group;
use mga_core::model::{FusionModel, Modality, TrainData};
use mga_core::omp::OmpTask;
use mga_serve::{Cluster, ClusterConfig, Engine, InferencePlan, Precision, Request, ServeConfig};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Median ns per call over timed batches (~0.5 s measurement per entry);
/// same discipline as `bench_report`.
fn time(name: &str, records: &mut Vec<String>, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let budget = Duration::from_millis(500);
    let mut samples = Vec::new();
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget || iters == 0 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
        iters += 1;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let ns = samples[samples.len() / 2];
    println!("{name:<28} {ns:>16.1} ns/iter  ({iters} iters)");
    records.push(format!(
        "{{\"name\": \"{name}\", \"iters\": {iters}, \"ns_per_iter\": {ns:.1}}}"
    ));
    ns
}

/// Drive `stream` (sample indices) through the engine in submit bursts
/// of 4 per tick. When `latencies` is given, records each request's
/// submit→drain wall time in ns (driver-side clock only).
fn session(
    engine: &mut Engine<'_>,
    data: &TrainData<'_>,
    stream: &[usize],
    mut latencies: Option<&mut Vec<f64>>,
) {
    let mut submit_at: Vec<Instant> = vec![Instant::now(); stream.len()];
    let mut out = Vec::with_capacity(stream.len());
    let complete = |out: &mut Vec<mga_serve::Response>,
                    latencies: &mut Option<&mut Vec<f64>>,
                    submit_at: &[Instant],
                    engine: &mut Engine<'_>| {
        for r in out.drain(..) {
            if let Some(lat) = latencies.as_deref_mut() {
                lat.push(submit_at[r.id as usize].elapsed().as_nanos() as f64);
            }
            engine.recycle(r);
        }
    };
    for (burst, chunk) in stream.chunks(4).enumerate() {
        for (j, &i) in chunk.iter().enumerate() {
            let id = (burst * 4 + j) as u64;
            submit_at[id as usize] = Instant::now();
            engine
                .submit(Request {
                    id,
                    kernel: data.sample_kernel[i],
                    aux: data.aux[i].clone(),
                })
                .expect("admit");
        }
        engine.tick();
        engine.drain(&mut out);
        complete(&mut out, &mut latencies, &submit_at, engine);
    }
    while engine.queue_depth() > 0 {
        engine.tick();
        engine.drain(&mut out);
        complete(&mut out, &mut latencies, &submit_at, engine);
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    exit_on_error("serve_bench", run());
}

fn run() -> Result<(), BenchError> {
    let opts = parse_opts();
    let ds = thread_dataset(opts);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 5, opts.seed);
    let fold = &folds[0];
    let cfg = model_cfg(opts, Modality::Multimodal, true);

    println!(
        "serve_bench: Fig. 4 config, {} train / {} val samples, {} threads",
        fold.train.len(),
        fold.val.len(),
        mga_nn::pool::num_threads()
    );

    let mut man = manifest("serve_bench", opts);
    man.set_int("train_samples", fold.train.len() as i64)
        .set_int("val_samples", fold.val.len() as i64);

    let model = FusionModel::fit(cfg, &data, &fold.train, &task.codec.head_sizes());

    // Plan-compile cost is part of the deployment story: record it in
    // the manifest so regressions in compile time are visible, not just
    // per-request cost. Same for the quantized variants, whose compile
    // includes scale calibration.
    let t0 = Instant::now();
    let f32_plan = InferencePlan::compile_with(&model, Precision::F32);
    let compile_ns = t0.elapsed().as_nanos() as f64;
    man.set_float("plan_compile_ns", compile_ns)
        .set_int("plan_weight_bytes_f32", f32_plan.weight_bytes() as i64);
    drop(f32_plan);

    let serve_cfg = ServeConfig {
        max_batch: 8,
        max_wait_ticks: 2,
        cache_capacity: 64,
        precision: Precision::F32,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(&model, data.graphs, data.vectors, serve_cfg.clone());
    let prep = model.prepare(&data, &fold.train);
    let warmed = engine.warm(&prep);
    man.set_int("warmed_kernels", warmed as i64);

    // Parity gate before timing anything: the engine must reproduce the
    // training-side predict exactly on the validation fold.
    let preds = model.predict(&data, &fold.val);
    let nh = engine.plan().num_heads();
    let mut cls = vec![0usize; nh];
    for (j, &i) in fold.val.iter().enumerate() {
        engine
            .serve_one(data.sample_kernel[i], &data.aux[i], &mut cls)
            .expect("serve");
        for (h, pred) in preds.iter().enumerate() {
            if cls[h] != pred[j] {
                return Err(BenchError::Invariant(format!(
                    "serving diverged from predict on sample {i} head {h}: {} vs {}",
                    cls[h], pred[j]
                )));
            }
        }
    }
    println!(
        "parity: engine == predict on all {} val samples\n",
        fold.val.len()
    );

    let mut records = Vec::new();

    // Single-request fast path (the inference_one_sample successor).
    let val0 = fold.val[0];
    let (k0, aux0) = (data.sample_kernel[val0], &data.aux[val0]);
    let one_ns = time("serve_one_request", &mut records, || {
        engine.serve_one(k0, aux0, &mut cls).expect("serve");
        std::hint::black_box(&cls);
    });

    // The same path with telemetry off, to keep the recorder +
    // histogram cost honest (the `serve_one_request` CI gate holds the
    // telemetry-on number; this record makes the overhead inspectable).
    {
        let mut bare = Engine::new(
            &model,
            data.graphs,
            data.vectors,
            ServeConfig {
                telemetry: false,
                ..serve_cfg.clone()
            },
        );
        bare.warm(&prep);
        let bare_ns = time("serve_one_request_bare", &mut records, || {
            bare.serve_one(k0, aux0, &mut cls).expect("serve");
            std::hint::black_box(&cls);
        });
        let overhead_pct = (one_ns - bare_ns) / bare_ns * 100.0;
        println!("    (telemetry overhead: {overhead_pct:+.1}%)");
        man.set_float("serve_one_request_bare_ns", bare_ns)
            .set_float("telemetry_overhead_pct", overhead_pct);
    }

    // Quantized plan variants, each behind the accuracy-parity gate: a
    // bf16/int8 engine is only benchmarked (and its record only written)
    // if it reproduces the f32 argmax on *every* CV validation sample.
    // Calibration cost (scale fitting + weight packing, inside
    // `compile_with`) goes into the manifest either way.
    for (precision, record_name) in [
        (Precision::Bf16, "serve_one_request_bf16"),
        (Precision::Int8, "serve_one_request_int8"),
    ] {
        let t0 = Instant::now();
        let qplan = InferencePlan::compile_with(&model, precision);
        let calib_ns = t0.elapsed().as_nanos() as f64;
        let (calib_key, parity_key, bytes_key) = match precision {
            Precision::Bf16 => (
                "bf16_calibration_ns",
                "bf16_argmax_parity",
                "plan_weight_bytes_bf16",
            ),
            _ => (
                "int8_calibration_ns",
                "int8_argmax_parity",
                "plan_weight_bytes_int8",
            ),
        };
        man.set_float(calib_key, calib_ns)
            .set_int(bytes_key, qplan.weight_bytes() as i64);
        drop(qplan);

        let mut qengine = Engine::new(
            &model,
            data.graphs,
            data.vectors,
            ServeConfig {
                precision,
                ..serve_cfg.clone()
            },
        );
        qengine.warm(&prep);
        let mut qcls = vec![0usize; nh];
        let mut disagreements = 0usize;
        for (j, &i) in fold.val.iter().enumerate() {
            qengine
                .serve_one(data.sample_kernel[i], &data.aux[i], &mut qcls)
                .expect("serve");
            for (h, pred) in preds.iter().enumerate() {
                if qcls[h] != pred[j] {
                    disagreements += 1;
                }
            }
        }
        man.set_int(parity_key, (disagreements == 0) as i64);
        if disagreements > 0 {
            println!(
                "{record_name:<28}          SKIPPED  ({} parity gate: {disagreements} argmax disagreements on {} val samples)",
                precision.tag(),
                fold.val.len()
            );
            continue;
        }
        time(record_name, &mut records, || {
            qengine.serve_one(k0, aux0, &mut qcls).expect("serve");
            std::hint::black_box(&qcls);
        });
    }

    // Steady request stream for throughput and latency percentiles:
    // validation samples cycled to a fixed request count.
    let n_requests = if opts.quick { 512 } else { 2048 };
    let stream: Vec<usize> = (0..n_requests)
        .map(|r| fold.val[r % fold.val.len()])
        .collect();

    session(&mut engine, &data, &stream, None); // warm-up pass
    let budget = Duration::from_millis(500);
    let mut per_req = Vec::new();
    let start = Instant::now();
    let mut sessions = 0u64;
    while start.elapsed() < budget || sessions == 0 {
        let t0 = Instant::now();
        session(&mut engine, &data, &stream, None);
        per_req.push(t0.elapsed().as_nanos() as f64 / n_requests as f64);
        sessions += 1;
    }
    per_req.sort_by(|a, b| a.total_cmp(b));
    let thr_ns = per_req[per_req.len() / 2];
    let rps = 1e9 / thr_ns;
    println!(
        "{:<28} {thr_ns:>16.1} ns/iter  ({sessions} sessions, {rps:.0} req/s)",
        "serve_throughput"
    );
    records.push(format!(
        "{{\"name\": \"serve_throughput\", \"iters\": {sessions}, \"ns_per_iter\": {thr_ns:.1}, \"requests_per_sec\": {rps:.1}}}"
    ));

    // Tail percentiles are dominated by OS jitter in any single session,
    // so each percentile is the *median over several sessions* — stable
    // enough for a one-sided 15% CI gate.
    const LAT_SESSIONS: usize = 9;
    // Snapshot the engine-side e2e histogram here so the diff below
    // isolates exactly the latency sessions (warm-up, parity and
    // throughput traffic is excluded).
    let e2e_before = mga_obs::metrics::log_histogram("serve.lat.e2e").snapshot();
    let mut per_session: Vec<Vec<f64>> = Vec::with_capacity(LAT_SESSIONS);
    let mut latencies = Vec::with_capacity(n_requests);
    for _ in 0..LAT_SESSIONS {
        latencies.clear();
        session(&mut engine, &data, &stream, Some(&mut latencies));
        latencies.sort_by(|a, b| a.total_cmp(b));
        per_session.push(latencies.clone());
    }
    let e2e_engine = mga_obs::metrics::log_histogram("serve.lat.e2e")
        .snapshot()
        .diff(&e2e_before);
    let median_pctl = |p: f64| -> f64 {
        let mut vals: Vec<f64> = per_session.iter().map(|s| percentile(s, p)).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals[vals.len() / 2]
    };
    let (p50, p99) = (median_pctl(50.0), median_pctl(99.0));
    for (name, ns) in [
        ("serve_p50", p50),
        ("serve_p95", median_pctl(95.0)),
        ("serve_p99", p99),
    ] {
        println!(
            "{name:<28} {ns:>16.1} ns/iter  ({n_requests} requests x {LAT_SESSIONS} sessions)"
        );
        records.push(format!(
            "{{\"name\": \"{name}\", \"iters\": {n_requests}, \"ns_per_iter\": {ns:.1}}}"
        ));
    }

    // Engine-side percentiles from the in-engine e2e histogram over the
    // same traffic. Every latency-session request must have been
    // observed, and the engine's p99 must agree with the driver's
    // within 8× — log-bucket midpoints contribute up to 2×, and the
    // driver additionally measures submit→drain (engine measures
    // submit→dispatch-complete), so modest disagreement is expected but
    // an order of magnitude means a broken clock or histogram.
    let expected = (LAT_SESSIONS * n_requests) as u64;
    if e2e_engine.count != expected {
        return Err(BenchError::Invariant(format!(
            "engine e2e histogram saw {} requests, expected {expected}",
            e2e_engine.count
        )));
    }
    let (p50_eng, p95_eng, p99_eng) = (
        e2e_engine.percentile(50.0) as f64,
        e2e_engine.percentile(95.0) as f64,
        e2e_engine.percentile(99.0) as f64,
    );
    for (name, ns) in [
        ("serve_p50_engine", p50_eng),
        ("serve_p95_engine", p95_eng),
        ("serve_p99_engine", p99_eng),
    ] {
        println!("{name:<28} {ns:>16.1} ns/iter  (engine-side histogram)");
        records.push(format!(
            "{{\"name\": \"{name}\", \"iters\": {expected}, \"ns_per_iter\": {ns:.1}}}"
        ));
    }
    let ratio = p99.max(p99_eng) / p99.min(p99_eng).max(1.0);
    println!("p99 agreement: driver {p99:.0} ns vs engine {p99_eng:.0} ns ({ratio:.2}x)");
    if ratio > 8.0 {
        return Err(BenchError::Invariant(format!(
            "driver p99 {p99:.0} ns and engine p99 {p99_eng:.0} ns disagree by {ratio:.1}x (bound 8x)"
        )));
    }

    let (hits, misses, evictions) = engine.cache().stats();
    println!(
        "\ncache: {hits} hits / {misses} misses / {evictions} evictions; \
         steady-state arena alloc {} bytes, {} buffer reuses",
        engine.steady_alloc_bytes(),
        engine.arena_reuse()
    );
    engine.publish_metrics();
    engine.dump_flight_if_enabled();
    man.set_float("serve_one_request_ns", one_ns)
        .set_float("serve_throughput_ns", thr_ns)
        .set_float("requests_per_sec", rps)
        .set_float("serve_p50_ns", p50)
        .set_float("serve_p99_ns", p99)
        .set_float("serve_p50_engine_ns", p50_eng)
        .set_float("serve_p99_engine_ns", p99_eng)
        .set_int("cache_hits", hits as i64)
        .set_int("cache_misses", misses as i64)
        .set_int("flight_recorded", engine.flight().total() as i64)
        .set_int("drift_events", engine.drift_events().len() as i64)
        .set_int("steady_alloc_bytes", engine.steady_alloc_bytes() as i64);

    // ── Cluster scaling curve: the same request stream through 1/2/4/8
    // shard clusters on the machine-resolved data plane (persistent
    // shard workers when the pool has threads to pin them on, inline on
    // a single core). The driver uses the zero-allocation `submit_ref`
    // intake and never waits on a shard inside a tick, so the curve
    // measures the data plane, not the driver; the `cluster_scaling_8x`
    // record is the 8-shard / 1-shard ns ratio ×1000 (lower is better),
    // which CI gates so a change that serializes shard dispatch shows up
    // as a regression.
    let mut shard_ns = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let ccfg = ClusterConfig {
            shards,
            queue_capacity: 1 << 14,
            serve: serve_cfg.clone(),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(&model, data.graphs, data.vectors, ccfg);
        for s in 0..shards {
            cluster.engine_mut(s).warm(&prep);
        }
        if shards == 8 {
            man.set_int(
                "cluster_data_plane_workers",
                (cluster.data_plane() == mga_serve::DataPlane::Workers) as i64,
            );
        }
        // Bursts scale with the shard count so every shard sees full
        // micro-batches; total request count is fixed.
        let burst = 8 * shards;
        let mut out = Vec::with_capacity(2 * burst);
        let mut run_once = |cluster: &mut Cluster<'_>| {
            for (b, chunk) in stream.chunks(burst).enumerate() {
                for (j, &i) in chunk.iter().enumerate() {
                    // Typed sheds are a valid outcome when the user arms
                    // an MGA_FAULT shard site; fault-free gate runs
                    // admit everything.
                    let _ = cluster.submit_ref(
                        (b * burst + j) as u64,
                        data.sample_kernel[i],
                        &data.aux[i],
                        None,
                    );
                }
                cluster.tick();
                cluster.drain(&mut out);
                out.clear();
            }
            cluster.flush();
            cluster.drain(&mut out);
            out.clear();
        };
        run_once(&mut cluster); // warm-up
        let budget = Duration::from_millis(300);
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < budget || samples.is_empty() {
            let t0 = Instant::now();
            run_once(&mut cluster);
            samples.push(t0.elapsed().as_nanos() as f64 / n_requests as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let ns = samples[samples.len() / 2];
        let name = format!("cluster_throughput_shards{shards}");
        println!(
            "{name:<28} {ns:>16.1} ns/iter  ({} sessions, {:.0} req/s)",
            samples.len(),
            1e9 / ns
        );
        records.push(format!(
            "{{\"name\": \"{name}\", \"iters\": {}, \"ns_per_iter\": {ns:.1}}}",
            samples.len()
        ));
        man.set_float(&format!("cluster_throughput_shards{shards}_ns"), ns);
        shard_ns.push(ns);
        if shards == 8 {
            cluster.publish_metrics();
        }
    }
    let scaling_milli = 1000.0 * shard_ns[3] / shard_ns[0];
    println!(
        "{:<28} {scaling_milli:>16.1} ns/iter  (8-shard/1-shard ratio x1000; speedup {:.2}x)",
        "cluster_scaling_8x",
        shard_ns[0] / shard_ns[3]
    );
    records.push(format!(
        "{{\"name\": \"cluster_scaling_8x\", \"iters\": 1, \"ns_per_iter\": {scaling_milli:.1}}}"
    ));
    man.set_float("cluster_speedup_8x", shard_ns[0] / shard_ns[3]);

    // ── Offered-load sweep: arrivals from 0.25× to 2× the 4-shard
    // cluster's per-tick intake capacity against *bounded* queues (one
    // full micro-batch deep per shard, so a tick can absorb at most
    // `shards × max_batch` before admission starts refusing). Below
    // saturation nearly everything is admitted; past it, admission
    // sheds at the door — the per-load shed-rate records (shed per
    // mille of offered) keep the overload story visible in CI next to
    // raw throughput, and `cluster_saturation_throughput` is the ns per
    // *served* request at 2× offered load, i.e. the cluster's ceiling
    // with admission control doing its job.
    {
        let shards = 4usize;
        let per_tick_capacity = shards * serve_cfg.max_batch;
        let ticks = if opts.quick { 48 } else { 128 };
        let mut saturated_ns = 0.0f64;
        let mut shed_curve = Vec::new();
        println!();
        for &(load_milli, tag) in &[
            (250u64, "025"),
            (500, "050"),
            (1000, "100"),
            (1500, "150"),
            (2000, "200"),
        ] {
            let offered_per_tick = ((per_tick_capacity as u64 * load_milli) / 1000).max(1) as usize;
            let ccfg = ClusterConfig {
                shards,
                queue_capacity: serve_cfg.max_batch,
                serve: serve_cfg.clone(),
                ..ClusterConfig::default()
            };
            let mut cluster = Cluster::new(&model, data.graphs, data.vectors, ccfg);
            for s in 0..shards {
                cluster.engine_mut(s).warm(&prep);
            }
            let mut out = Vec::new();
            let mut next_id = 0u64;
            let mut run_once = |cluster: &mut Cluster<'_>, next_id: &mut u64| -> u64 {
                let offered = (ticks * offered_per_tick) as u64;
                for _ in 0..ticks {
                    for _ in 0..offered_per_tick {
                        let i = stream[(*next_id as usize) % stream.len()];
                        let _ =
                            cluster.submit_ref(*next_id, data.sample_kernel[i], &data.aux[i], None);
                        *next_id += 1;
                    }
                    cluster.tick();
                    cluster.drain(&mut out);
                    out.clear();
                }
                cluster.flush();
                cluster.drain(&mut out);
                out.clear();
                offered
            };
            run_once(&mut cluster, &mut next_id); // warm-up
            let accepted0 = cluster.accepted_total();
            let answered0 = cluster.answered_total();
            let budget = Duration::from_millis(200);
            let mut samples = Vec::new();
            let mut offered_total = 0u64;
            let start = Instant::now();
            while start.elapsed() < budget || samples.is_empty() {
                let t0 = Instant::now();
                offered_total += run_once(&mut cluster, &mut next_id);
                samples.push(t0.elapsed().as_nanos() as f64);
            }
            let served = cluster.answered_total() - answered0;
            let accepted = cluster.accepted_total() - accepted0;
            let shed = offered_total - accepted;
            let shed_permille = 1000.0 * shed as f64 / offered_total as f64;
            samples.sort_by(|a, b| a.total_cmp(b));
            let ns_per_served = samples[samples.len() / 2] / (served as f64 / samples.len() as f64);
            assert_eq!(
                accepted, served,
                "load {load_milli}: every accepted request must be answered"
            );
            println!(
                "cluster_load_{tag}            offered {offered_per_tick:>3}/tick  \
                 shed {shed_permille:>6.1}‰  {ns_per_served:>12.1} ns/served",
            );
            records.push(format!(
                "{{\"name\": \"cluster_shed_rate_{tag}\", \"iters\": {offered_total}, \"ns_per_iter\": {shed_permille:.1}}}"
            ));
            man.set_float(&format!("cluster_shed_permille_{tag}"), shed_permille);
            if load_milli == 2000 {
                saturated_ns = ns_per_served;
            }
            shed_curve.push(shed_permille);
        }
        // The curve must actually show admission control working: real
        // overload sheds, and the shed rate does not shrink as offered
        // load doubles past capacity.
        assert!(
            shed_curve[4] > 0.0,
            "2x offered load must shed against one-batch-deep queues"
        );
        assert!(
            shed_curve[0] <= shed_curve[4],
            "shed rate must not decrease from 0.25x to 2x offered load"
        );
        println!(
            "{:<28} {saturated_ns:>16.1} ns/iter  (per served request at 2x offered load)",
            "cluster_saturation_throughput"
        );
        records.push(format!(
            "{{\"name\": \"cluster_saturation_throughput\", \"iters\": 1, \"ns_per_iter\": {saturated_ns:.1}}}"
        ));
        man.set_float("cluster_saturation_throughput_ns", saturated_ns);
    }

    let path = "BENCH_serve.json";
    let mut fh = std::fs::File::create(path)?;
    for r in &records {
        writeln!(fh, "{r}")?;
    }
    println!("\nwrote {} records to {path}", records.len());
    finish_run(&mut man);
    Ok(())
}
