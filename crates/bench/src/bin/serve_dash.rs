//! Terminal dashboard for serving telemetry: renders a metrics JSONL
//! snapshot (written by `MGA_METRICS_OUT`) and/or a flight-recorder
//! dump (written by `MGA_FLIGHT`) as the operator view — latency
//! ladder, per-stage breakdown, cache stats, drift status.
//!
//! ```text
//! serve_dash --metrics serve_metrics.jsonl --flight flight.jsonl
//! ```
//!
//! Everything here is offline post-processing of artifacts the serving
//! run already produced; the dashboard never touches an engine. CI runs
//! it as a smoke check on the `serve_bench` artifacts.

use mga_bench::{exit_on_error, BenchError};
use mga_obs::hist::HistSnapshot;
use mga_obs::json::{parse, Json};
use std::collections::BTreeMap;

/// A metrics snapshot re-read from its JSONL dump — only the pieces the
/// dashboard renders.
#[derive(Default)]
struct Snapshot {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    loghists: BTreeMap<String, HistSnapshot>,
    hists: BTreeMap<String, FixedHist>,
}

/// A fixed-bucket histogram re-read from the dump (bounds + counts).
struct FixedHist {
    bounds: Vec<f64>,
    buckets: Vec<u64>,
    count: u64,
}

fn load_metrics(path: &str) -> Result<Snapshot, BenchError> {
    let text = std::fs::read_to_string(path)?;
    let mut snap = Snapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line)
            .map_err(|e| BenchError::Invariant(format!("{path}:{}: bad JSON: {e}", lineno + 1)))?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| BenchError::Invariant(format!("{path}:{}: no name", lineno + 1)))?
            .to_string();
        match v.get("type").and_then(Json::as_str) {
            Some("counter") => {
                snap.counters
                    .insert(name, v.get("value").and_then(Json::as_f64).unwrap_or(0.0));
            }
            Some("gauge") => {
                snap.gauges
                    .insert(name, v.get("value").and_then(Json::as_f64).unwrap_or(0.0));
            }
            Some("log_histogram") => {
                let mut buckets = [0u64; mga_obs::hist::NUM_BUCKETS];
                if let Some(pairs) = v.get("buckets").and_then(Json::as_arr) {
                    for p in pairs {
                        if let Some([b, n]) =
                            p.as_arr().and_then(|a| <&[Json; 2]>::try_from(a).ok())
                        {
                            let bi = b.as_f64().unwrap_or(0.0) as usize;
                            if bi < buckets.len() {
                                buckets[bi] = n.as_f64().unwrap_or(0.0) as u64;
                            }
                        }
                    }
                }
                let count = v.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let sum = v.get("sum").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                snap.loghists
                    .insert(name, HistSnapshot::from_parts(&buckets, count, sum));
            }
            Some("histogram") => {
                let nums = |k: &str| -> Vec<f64> {
                    v.get(k)
                        .and_then(Json::as_arr)
                        .map(|a| a.iter().filter_map(Json::as_f64).collect())
                        .unwrap_or_default()
                };
                snap.hists.insert(
                    name,
                    FixedHist {
                        bounds: nums("bounds"),
                        buckets: nums("buckets").into_iter().map(|b| b as u64).collect(),
                        count: v.get("count").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    },
                );
            }
            _ => {}
        }
    }
    Ok(snap)
}

/// Flight-dump aggregates (the request lines) plus the drift lines.
#[derive(Default)]
struct FlightSummary {
    requests: u64,
    cache_hits: u64,
    batch_sum: u64,
    queue_ticks_sum: u64,
    conf_sum: f64,
    e2e: Vec<f64>,
    drift: Vec<String>,
    /// Request count per disposition tag (served / redirected / shed_*…)
    /// — the overload story of the run, straight from the flight dumps.
    dispositions: BTreeMap<String, u64>,
    /// Request count per batch-cut reason (full / wait / slo_cut /
    /// flush) — how the adaptive batcher actually decided.
    batch_modes: BTreeMap<String, u64>,
}

fn load_flight(path: &str) -> Result<FlightSummary, BenchError> {
    let text = std::fs::read_to_string(path)?;
    let mut fs = FlightSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line)
            .map_err(|e| BenchError::Invariant(format!("{path}:{}: bad JSON: {e}", lineno + 1)))?;
        match v.get("type").and_then(Json::as_str) {
            Some("request") => {
                fs.requests += 1;
                if v.get("cache_hit") == Some(&Json::Bool(true)) {
                    fs.cache_hits += 1;
                }
                let num = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                fs.batch_sum += num("batch") as u64;
                fs.queue_ticks_sum += num("queue_ticks") as u64;
                fs.conf_sum += num("confidence");
                fs.e2e.push(num("e2e_ns"));
                // Older dumps predate the disposition field; they were
                // all served requests.
                let disp = v
                    .get("disposition")
                    .and_then(Json::as_str)
                    .unwrap_or("served");
                *fs.dispositions.entry(disp.to_string()).or_insert(0) += 1;
                // Older dumps predate the batch_mode field; the batcher
                // only had the full-batch cut then.
                let mode = v.get("batch_mode").and_then(Json::as_str).unwrap_or("full");
                *fs.batch_modes.entry(mode.to_string()).or_insert(0) += 1;
            }
            Some("drift") => {
                let kind = v.get("kind").and_then(Json::as_str).unwrap_or("?");
                let tick = v.get("tick").and_then(Json::as_f64).unwrap_or(0.0);
                let value = v.get("value").and_then(Json::as_f64).unwrap_or(0.0);
                let threshold = v.get("threshold").and_then(Json::as_f64).unwrap_or(0.0);
                fs.drift.push(format!(
                    "{kind} @ tick {tick:.0}: ewma {value:.3} vs threshold {threshold:.3}"
                ));
            }
            other => {
                return Err(BenchError::Invariant(format!(
                    "{path}:{}: unknown record type {other:?}",
                    lineno + 1
                )));
            }
        }
    }
    Ok(fs)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn render_metrics(snap: &Snapshot) {
    const STAGES: [(&str, &str); 6] = [
        ("serve.lat.queue_wait", "queue wait"),
        ("serve.lat.cache_lookup", "cache lookup"),
        ("serve.lat.scale_aux", "aux scaling"),
        ("serve.lat.trunk", "trunk"),
        ("serve.lat.heads", "heads"),
        ("serve.lat.e2e", "end-to-end"),
    ];
    println!("── latency ladder (engine-side, log₂ bucket estimates) ──");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "mean", "p50", "p95", "p99"
    );
    for (name, label) in STAGES {
        if let Some(h) = snap.loghists.get(name) {
            println!(
                "{label:<14} {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.percentile(50.0) as f64),
                fmt_ns(h.percentile(95.0) as f64),
                fmt_ns(h.percentile(99.0) as f64),
            );
        }
    }
    // Stage share: mean stage time as a fraction of mean e2e (batched
    // stages are per-batch, so shares are indicative, not additive).
    if let Some(e2e) = snap.loghists.get("serve.lat.e2e") {
        if e2e.count > 0 && e2e.mean() > 0.0 {
            println!("\n── per-stage share of mean end-to-end ──");
            for (name, label) in &STAGES[..5] {
                if let Some(h) = snap.loghists.get(*name) {
                    if h.count == 0 {
                        continue;
                    }
                    let total = h.sum as f64 / e2e.count as f64;
                    println!("{label:<14} {:>6.1}%", 100.0 * total / e2e.mean());
                }
            }
        }
    }
    println!("\n── cache ──");
    for key in [
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.evictions",
        "serve.cache.occupancy",
        "serve.cache.capacity",
    ] {
        if let Some(v) = snap.gauges.get(key) {
            println!("{key:<24} {v:.0}");
        }
    }
    println!("\n── drift counters ──");
    let total = snap.counters.get("drift.events").copied().unwrap_or(0.0);
    println!("drift.events             {total:.0}");
    for (name, v) in &snap.counters {
        if name.starts_with("drift.events.") {
            println!("{name:<24} {v:.0}");
        }
    }
    render_batching(snap);
    render_cluster(snap);
}

/// Adaptive-batching view: the chosen micro-batch width distribution
/// (fixed-bucket `serve.batch.size` histogram as a bar chart) and the
/// cut-reason counters — full batch, timed-out wait, SLO cut, flush.
fn render_batching(snap: &Snapshot) {
    let Some(h) = snap.hists.get("serve.batch.size") else {
        return;
    };
    if h.count == 0 {
        return;
    }
    println!("\n── adaptive batching ──");
    let max = h.buckets.iter().copied().max().unwrap_or(0).max(1);
    for (i, &n) in h.buckets.iter().enumerate() {
        let label = match h.bounds.get(i) {
            Some(b) => format!("≤ {b:.0}"),
            None => format!("> {:.0}", h.bounds.last().copied().unwrap_or(0.0)),
        };
        let bar = "#".repeat((n * 40 / max) as usize);
        println!("batch {label:<6} {n:>10}  {bar}");
    }
    const MODES: [(&str, &str); 4] = [
        ("serve.batch.mode.full", "cut: full batch"),
        ("serve.batch.mode.wait", "cut: wait timeout"),
        ("serve.batch.mode.slo_cut", "cut: SLO estimate"),
        ("serve.batch.mode.flush", "cut: flush"),
    ];
    let batches: f64 = MODES
        .iter()
        .filter_map(|(k, _)| snap.counters.get(*k))
        .sum();
    for (key, label) in MODES {
        if let Some(v) = snap.counters.get(key) {
            println!("{label:<24} {v:.0} ({:.1}%)", 100.0 * v / batches.max(1.0));
        }
    }
}

/// Per-shard overload view: queue depths, health, plan epochs, plus the
/// cluster's shed/redirect/reroute totals. Rendered only when the
/// snapshot carries `serve.shard.*` gauges (a cluster run).
fn render_cluster(snap: &Snapshot) {
    let shard_of = |name: &str| -> Option<usize> {
        name.strip_prefix("serve.shard.")?
            .split('.')
            .next()?
            .parse()
            .ok()
    };
    let mut shards: Vec<usize> = snap.gauges.keys().filter_map(|n| shard_of(n)).collect();
    shards.sort_unstable();
    shards.dedup();
    if shards.is_empty() {
        return;
    }
    println!("\n── cluster overload view ──");
    // Worker-plane gauges exist only when the cluster ran persistent
    // shard workers; the inline plane renders the shorter table.
    let workers = snap
        .gauges
        .get("serve.cluster.data_plane")
        .copied()
        .unwrap_or(0.0)
        >= 1.0;
    println!(
        "data plane               {}",
        if workers { "workers" } else { "inline" }
    );
    if workers {
        println!(
            "{:<8} {:>12} {:>10} {:>11} {:>8} {:>10} {:>10}",
            "shard", "queue_depth", "health", "plan_epoch", "util", "ring_occ", "cmds"
        );
    } else {
        println!(
            "{:<8} {:>12} {:>10} {:>11}",
            "shard", "queue_depth", "health", "plan_epoch"
        );
    }
    for s in &shards {
        let g = |suffix: &str| {
            snap.gauges
                .get(&format!("serve.shard.{s}.{suffix}"))
                .copied()
                .unwrap_or(0.0)
        };
        let health = match g("health") as u32 {
            0 => "healthy",
            1 => "degraded",
            _ => "down",
        };
        if workers {
            println!(
                "{s:<8} {:>12.0} {:>10} {:>11.0} {:>7.1}% {:>10.0} {:>10.0}",
                g("queue_depth"),
                health,
                g("plan_epoch"),
                100.0 * g("worker.utilization"),
                g("worker.ring_occupancy"),
                g("worker.cmds"),
            );
        } else {
            println!(
                "{s:<8} {:>12.0} {:>10} {:>11.0}",
                g("queue_depth"),
                health,
                g("plan_epoch")
            );
        }
    }
    for key in [
        "serve.shed_total",
        "serve.redirect_total",
        "serve.reroute_total",
    ] {
        if let Some(v) = snap.counters.get(key) {
            println!("{key:<24} {v:.0}");
        }
    }
    if let Some(v) = snap.gauges.get("serve.cluster.overflow_depth") {
        println!("{:<24} {v:.0}", "overflow depth");
    }
}

fn render_flight(fs: &FlightSummary) {
    println!("\n── flight recorder ──");
    if fs.requests == 0 {
        println!("no request records");
    } else {
        let n = fs.requests as f64;
        let mut e2e = fs.e2e.clone();
        e2e.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| {
            e2e[((p / 100.0 * (e2e.len() - 1) as f64).round() as usize).min(e2e.len() - 1)]
        };
        println!("requests recorded        {}", fs.requests);
        println!(
            "cache hit rate           {:.1}%",
            100.0 * fs.cache_hits as f64 / n
        );
        println!("mean batch size          {:.2}", fs.batch_sum as f64 / n);
        println!(
            "mean queue ticks         {:.2}",
            fs.queue_ticks_sum as f64 / n
        );
        println!("mean confidence          {:.3}", fs.conf_sum / n);
        println!(
            "e2e p50 / p99            {} / {}",
            fmt_ns(pct(50.0)),
            fmt_ns(pct(99.0))
        );
        if fs.dispositions.keys().any(|k| k != "served") {
            println!("\n── dispositions ──");
            for (disp, count) in &fs.dispositions {
                println!("{disp:<24} {count}");
            }
        }
        if fs.batch_modes.keys().any(|k| k != "full") {
            println!("\n── batch cut reasons ──");
            for (mode, count) in &fs.batch_modes {
                println!("{mode:<24} {count} ({:.1}%)", 100.0 * *count as f64 / n);
            }
        }
    }
    println!("\n── drift events ──");
    if fs.drift.is_empty() {
        println!("none");
    } else {
        for d in &fs.drift {
            println!("{d}");
        }
    }
}

fn main() {
    exit_on_error("serve_dash", run());
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_path = None;
    let mut flight_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                i += 1;
                metrics_path =
                    Some(args.get(i).cloned().ok_or_else(|| {
                        BenchError::Invariant("--metrics needs a file".to_string())
                    })?);
            }
            "--flight" => {
                i += 1;
                flight_path =
                    Some(args.get(i).cloned().ok_or_else(|| {
                        BenchError::Invariant("--flight needs a file".to_string())
                    })?);
            }
            other => {
                return Err(BenchError::Invariant(format!(
                    "unknown argument {other} (usage: serve_dash [--metrics FILE] [--flight FILE])"
                )));
            }
        }
        i += 1;
    }
    if metrics_path.is_none() && flight_path.is_none() {
        return Err(BenchError::Invariant(
            "nothing to render: pass --metrics and/or --flight".to_string(),
        ));
    }
    if let Some(p) = &metrics_path {
        let snap = load_metrics(p)?;
        render_metrics(&snap);
    }
    if let Some(p) = &flight_path {
        let fs = load_flight(p)?;
        render_flight(&fs);
    }
    Ok(())
}
