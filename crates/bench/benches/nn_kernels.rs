//! Microbenchmarks of the NN substrate: blocked/parallel matmul, GNN
//! forward and forward+backward over a batch of real kernel graphs, and
//! one DAE training epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mga_dae::{pretrain, DaeConfig};
use mga_gnn::{GnnConfig, GraphBatch, HeteroGnn};
use mga_graph::build_module_graph;
use mga_kernels::catalog::openmp_catalog;
use mga_nn::tape::Tape;
use mga_nn::tensor::Tensor;
use mga_nn::ParamSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn rand_tensor(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    for &n in &[64usize, 256, 512] {
        let a = rand_tensor(n, n, &mut rng);
        let b = rand_tensor(n, n, &mut rng);
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    // The GNN's typical shape: tall-skinny times small square.
    let a = rand_tensor(8192, 32, &mut rng);
    let b = rand_tensor(32, 32, &mut rng);
    g.bench_function("gnn_shape_8192x32x32", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    g.finish();
}

fn bench_gnn(c: &mut Criterion) {
    let cat: Vec<_> = openmp_catalog().into_iter().take(24).collect();
    let graphs: Vec<_> = cat.iter().map(|s| build_module_graph(&s.module)).collect();
    let refs: Vec<&_> = graphs.iter().collect();
    let batch = GraphBatch::new(&refs);
    let mut rng = StdRng::seed_from_u64(2);
    let mut ps = ParamSet::new();
    let gnn = HeteroGnn::new(
        &mut ps,
        "g",
        &GnnConfig {
            dim: 32,
            layers: 2,
            update: mga_gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        &mut rng,
    );
    let mut g = c.benchmark_group("hetero_gnn");
    g.sample_size(20);
    g.bench_function("forward_24_graphs", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(gnn.forward(&mut tape, &ps, &batch))
        })
    });
    g.bench_function("forward_backward_24_graphs", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let out = gnn.forward(&mut tape, &ps, &batch);
            let loss = tape.mse_loss(out, &Tensor::zeros(24, 32));
            tape.backward(loss);
            black_box(tape.grad(out).map(|g| g.get(0, 0)))
        })
    });
    g.finish();
}

fn bench_dae(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let data: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..48).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut g = c.benchmark_group("dae");
    g.sample_size(15);
    g.bench_function("pretrain_10_epochs_64x48", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(4);
            let cfg = DaeConfig {
                input_dim: 48,
                hidden_dim: 32,
                code_dim: 16,
                epochs: 10,
                ..DaeConfig::default()
            };
            black_box(pretrain(&data, cfg, &mut r).final_loss)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_gnn, bench_dae);
criterion_main!(benches);
