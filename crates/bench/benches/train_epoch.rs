//! One training epoch over a prepared batch — the hot loop the parallel
//! runtime targets. Also times the per-fold feature preparation that the
//! [`mga_core::model::PreparedBatch`] cache hoists out of the epoch loop,
//! so the bench output shows both what each epoch costs now and what it
//! no longer re-pays.

use criterion::{criterion_group, criterion_main, Criterion};
use mga_core::cv::kfold_by_group;
use mga_core::model::{batch_targets, FusionModel, Modality, ModelConfig};
use mga_core::omp::OmpTask;
use mga_core::OmpDataset;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_nn::optim::AdamW;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;
use std::hint::black_box;

fn bench_train_epoch(c: &mut Criterion) {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
    let cpu = CpuSpec::comet_lake();
    let sizes = vec![1e6, 1e8];
    let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 3);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 4, 3);
    let cfg = ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 16,
            layers: 2,
            update: mga_gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 8,
            epochs: 20,
            ..DaeConfig::default()
        },
        hidden: 32,
        epochs: 2, // fit() is setup only; epochs are timed below
        lr: 0.02,
        seed: 3,
    };
    let mut model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());

    let mut g = c.benchmark_group("mga_training");
    g.bench_function("prepare_fold", |b| {
        b.iter(|| black_box(model.prepare(&data, &folds[0].train)))
    });
    let prep = model.prepare(&data, &folds[0].train);
    let targets = batch_targets(&data, &folds[0].train, task.codec.head_sizes().len());
    g.bench_function("train_epoch", |b| {
        let mut opt = AdamW::new(0.02).with_weight_decay(0.001);
        b.iter(|| black_box(model.train_epoch(&prep, &targets, &mut opt)))
    });
    g.finish();
}

criterion_group!(benches, bench_train_epoch);
criterion_main!(benches);
