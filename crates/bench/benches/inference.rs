//! End-to-end MGA inference latency: how long one prediction takes for a
//! freshly profiled kernel (the model-side cost in the §4.1.5 tuning-cost
//! comparison — the profiling runs dominate; this is the rest).

use criterion::{criterion_group, criterion_main, Criterion};
use mga_core::cv::kfold_by_group;
use mga_core::model::{FusionModel, Modality, ModelConfig};
use mga_core::omp::OmpTask;
use mga_core::OmpDataset;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
    let cpu = CpuSpec::comet_lake();
    let sizes = vec![1e6, 1e8];
    let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 3);
    let task = OmpTask::new(&ds);
    let data = task.train_data(&ds);
    let folds = kfold_by_group(&ds.groups(), 4, 3);
    let cfg = ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 16,
            layers: 2,
            update: mga_gnn::UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 16,
            hidden_dim: 12,
            code_dim: 8,
            epochs: 20,
            ..DaeConfig::default()
        },
        hidden: 32,
        epochs: 15,
        lr: 0.02,
        seed: 3,
    };
    let model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());

    let mut g = c.benchmark_group("mga_inference");
    g.bench_function("predict_one_sample", |b| {
        let idx = [folds[0].val[0]];
        b.iter(|| black_box(model.predict(&data, &idx)))
    });
    g.bench_function("predict_validation_fold", |b| {
        b.iter(|| black_box(model.predict(&data, &folds[0].val)))
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
