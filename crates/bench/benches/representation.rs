//! Microbenchmarks of the static representation pipeline: PROGRAML-style
//! graph construction, IR2Vec triple extraction, TransE training epochs,
//! and flow-aware program-vector encoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mga_graph::build_module_graph;
use mga_kernels::catalog::openmp_catalog;
use mga_vec::{extract_triples, train_seed_embeddings, TransEConfig};
use std::hint::black_box;

fn bench_graph_construction(c: &mut Criterion) {
    let cat = openmp_catalog();
    let mut g = c.benchmark_group("graph_construction");
    g.sample_size(30);
    g.bench_function("full_openmp_catalog", |b| {
        b.iter(|| {
            let mut nodes = 0;
            for spec in &cat {
                let graph = build_module_graph(black_box(&spec.module));
                nodes += graph.num_nodes();
            }
            black_box(nodes)
        })
    });
    let biggest = cat.iter().max_by_key(|s| s.module.num_instrs()).unwrap();
    g.bench_function("largest_kernel", |b| {
        b.iter(|| black_box(build_module_graph(&biggest.module)))
    });
    g.finish();
}

fn bench_csr(c: &mut Criterion) {
    let cat = openmp_catalog();
    let graphs: Vec<_> = cat.iter().map(|s| build_module_graph(&s.module)).collect();
    let mut g = c.benchmark_group("csr_build");
    g.sample_size(30);
    g.bench_function("all_relations_all_graphs", |b| {
        b.iter(|| {
            let mut edges = 0;
            for graph in &graphs {
                for r in mga_graph::Relation::ALL {
                    edges += graph.csr_in(r).num_edges();
                }
            }
            black_box(edges)
        })
    });
    g.finish();
}

fn bench_ir2vec(c: &mut Criterion) {
    let cat: Vec<_> = openmp_catalog().into_iter().take(20).collect();
    let mut triples = Vec::new();
    for s in &cat {
        triples.extend(extract_triples(&s.module));
    }
    let mut g = c.benchmark_group("ir2vec");
    g.sample_size(20);
    g.bench_function("triple_extraction_20_kernels", |b| {
        b.iter(|| {
            let mut n = 0;
            for s in &cat {
                n += extract_triples(black_box(&s.module)).len();
            }
            black_box(n)
        })
    });
    g.bench_function("transe_5_epochs_dim32", |b| {
        b.iter_batched(
            || triples.clone(),
            |t| {
                black_box(train_seed_embeddings(
                    &t,
                    &TransEConfig {
                        dim: 32,
                        epochs: 5,
                        ..Default::default()
                    },
                    7,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    let emb = train_seed_embeddings(
        &triples,
        &TransEConfig {
            dim: 32,
            epochs: 5,
            ..Default::default()
        },
        7,
    );
    g.bench_function("flow_aware_encoding_20_kernels", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for s in &cat {
                acc += emb.encode_module(black_box(&s.module))[0];
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_graph_construction, bench_csr, bench_ir2vec);
criterion_main!(benches);
