//! Microbenchmarks of the baseline autotuners: wall-clock cost of one
//! `tune()` call at a fixed evaluation budget (the *search* overhead on
//! top of the objective evaluations, which are counted separately by the
//! tuning-cost experiment binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mga_kernels::catalog::openmp_catalog;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::large_space;
use mga_tuners::{
    bliss::BlissLike, opentuner::OpenTunerLike, ytopt::YtoptLike, Evaluator, RandomSearch, Space,
    Tuner,
};
use std::hint::black_box;

fn bench_tuners(c: &mut Criterion) {
    let spec = openmp_catalog()
        .into_iter()
        .find(|s| s.app == "gemm")
        .unwrap();
    let cpu = CpuSpec::skylake_4114();
    let space = Space::new(large_space());
    let mut g = c.benchmark_group("tuner_search_overhead");
    g.sample_size(15);
    for budget in [10usize, 25] {
        g.bench_with_input(BenchmarkId::new("random", budget), &budget, |b, &n| {
            b.iter(|| {
                let mut ev = Evaluator::new(&spec, 1e7, &cpu);
                black_box(RandomSearch { seed: 1 }.tune(&space, &mut ev, n))
            })
        });
        g.bench_with_input(BenchmarkId::new("ytopt_gp", budget), &budget, |b, &n| {
            b.iter(|| {
                let mut ev = Evaluator::new(&spec, 1e7, &cpu);
                black_box(YtoptLike::new(1).tune(&space, &mut ev, n))
            })
        });
        g.bench_with_input(BenchmarkId::new("opentuner", budget), &budget, |b, &n| {
            b.iter(|| {
                let mut ev = Evaluator::new(&spec, 1e7, &cpu);
                black_box(OpenTunerLike::new(1).tune(&space, &mut ev, n))
            })
        });
        g.bench_with_input(BenchmarkId::new("bliss", budget), &budget, |b, &n| {
            b.iter(|| {
                let mut ev = Evaluator::new(&spec, 1e7, &cpu);
                black_box(BlissLike::new(1).tune(&space, &mut ev, n))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tuners);
criterion_main!(benches);
