//! Microbenchmarks of the hardware-model substrate: single simulated
//! executions, whole-search-space sweeps (what dataset construction and
//! oracle labeling do), and device-mapping evaluations.

use criterion::{criterion_group, criterion_main, Criterion};
use mga_kernels::catalog::{opencl_catalog, openmp_catalog};
use mga_sim::cpu::CpuSpec;
use mga_sim::gpu::{run_mapping, GpuSpec};
use mga_sim::openmp::{large_space, simulate, thread_space, OmpConfig};
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let cat = openmp_catalog();
    let cpu = CpuSpec::skylake_4114();
    let cfg = OmpConfig::default_for(&cpu);
    let mut g = c.benchmark_group("openmp_model");
    g.bench_function("single_run", |b| {
        let spec = &cat[0];
        b.iter(|| black_box(simulate(spec, 1e7, &cfg, &cpu)))
    });
    g.bench_function("catalog_sweep_default_cfg", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for spec in &cat {
                acc += simulate(spec, 1e7, &cfg, &cpu).runtime;
            }
            black_box(acc)
        })
    });
    let space = large_space();
    g.bench_function("oracle_147_configs", |b| {
        let spec = &cat[5];
        b.iter(|| black_box(mga_sim::openmp::oracle_config(spec, 1e7, &space, &cpu)))
    });
    let tspace = thread_space(&CpuSpec::comet_lake());
    g.bench_function("oracle_thread_space", |b| {
        let spec = &cat[5];
        let cl = CpuSpec::comet_lake();
        b.iter(|| black_box(mga_sim::openmp::oracle_config(spec, 1e7, &tspace, &cl)))
    });
    g.finish();
}

fn bench_devmap(c: &mut Criterion) {
    let cat: Vec<_> = opencl_catalog().into_iter().take(64).collect();
    let cpu = CpuSpec::i7_3820();
    let gpu = GpuSpec::tahiti_7970();
    let mut g = c.benchmark_group("opencl_model");
    g.bench_function("label_64_kernels", |b| {
        b.iter(|| {
            let mut gpu_wins = 0;
            for spec in &cat {
                if run_mapping(spec, 8e6, 128, &cpu, &gpu).gpu_wins() {
                    gpu_wins += 1;
                }
            }
            black_box(gpu_wins)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulate, bench_devmap);
criterion_main!(benches);
