//! `mga-kernels` — benchmark kernel specifications and IR lowering.
//!
//! The paper's dataset is built from OpenMP loops and OpenCL kernels of
//! eleven benchmark suites (Table 1): Polybench, Rodinia, NAS, STREAM,
//! DataRaceBench, LULESH, AMD SDK, NVIDIA SDK, Parboil, SHOC and NPB. We
//! have no Clang, so this crate *is* the compiler front half:
//!
//! * [`nest::NestBuilder`] generates loop-nest IR (induction phis, bounds
//!   tests, latches) with a caller-supplied body — every kernel in the
//!   catalog lowers through it to genuine `mga-ir` SSA;
//! * [`spec`] defines [`spec::KernelSpec`]: the lowered module plus the
//!   performance-facing traits ([`spec::Traits`]) the simulator consumes
//!   (trip counts, working-set formulas, locality, imbalance, sync);
//!   the instruction mix is *derived from the IR*, not hand-entered;
//! * [`archetypes`] implements the kernel families the suites are built
//!   from (streaming, matmul, stencil, reduction, triangular solve,
//!   gather, histogram, branchy, nbody, sort-like, fft-like);
//! * [`catalog`] instantiates the actual benchmark lists: 45+ OpenMP
//!   loops across the paper's OpenMP suites and 250+ OpenCL kernels
//!   across its seven OpenCL suites;
//! * [`inputs`] produces the 30 input sizes (≈3.5 KB – 0.5 GB working
//!   sets) and the OpenCL transfer/workgroup size grid.

pub mod archetypes;
pub mod catalog;
pub mod inputs;
pub mod nest;
pub mod spec;

pub use catalog::{opencl_catalog, openmp_catalog};
pub use spec::{Imbalance, InstrMix, KernelSpec, Locality, Suite, Traits, TripCount};
