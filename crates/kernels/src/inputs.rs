//! Input-size generation.
//!
//! The paper profiles each OpenMP loop at 30 input sizes "ranging from
//! 3.5KB to 0.5GB … selected with the intention of stressing each of the
//! three cache levels (L1, L2, L3) to different degrees" (§4.1.1). We use
//! a geometric ladder of working-set targets over exactly that range; a
//! kernel's problem scale `n` is derived from its working-set formula.
//!
//! For OpenCL device mapping, each kernel runs at several data classes
//! (transfer sizes) and work-group sizes, mirroring the Ben-Nun et al.
//! dataset's ~670 labeled points per device over 256 kernels.

/// The 30 working-set targets in bytes (≈3.5 KB … 0.5 GB, geometric).
pub fn openmp_input_sizes() -> Vec<f64> {
    let lo: f64 = 3.5 * 1024.0;
    let hi: f64 = 0.5 * 1024.0 * 1024.0 * 1024.0;
    let n = 30;
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i)).collect()
}

/// STANDARD and LARGE PolyBench dataset sizes (working-set bytes), used by
/// the µ-architecture portability experiment (§4.1.5).
pub fn polybench_standard_large() -> [f64; 2] {
    [16.0 * 1024.0 * 1024.0, 256.0 * 1024.0 * 1024.0]
}

/// One OpenCL execution point: data transferred to the device and the
/// work-group size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OclPoint {
    /// Host→device transfer size in bytes.
    pub transfer_bytes: f64,
    /// Work-group size (threads per group).
    pub wg_size: u32,
}

/// The grid of OpenCL execution points per kernel: data classes from tiny
/// to large crossed with a few work-group sizes. Kernels draw a subset so
/// the full catalog lands near the dataset's ~670 points.
pub fn opencl_points(kernel_salt: u64) -> Vec<OclPoint> {
    let classes = [
        32.0 * 1024.0,
        512.0 * 1024.0,
        8.0 * 1024.0 * 1024.0,
        128.0 * 1024.0 * 1024.0,
    ];
    let wgs = [64u32, 128, 256];
    let mut out = Vec::new();
    // Deterministically pick ~2-3 points per kernel from the 12-point grid.
    for (ci, &c) in classes.iter().enumerate() {
        for (wi, &w) in wgs.iter().enumerate() {
            let h = kernel_salt
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(((ci * 3 + wi) as u64).wrapping_mul(0xD1B54A32D192ED03));
            if h % 12 < 3 {
                out.push(OclPoint {
                    transfer_bytes: c,
                    wg_size: w,
                });
            }
        }
    }
    if out.is_empty() {
        out.push(OclPoint {
            transfer_bytes: classes[1],
            wg_size: 128,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_sizes_span_the_paper_range() {
        let sizes = openmp_input_sizes();
        assert_eq!(sizes.len(), 30);
        assert!((sizes[0] - 3584.0).abs() < 1.0);
        assert!((sizes[29] - 536_870_912.0).abs() < 1024.0);
        // Strictly increasing, geometric.
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
        }
        let r1 = sizes[1] / sizes[0];
        let r2 = sizes[15] / sizes[14];
        assert!((r1 - r2).abs() < 1e-6, "not geometric");
    }

    #[test]
    fn sizes_stress_all_cache_levels() {
        let sizes = openmp_input_sizes();
        // L1 (32KB), L2 (256KB-1MB), L3 (16MB) must each have sizes below
        // and above them.
        for cap in [32.0 * 1024.0, 1024.0 * 1024.0, 16.0 * 1024.0 * 1024.0] {
            assert!(sizes.iter().any(|&s| s < cap));
            assert!(sizes.iter().any(|&s| s > cap));
        }
    }

    #[test]
    fn opencl_points_deterministic_and_nonempty() {
        for salt in 0..100u64 {
            let a = opencl_points(salt);
            let b = opencl_points(salt);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.len() <= 12);
        }
    }

    #[test]
    fn opencl_grid_varies_across_kernels() {
        let counts: std::collections::HashSet<usize> =
            (0..50u64).map(|s| opencl_points(s).len()).collect();
        assert!(counts.len() > 1, "every kernel got the same point count");
    }
}
