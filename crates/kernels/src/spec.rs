//! Kernel specifications: lowered IR plus simulator-facing traits.

use mga_ir::analysis::loops::LoopInfo;
use mga_ir::{Function, Module, Opcode};

/// Benchmark suite provenance (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    Polybench,
    Rodinia,
    Nas,
    Stream,
    DataRaceBench,
    Lulesh,
    AmdSdk,
    NvidiaSdk,
    Parboil,
    Shoc,
    Npb,
    PolybenchGpu,
}

impl Suite {
    pub fn name(self) -> &'static str {
        match self {
            Suite::Polybench => "PolyBench",
            Suite::Rodinia => "Rodinia",
            Suite::Nas => "NAS",
            Suite::Stream => "STREAM",
            Suite::DataRaceBench => "DataRaceBench",
            Suite::Lulesh => "LULESH",
            Suite::AmdSdk => "AMD SDK",
            Suite::NvidiaSdk => "NVIDIA SDK",
            Suite::Parboil => "Parboil",
            Suite::Shoc => "SHOC",
            Suite::Npb => "NPB",
            Suite::PolybenchGpu => "PolyBench-GPU",
        }
    }
}

/// Trip count of the *parallel* (outermost) loop as a function of the
/// problem scale `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripCount {
    /// `c · n` iterations.
    Linear(f64),
    /// `c · n²` iterations.
    Quadratic(f64),
    /// `c · n · log₂(n)` iterations.
    NLogN(f64),
    /// A fixed number of iterations.
    Const(f64),
}

impl TripCount {
    pub fn eval(self, n: f64) -> f64 {
        match self {
            TripCount::Linear(c) => c * n,
            TripCount::Quadratic(c) => c * n * n,
            TripCount::NLogN(c) => c * n * n.log2().max(1.0),
            TripCount::Const(c) => c,
        }
    }
}

/// Memory-locality character of the kernel's accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Locality {
    /// Fraction of accesses that stream through memory once (no reuse).
    pub streaming_frac: f64,
    /// Bytes of data re-touched across iterations *per thread* as a
    /// multiple of the per-iteration footprint (tile/stencil reuse).
    pub reuse_factor: f64,
    /// Fraction of the working set shared (read) by all threads, e.g. the
    /// B matrix of a GEMM — it occupies shared cache once, not per-thread.
    pub shared_frac: f64,
}

impl Locality {
    pub fn streaming() -> Locality {
        Locality {
            streaming_frac: 1.0,
            reuse_factor: 0.0,
            shared_frac: 0.0,
        }
    }

    pub fn tiled(reuse: f64, shared: f64) -> Locality {
        Locality {
            streaming_frac: 0.1,
            reuse_factor: reuse,
            shared_frac: shared,
        }
    }
}

/// Load-balance character of the parallel iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imbalance {
    /// All iterations cost the same.
    Uniform,
    /// Iteration `i` costs proportionally to `i/n` (triangular solves,
    /// LU/Cholesky panels).
    Triangular,
    /// Iteration costs vary randomly with the given coefficient of
    /// variation (particle filters, BFS frontiers, ray casting).
    Random(f64),
}

/// Instruction mix of one innermost iteration, derived from the kernel's
/// IR (deepest loop body).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstrMix {
    pub flops: f64,
    pub int_ops: f64,
    pub loads: f64,
    pub stores: f64,
    pub branches: f64,
    pub calls: f64,
    pub atomics: f64,
    /// Expensive math intrinsics (sqrt/exp/log/sin/cos/pow).
    pub heavy_math: f64,
}

impl InstrMix {
    /// Count the instruction mix of the deepest loop body of `f`.
    /// Falls back to the whole function when no loop exists.
    pub fn of_function(f: &Function) -> InstrMix {
        let li = LoopInfo::compute(f);
        let max_depth = li.max_depth();
        let mut mix = InstrMix::default();
        for (b, iid) in f.iter_instrs() {
            let in_deepest = max_depth == 0 || li.depth[b.index()] == max_depth;
            if !in_deepest {
                continue;
            }
            let op = f.instr(iid).op;
            match op {
                Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv | Opcode::FNeg => {
                    mix.flops += 1.0
                }
                Opcode::FMin | Opcode::FMax | Opcode::FAbs => mix.flops += 1.0,
                Opcode::Sqrt
                | Opcode::Exp
                | Opcode::Log
                | Opcode::Sin
                | Opcode::Cos
                | Opcode::Pow => {
                    mix.flops += 1.0;
                    mix.heavy_math += 1.0;
                }
                Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::SRem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::AShr
                | Opcode::Gep => mix.int_ops += 1.0,
                Opcode::Load => mix.loads += 1.0,
                Opcode::Store => mix.stores += 1.0,
                Opcode::ICmp | Opcode::FCmp | Opcode::CondBr | Opcode::Select => {
                    mix.branches += 1.0
                }
                Opcode::Call => mix.calls += 1.0,
                Opcode::AtomicAdd => {
                    mix.atomics += 1.0;
                    mix.stores += 1.0;
                }
                _ => {}
            }
        }
        mix
    }

    /// Total memory operations.
    pub fn mem_ops(&self) -> f64 {
        self.loads + self.stores
    }
}

/// Simulator-facing performance traits of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Traits {
    /// Parallel-loop trip count as a function of problem scale `n`.
    pub trip: TripCount,
    /// Sequential work multiplier inside one parallel iteration (inner
    /// loops), as a function of `n`.
    pub inner: TripCount,
    /// Bytes of working set as a function of `n` — `ws_bytes_per_n · n^ws_power`.
    pub ws_bytes_per_n: f64,
    pub ws_power: f64,
    /// Bytes moved to/from memory per innermost iteration.
    pub bytes_per_iter: f64,
    pub locality: Locality,
    pub imbalance: Imbalance,
    /// Has an OpenMP reduction (log-depth combine at join).
    pub reduction: bool,
    /// Entropy of data-dependent branches in `[0,1]`; 0 = perfectly
    /// predictable, 1 = coin flips.
    pub branch_entropy: f64,
    /// Fraction of the region that is serial (Amdahl).
    pub serial_frac: f64,
    /// Synchronization cost per parallel iteration in µs (wavefront
    /// loops like trisolv barrier between dependent rows; 0 for
    /// embarrassingly parallel loops).
    pub sync_us_per_iter: f64,
}

impl Traits {
    /// Problem scale `n` whose working set is `bytes`.
    pub fn n_for_working_set(&self, bytes: f64) -> f64 {
        (bytes / self.ws_bytes_per_n)
            .powf(1.0 / self.ws_power)
            .max(4.0)
    }

    /// Working set in bytes at problem scale `n`.
    pub fn working_set(&self, n: f64) -> f64 {
        self.ws_bytes_per_n * n.powf(self.ws_power)
    }
}

/// A fully specified kernel: IR + traits + provenance.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Unique id, e.g. `"polybench/2mm/l0"`.
    pub name: String,
    /// Application it belongs to, e.g. `"2mm"` (leave-one-out groups by
    /// this).
    pub app: String,
    pub suite: Suite,
    /// The lowered module; function 0 is the kernel region.
    pub module: Module,
    pub traits: Traits,
    /// Instruction mix derived from the IR at construction.
    pub mix: InstrMix,
}

impl KernelSpec {
    /// Assemble a spec, deriving the instruction mix from the IR and
    /// verifying the module.
    pub fn new(
        name: impl Into<String>,
        app: impl Into<String>,
        suite: Suite,
        module: Module,
        traits: Traits,
    ) -> KernelSpec {
        let name = name.into();
        mga_ir::verify_module(&module).unwrap_or_else(|e| panic!("kernel {name}: invalid IR: {e}"));
        let mix = InstrMix::of_function(&module.functions[0]);
        KernelSpec {
            name,
            app: app.into(),
            suite,
            module,
            traits,
            mix,
        }
    }

    /// The kernel region function.
    pub fn function(&self) -> &Function {
        &self.module.functions[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::{kernel_params, Bound, Level, NestBuilder};
    use mga_ir::builder::FunctionBuilder;
    use mga_ir::Type;

    fn saxpy_module() -> Module {
        let mut m = Module::new("saxpy");
        let mut fb = FunctionBuilder::new(
            "saxpy",
            kernel_params(&[("x", Type::F64), ("y", Type::F64)]),
            Type::Void,
        );
        fb.set_parallel(false);
        NestBuilder::build(&mut fb, &[Level { bound: Bound::N }], &mut |ctx| {
            let i = ctx.ivs[0];
            let px = ctx.b.gep(ctx.b.param(1), i);
            let py = ctx.b.gep(ctx.b.param(2), i);
            let vx = ctx.b.load(px);
            let vy = ctx.b.load(py);
            let a = ctx.b.const_f64(3.0);
            let ax = ctx.b.fmul(vx, a);
            let s = ctx.b.fadd(ax, vy);
            ctx.b.store(s, py);
        });
        fb.ret_void();
        m.add_function(fb.finish());
        m
    }

    fn default_traits() -> Traits {
        Traits {
            trip: TripCount::Linear(1.0),
            inner: TripCount::Const(1.0),
            ws_bytes_per_n: 16.0,
            ws_power: 1.0,
            bytes_per_iter: 24.0,
            locality: Locality::streaming(),
            imbalance: Imbalance::Uniform,
            reduction: false,
            branch_entropy: 0.05,
            serial_frac: 0.01,
            sync_us_per_iter: 0.0,
        }
    }

    #[test]
    fn instr_mix_counts_innermost_body() {
        let m = saxpy_module();
        let mix = InstrMix::of_function(&m.functions[0]);
        assert_eq!(mix.loads, 2.0);
        assert_eq!(mix.stores, 1.0);
        assert_eq!(mix.flops, 2.0);
        // geps + iv increment are int ops.
        assert!(mix.int_ops >= 2.0);
        // loop condition is a branch.
        assert!(mix.branches >= 1.0);
        assert_eq!(mix.calls, 0.0);
    }

    #[test]
    fn spec_derives_mix_and_verifies() {
        let spec = KernelSpec::new(
            "stream/saxpy",
            "stream",
            Suite::Stream,
            saxpy_module(),
            default_traits(),
        );
        assert_eq!(spec.mix.loads, 2.0);
        assert_eq!(spec.function().name, "saxpy");
    }

    #[test]
    fn trip_count_eval() {
        assert_eq!(TripCount::Linear(2.0).eval(100.0), 200.0);
        assert_eq!(TripCount::Quadratic(1.0).eval(10.0), 100.0);
        assert_eq!(TripCount::Const(7.0).eval(1000.0), 7.0);
        let nlogn = TripCount::NLogN(1.0).eval(8.0);
        assert!((nlogn - 24.0).abs() < 1e-9);
    }

    #[test]
    fn working_set_inversion_round_trips() {
        let t = Traits {
            ws_power: 2.0,
            ws_bytes_per_n: 8.0,
            ..default_traits()
        };
        let n = t.n_for_working_set(1_000_000.0);
        let ws = t.working_set(n);
        assert!((ws - 1_000_000.0).abs() / 1_000_000.0 < 1e-9);
    }

    #[test]
    fn working_set_floor_keeps_n_sane() {
        let t = default_traits();
        assert!(t.n_for_working_set(1.0) >= 4.0);
    }

    #[test]
    #[should_panic(expected = "invalid IR")]
    fn spec_rejects_broken_module() {
        let mut m = saxpy_module();
        // Corrupt: drop the terminator of the entry block.
        m.functions[0].blocks[0].instrs.clear();
        let _ = KernelSpec::new("bad", "bad", Suite::Stream, m, default_traits());
    }
}
