//! Loop-nest IR generation.
//!
//! [`NestBuilder`] lowers a `depth`-deep rectangular (or triangular) loop
//! nest to `mga-ir`, leaving the innermost body to a closure that receives
//! the [`FunctionBuilder`] and the induction-variable operands. This is
//! the skeleton every catalog kernel shares; bodies differ per archetype.

use mga_ir::builder::FunctionBuilder;
use mga_ir::instr::CmpPred;
use mga_ir::module::BlockId;
use mga_ir::{Operand, Param, Type};

/// Bound of one loop level.
#[derive(Debug, Clone, Copy)]
pub enum Bound {
    /// `for i in 0..n` where `n` is the function's size parameter.
    N,
    /// `for i in 0..(n / k)`.
    NDiv(i64),
    /// `for j in 0..i_outer` — triangular inner loop (uses the immediately
    /// enclosing induction variable as the bound).
    Outer,
    /// `for i in 0..k` — a compile-time constant trip count.
    Const(i64),
}

/// Specification of one loop level.
#[derive(Debug, Clone, Copy)]
pub struct Level {
    pub bound: Bound,
}

/// Builds the standard kernel function signature:
/// `fn kernel(n: i64, a0: T*, a1: T*, ... )`.
pub fn kernel_params(arrays: &[(&str, Type)]) -> Vec<Param> {
    let mut params = vec![Param {
        name: "n".into(),
        ty: Type::I64,
    }];
    for (name, ty) in arrays {
        params.push(Param {
            name: (*name).to_string(),
            ty: ty.clone().ptr(),
        });
    }
    params
}

/// Context handed to the body closure.
pub struct BodyCtx<'a> {
    pub b: &'a mut FunctionBuilder,
    /// Induction variables, outermost first.
    pub ivs: Vec<Operand>,
    /// The `n` size parameter.
    pub n: Operand,
}

/// Generate a loop nest and lower `body` inside the innermost level.
///
/// The generated CFG per level is the canonical
/// `preheader → header(phi) → body … latch → header | exit` shape, so
/// `mga-ir`'s loop analysis sees exactly `levels.len()` natural loops.
pub struct NestBuilder;

impl NestBuilder {
    /// Build the nest inside `fb` (which must be positioned in an open
    /// block). After return, `fb`'s current block is the nest's exit.
    pub fn build(
        fb: &mut FunctionBuilder,
        levels: &[Level],
        body: &mut dyn FnMut(&mut BodyCtx<'_>),
    ) {
        let n = fb.param(0);
        let mut ivs: Vec<Operand> = Vec::with_capacity(levels.len());
        Self::build_level(fb, levels, 0, n, &mut ivs, body);
    }

    fn build_level(
        fb: &mut FunctionBuilder,
        levels: &[Level],
        depth: usize,
        n: Operand,
        ivs: &mut Vec<Operand>,
        body: &mut dyn FnMut(&mut BodyCtx<'_>),
    ) {
        if depth == levels.len() {
            let mut ctx = BodyCtx {
                ivs: ivs.clone(),
                n,
                b: fb,
            };
            body(&mut ctx);
            return;
        }
        let level = levels[depth];
        let preheader: BlockId = fb.current_block();
        let header = fb.create_block(format!("l{depth}_header"));
        let body_bb = fb.create_block(format!("l{depth}_body"));
        let latch = fb.create_block(format!("l{depth}_latch"));
        let exit = fb.create_block(format!("l{depth}_exit"));

        let zero = fb.const_i64(0);
        let bound = match level.bound {
            Bound::N => n,
            Bound::NDiv(k) => {
                let kk = fb.const_i64(k);
                fb.sdiv(n, kk)
            }
            Bound::Const(k) => fb.const_i64(k),
            Bound::Outer => {
                assert!(depth > 0, "triangular bound at outermost level");
                // j in 0..max(i,1): keep at least one iteration so the body
                // (and its IR) is always reachable.
                let one = fb.const_i64(1);
                let outer = ivs[depth - 1];
                let cmp = fb.icmp(CmpPred::Lt, outer, one);
                fb.select(cmp, one, outer)
            }
        };
        fb.br(header);

        fb.switch_to(header);
        let (iv, iv_phi) = fb.phi_begin(Type::I64);
        let cond = fb.icmp(CmpPred::Lt, iv, bound);
        fb.cond_br(cond, body_bb, exit);

        fb.switch_to(body_bb);
        ivs.push(iv);
        Self::build_level(fb, levels, depth + 1, n, ivs, body);
        ivs.pop();
        // The recursive call may have moved the insertion point (nested
        // loops leave us in their exit block); wherever we are, fall into
        // this level's latch.
        fb.br(latch);

        fb.switch_to(latch);
        let one = fb.const_i64(1);
        let next = fb.add(iv, one);
        fb.br(header);
        fb.phi_finish(iv_phi, vec![(preheader, zero), (latch, next)]);

        fb.switch_to(exit);
    }
}

/// Convenience: linearized 2-D index `i * n + j`.
pub fn idx2(fb: &mut FunctionBuilder, i: Operand, j: Operand, n: Operand) -> Operand {
    let t = fb.mul(i, n);
    fb.add(t, j)
}

/// Convenience: linearized 3-D index `(i * n + j) * n + k`.
pub fn idx3(fb: &mut FunctionBuilder, i: Operand, j: Operand, k: Operand, n: Operand) -> Operand {
    let ij = idx2(fb, i, j, n);
    let t = fb.mul(ij, n);
    fb.add(t, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_ir::analysis::loops::LoopInfo;
    use mga_ir::{verify_function, Module, Type};

    fn build_nest(levels: &[Level]) -> mga_ir::Function {
        let mut fb = FunctionBuilder::new(
            "k",
            kernel_params(&[("a", Type::F64), ("b", Type::F64)]),
            Type::Void,
        );
        fb.set_parallel(false);
        NestBuilder::build(&mut fb, levels, &mut |ctx| {
            let i = *ctx.ivs.last().unwrap();
            let pa = ctx.b.gep(ctx.b.param(1), i);
            let v = ctx.b.load(pa);
            let two = ctx.b.const_f64(2.0);
            let v2 = ctx.b.fmul(v, two);
            let pb = ctx.b.gep(ctx.b.param(2), i);
            ctx.b.store(v2, pb);
        });
        fb.ret_void();
        fb.finish()
    }

    #[test]
    fn single_loop_verifies_and_has_one_natural_loop() {
        let f = build_nest(&[Level { bound: Bound::N }]);
        let m = Module::new("t");
        verify_function(&f, &m).unwrap();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.loops.len(), 1);
        assert_eq!(li.max_depth(), 1);
    }

    #[test]
    fn triple_nest_has_three_nested_loops() {
        let f = build_nest(&[
            Level { bound: Bound::N },
            Level { bound: Bound::N },
            Level {
                bound: Bound::Const(5),
            },
        ]);
        let m = Module::new("t");
        verify_function(&f, &m).unwrap();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.loops.len(), 3);
        assert_eq!(li.max_depth(), 3);
    }

    #[test]
    fn triangular_nest_verifies() {
        let f = build_nest(&[
            Level { bound: Bound::N },
            Level {
                bound: Bound::Outer,
            },
        ]);
        let m = Module::new("t");
        verify_function(&f, &m).unwrap();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.loops.len(), 2);
    }

    #[test]
    fn ndiv_bound_generates_division() {
        let f = build_nest(&[Level {
            bound: Bound::NDiv(4),
        }]);
        assert!(f.instrs.iter().any(|i| i.op == mga_ir::Opcode::SDiv));
    }

    #[test]
    fn body_sees_all_induction_variables() {
        let mut seen = 0usize;
        let mut fb = FunctionBuilder::new("k", kernel_params(&[("a", Type::F64)]), Type::Void);
        NestBuilder::build(
            &mut fb,
            &[Level { bound: Bound::N }, Level { bound: Bound::N }],
            &mut |ctx| {
                seen = ctx.ivs.len();
                let idx = idx2(ctx.b, ctx.ivs[0], ctx.ivs[1], ctx.n);
                let p = ctx.b.gep(ctx.b.param(1), idx);
                let v = ctx.b.load(p);
                ctx.b.store(v, p);
            },
        );
        fb.ret_void();
        let f = fb.finish();
        assert_eq!(seen, 2);
        let m = Module::new("t");
        verify_function(&f, &m).unwrap();
    }

    #[test]
    fn idx3_linearizes() {
        let mut fb = FunctionBuilder::new("k", kernel_params(&[("a", Type::F32)]), Type::Void);
        NestBuilder::build(
            &mut fb,
            &[
                Level { bound: Bound::N },
                Level { bound: Bound::N },
                Level { bound: Bound::N },
            ],
            &mut |ctx| {
                let idx = idx3(ctx.b, ctx.ivs[0], ctx.ivs[1], ctx.ivs[2], ctx.n);
                let p = ctx.b.gep(ctx.b.param(1), idx);
                let v = ctx.b.load(p);
                ctx.b.store(v, p);
            },
        );
        fb.ret_void();
        let f = fb.finish();
        let m = Module::new("t");
        verify_function(&f, &m).unwrap();
        // Two muls for the 3-D linearization (plus none from bounds).
        let muls = f
            .instrs
            .iter()
            .filter(|i| i.op == mga_ir::Opcode::Mul)
            .count();
        assert!(muls >= 2);
    }
}
