//! The benchmark catalog: paper Table 1 instantiated over the archetypes.
//!
//! * [`openmp_catalog`] — the OpenMP loops (PolyBench, Rodinia, NAS,
//!   STREAM, DataRaceBench, LULESH) used in §4.1. The thread-prediction
//!   dataset ([`openmp_thread_dataset`]) uses 45 of these loops, as the
//!   paper's Fig. 1b states; the large-search-space experiment
//!   ([`large_space_apps`]) uses the 30 PolyBench/Rodinia/LULESH apps.
//! * [`opencl_catalog`] — ~256 OpenCL kernels across AMD SDK, NPB,
//!   NVIDIA SDK, Parboil, PolyBench-GPU, Rodinia and SHOC, for the
//!   heterogeneous device-mapping task of §4.2.
//!
//! Every kernel gets real IR from an archetype plus deterministic
//! per-kernel trait variation (seeded by the kernel name) so no two
//! kernels are identical.

use crate::archetypes as arch;
use crate::spec::{KernelSpec, Suite, Traits};
use mga_ir::Module;

/// Archetype selector for one catalog entry.
#[derive(Debug, Clone, Copy)]
pub enum Arch {
    Streaming { n_src: usize, flops: usize },
    Matmul { fused: usize },
    Stencil { dims: usize, points: usize },
    Reduction { n_src: usize, heavy: bool },
    Triangular { serial: f64 },
    Gather { cv: f64, entropy: f64 },
    Histogram,
    Branchy { entropy: f64 },
    Nbody { neighbors: i64 },
    Sort,
    Fft,
}

impl Arch {
    fn build(self, name: &str) -> (Module, Traits) {
        match self {
            Arch::Streaming { n_src, flops } => arch::streaming(name, n_src, flops),
            Arch::Matmul { fused } => arch::matmul(name, fused),
            Arch::Stencil { dims, points } => arch::stencil(name, dims, points),
            Arch::Reduction { n_src, heavy } => arch::reduction(name, n_src, heavy),
            Arch::Triangular { serial } => arch::triangular(name, serial),
            Arch::Gather { cv, entropy } => arch::gather(name, cv, entropy),
            Arch::Histogram => arch::histogram(name),
            Arch::Branchy { entropy } => arch::branchy(name, entropy),
            Arch::Nbody { neighbors } => arch::nbody(name, neighbors),
            Arch::Sort => arch::sortlike(name),
            Arch::Fft => arch::fftlike(name),
        }
    }
}

/// Deterministic per-kernel jitter in `[1-spread, 1+spread]` derived from
/// the kernel name — keeps same-archetype kernels from being clones.
fn jitter(name: &str, salt: u64, spread: f64) -> f64 {
    let mut h = salt ^ 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    1.0 + spread * (2.0 * unit - 1.0)
}

fn make_spec(app: &str, loop_idx: usize, suite: Suite, a: Arch) -> KernelSpec {
    let name = format!("{}/{app}/l{loop_idx}", suite.name().to_lowercase());
    let (module, mut t) = a.build(&format!("{app}_l{loop_idx}"));
    // Per-kernel variation.
    t.bytes_per_iter *= jitter(&name, 1, 0.25);
    t.ws_bytes_per_n *= jitter(&name, 2, 0.2);
    t.branch_entropy = (t.branch_entropy * jitter(&name, 3, 0.4)).clamp(0.0, 1.0);
    t.serial_frac = (t.serial_frac * jitter(&name, 4, 0.5)).clamp(0.0, 0.9);
    t.locality.reuse_factor *= jitter(&name, 5, 0.3);
    KernelSpec::new(name, app, suite, module, t)
}

/// One OpenMP loop catalog entry.
struct OmpEntry(&'static str, Suite, &'static [Arch]);

fn omp_entries() -> Vec<OmpEntry> {
    use Arch::*;
    use Suite::*;
    vec![
        // --- PolyBench (paper lists 28 apps) ---
        OmpEntry(
            "2mm",
            Polybench,
            &[Matmul { fused: 1 }, Matmul { fused: 2 }],
        ),
        OmpEntry("3mm", Polybench, &[Matmul { fused: 3 }]),
        OmpEntry(
            "atax",
            Polybench,
            &[Reduction {
                n_src: 2,
                heavy: false,
            }],
        ),
        OmpEntry("adi", Polybench, &[Triangular { serial: 0.06 }]),
        OmpEntry(
            "bicg",
            Polybench,
            &[Reduction {
                n_src: 3,
                heavy: false,
            }],
        ),
        OmpEntry("cholesky", Polybench, &[Triangular { serial: 0.08 }]),
        OmpEntry(
            "convolution-2d",
            Polybench,
            &[Stencil { dims: 2, points: 9 }],
        ),
        OmpEntry(
            "convolution-3d",
            Polybench,
            &[Stencil {
                dims: 3,
                points: 27,
            }],
        ),
        OmpEntry(
            "correlation",
            Polybench,
            &[Reduction {
                n_src: 2,
                heavy: true,
            }],
        ),
        OmpEntry(
            "covariance",
            Polybench,
            &[Reduction {
                n_src: 2,
                heavy: false,
            }],
        ),
        OmpEntry("doitgen", Polybench, &[Matmul { fused: 1 }]),
        OmpEntry("durbin", Polybench, &[Triangular { serial: 0.12 }]),
        OmpEntry("fdtd-2d", Polybench, &[Stencil { dims: 2, points: 5 }]),
        OmpEntry("fdtd-apml", Polybench, &[Stencil { dims: 3, points: 7 }]),
        OmpEntry("gemm", Polybench, &[Matmul { fused: 1 }]),
        OmpEntry("gemver", Polybench, &[Streaming { n_src: 4, flops: 3 }]),
        OmpEntry(
            "gesummv",
            Polybench,
            &[Reduction {
                n_src: 3,
                heavy: false,
            }],
        ),
        OmpEntry("gramschmidt", Polybench, &[Triangular { serial: 0.1 }]),
        OmpEntry("jacobi-1d", Polybench, &[Streaming { n_src: 1, flops: 2 }]),
        OmpEntry("jacobi-2d", Polybench, &[Stencil { dims: 2, points: 5 }]),
        OmpEntry("lu", Polybench, &[Triangular { serial: 0.07 }]),
        OmpEntry(
            "mvt",
            Polybench,
            &[Reduction {
                n_src: 2,
                heavy: false,
            }],
        ),
        OmpEntry("seidel-2d", Polybench, &[Stencil { dims: 2, points: 9 }]),
        OmpEntry("symm", Polybench, &[Matmul { fused: 2 }]),
        OmpEntry("syrk", Polybench, &[Matmul { fused: 1 }]),
        OmpEntry("syr2k", Polybench, &[Matmul { fused: 2 }]),
        // The parallel trisolv is slower than serial (paper §4.1.3): heavy
        // serial fraction dominates.
        OmpEntry("trisolv", Polybench, &[Triangular { serial: 0.75 }]),
        OmpEntry("trmm", Polybench, &[Matmul { fused: 1 }]),
        // --- Rodinia ---
        OmpEntry(
            "b+tree",
            Rodinia,
            &[Gather {
                cv: 0.4,
                entropy: 0.6,
            }],
        ),
        OmpEntry("backprop", Rodinia, &[Matmul { fused: 1 }]),
        OmpEntry(
            "bfs",
            Rodinia,
            &[Gather {
                cv: 0.6,
                entropy: 0.7,
            }],
        ),
        OmpEntry(
            "cfd",
            Rodinia,
            &[Stencil {
                dims: 3,
                points: 13,
            }],
        ),
        OmpEntry("gaussian", Rodinia, &[Triangular { serial: 0.05 }]),
        OmpEntry("hotspot", Rodinia, &[Stencil { dims: 2, points: 5 }]),
        OmpEntry(
            "kmeans",
            Rodinia,
            &[
                Reduction {
                    n_src: 2,
                    heavy: true,
                },
                Histogram,
            ],
        ),
        OmpEntry("lavaMD", Rodinia, &[Nbody { neighbors: 64 }]),
        OmpEntry("leukocyte", Rodinia, &[Nbody { neighbors: 32 }]),
        OmpEntry("lud", Rodinia, &[Triangular { serial: 0.06 }]),
        OmpEntry(
            "nn",
            Rodinia,
            &[Reduction {
                n_src: 2,
                heavy: true,
            }],
        ),
        OmpEntry("nw", Rodinia, &[Branchy { entropy: 0.35 }]),
        OmpEntry("needle", Rodinia, &[Branchy { entropy: 0.4 }]),
        OmpEntry(
            "particlefilter",
            Rodinia,
            &[Gather {
                cv: 0.5,
                entropy: 0.5,
            }],
        ),
        OmpEntry("pathfinder", Rodinia, &[Branchy { entropy: 0.3 }]),
        OmpEntry("srad", Rodinia, &[Stencil { dims: 2, points: 5 }]),
        OmpEntry("streamcluster", Rodinia, &[Histogram]),
        // --- NAS ---
        OmpEntry(
            "BT",
            Nas,
            &[Stencil {
                dims: 3,
                points: 13,
            }],
        ),
        OmpEntry(
            "CG",
            Nas,
            &[Gather {
                cv: 0.3,
                entropy: 0.4,
            }],
        ),
        OmpEntry(
            "EP",
            Nas,
            &[Reduction {
                n_src: 1,
                heavy: true,
            }],
        ),
        OmpEntry("FT", Nas, &[Fft]),
        OmpEntry("LU", Nas, &[Triangular { serial: 0.07 }]),
        OmpEntry("MG", Nas, &[Stencil { dims: 3, points: 7 }]),
        OmpEntry("SP", Nas, &[Stencil { dims: 3, points: 9 }]),
        // --- STREAM: the four classic loops ---
        OmpEntry(
            "stream",
            Stream,
            &[
                Streaming { n_src: 1, flops: 0 }, // copy
                Streaming { n_src: 1, flops: 1 }, // scale
                Streaming { n_src: 2, flops: 0 }, // add
                Streaming { n_src: 2, flops: 1 }, // triad
            ],
        ),
        // --- DataRaceBench ---
        OmpEntry("DRB045", DataRaceBench, &[Streaming { n_src: 1, flops: 1 }]),
        OmpEntry("DRB046", DataRaceBench, &[Streaming { n_src: 2, flops: 2 }]),
        OmpEntry(
            "DRB061",
            DataRaceBench,
            &[Reduction {
                n_src: 1,
                heavy: false,
            }],
        ),
        OmpEntry(
            "DRB062",
            DataRaceBench,
            &[Reduction {
                n_src: 2,
                heavy: false,
            }],
        ),
        OmpEntry("DRB093", DataRaceBench, &[Stencil { dims: 2, points: 5 }]),
        OmpEntry("DRB094", DataRaceBench, &[Stencil { dims: 2, points: 9 }]),
        OmpEntry("DRB121", DataRaceBench, &[Histogram]),
        // --- LULESH proxy app ---
        OmpEntry(
            "lulesh",
            Lulesh,
            &[
                Stencil { dims: 3, points: 8 },
                Nbody { neighbors: 27 },
                Reduction {
                    n_src: 2,
                    heavy: true,
                },
            ],
        ),
    ]
}

/// The full OpenMP catalog: every loop of every Table-1 OpenMP app.
pub fn openmp_catalog() -> Vec<KernelSpec> {
    omp_entries()
        .iter()
        .flat_map(|OmpEntry(app, suite, archs)| {
            archs
                .iter()
                .enumerate()
                .map(|(li, &a)| make_spec(app, li, *suite, a))
        })
        .collect()
}

/// The 45-loop thread-prediction dataset of §4.1.3 (Fig. 1b: "across 45
/// OpenMP loops"): a deterministic 45-loop subset of the catalog that
/// keeps at least one loop per suite.
pub fn openmp_thread_dataset() -> Vec<KernelSpec> {
    let all = openmp_catalog();
    // Keep every suite represented; drop surplus loops of multi-loop apps
    // first, then trim deterministically by name hash.
    let mut specs: Vec<KernelSpec> = all;
    specs.sort_by(|a, b| a.name.cmp(&b.name));
    if specs.len() > 45 {
        // Drop later loops (l1, l2, ...) of multi-loop apps first.
        let mut keep: Vec<KernelSpec> = Vec::new();
        let mut dropped = specs.len() - 45;
        for s in specs.into_iter().rev() {
            if dropped > 0 && !s.name.ends_with("/l0") {
                dropped -= 1;
                continue;
            }
            keep.push(s);
        }
        keep.reverse();
        // Still too many? Trim from the tail.
        keep.truncate(45);
        specs = keep;
    }
    specs
}

/// The 30 applications (PolyBench + Rodinia + LULESH) of the
/// large-search-space experiment (§4.1.4, Fig. 7), one spec per app
/// (loop 0).
pub fn large_space_apps() -> Vec<KernelSpec> {
    let mut apps: Vec<KernelSpec> = openmp_catalog()
        .into_iter()
        .filter(|s| {
            matches!(s.suite, Suite::Polybench | Suite::Rodinia | Suite::Lulesh)
                && s.name.ends_with("/l0")
        })
        .collect();
    apps.sort_by(|a, b| a.name.cmp(&b.name));
    // 28 PolyBench + 17 Rodinia + LULESH = 46 apps; the paper uses a
    // 30-app subset. Deterministic selection: all of LULESH, then
    // alternating PolyBench/Rodinia by name order.
    let lulesh: Vec<KernelSpec> = apps
        .iter()
        .filter(|s| s.suite == Suite::Lulesh)
        .cloned()
        .collect();
    let mut poly: Vec<KernelSpec> = apps
        .iter()
        .filter(|s| s.suite == Suite::Polybench)
        .cloned()
        .collect();
    let mut rod: Vec<KernelSpec> = apps
        .iter()
        .filter(|s| s.suite == Suite::Rodinia)
        .cloned()
        .collect();
    // Guarantee the apps the paper's figures single out (2mm for Fig. 8
    // and the tuning-cost comparison, trisolv as the known worst case).
    let required = ["2mm", "trisolv", "gemm", "lu", "cholesky"];
    let mut picked_poly: Vec<KernelSpec> = Vec::new();
    for r in required {
        if let Some(pos) = poly.iter().position(|s| s.app == r) {
            picked_poly.push(poly.remove(pos));
        }
    }
    picked_poly.extend(poly.into_iter().take(17 - picked_poly.len().min(17)));
    picked_poly.sort_by(|a, b| a.name.cmp(&b.name));
    let poly = picked_poly;
    rod.truncate(12);
    let mut out = lulesh;
    out.extend(poly);
    out.extend(rod);
    out.truncate(30);
    out
}

/// 25 PolyBench kernels for the µ-architecture portability experiment
/// (§4.1.5).
pub fn polybench_portability_kernels() -> Vec<KernelSpec> {
    let mut v: Vec<KernelSpec> = openmp_catalog()
        .into_iter()
        .filter(|s| s.suite == Suite::Polybench && s.name.ends_with("/l0"))
        .collect();
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v.truncate(25);
    v
}

/// One OpenCL app entry: suite, app name, base archetype, and how many
/// kernel variants the app contributes.
struct OclEntry(&'static str, Suite, Arch, usize);

fn ocl_entries() -> Vec<OclEntry> {
    use Arch::*;
    use Suite::*;
    vec![
        // --- AMD SDK (12 apps) ---
        OclEntry("BinomialOption", AmdSdk, Branchy { entropy: 0.3 }, 4),
        OclEntry("BitonicSort", AmdSdk, Sort, 5),
        OclEntry(
            "BlackScholes",
            AmdSdk,
            Reduction {
                n_src: 2,
                heavy: true,
            },
            4,
        ),
        OclEntry("FastWalshTransform", AmdSdk, Fft, 4),
        OclEntry("FloydWarshall", AmdSdk, Branchy { entropy: 0.25 }, 4),
        OclEntry("MatrixMultiplication", AmdSdk, Matmul { fused: 1 }, 5),
        OclEntry(
            "MatrixTranspose",
            AmdSdk,
            Streaming { n_src: 1, flops: 0 },
            4,
        ),
        OclEntry("PrefixSum", AmdSdk, Sort, 4),
        OclEntry(
            "Reduction",
            AmdSdk,
            Reduction {
                n_src: 1,
                heavy: false,
            },
            4,
        ),
        OclEntry("ScanLargeArrays", AmdSdk, Sort, 4),
        OclEntry(
            "SimpleConvolution",
            AmdSdk,
            Stencil { dims: 2, points: 9 },
            4,
        ),
        OclEntry("SobelFilter", AmdSdk, Stencil { dims: 2, points: 9 }, 4),
        // --- NPB OpenCL (7 apps) ---
        OclEntry(
            "BT",
            Npb,
            Stencil {
                dims: 3,
                points: 13,
            },
            5,
        ),
        OclEntry(
            "CG",
            Npb,
            Gather {
                cv: 0.3,
                entropy: 0.4,
            },
            5,
        ),
        OclEntry(
            "EP",
            Npb,
            Reduction {
                n_src: 1,
                heavy: true,
            },
            4,
        ),
        OclEntry("FT", Npb, Fft, 4),
        OclEntry("LU", Npb, Triangular { serial: 0.07 }, 4),
        OclEntry("MG", Npb, Stencil { dims: 3, points: 7 }, 4),
        OclEntry("SP", Npb, Stencil { dims: 3, points: 9 }, 4),
        // --- NVIDIA SDK (6 apps) ---
        OclEntry(
            "DotProduct",
            NvidiaSdk,
            Reduction {
                n_src: 2,
                heavy: false,
            },
            4,
        ),
        OclEntry("FDTD3D", NvidiaSdk, Stencil { dims: 3, points: 7 }, 4),
        OclEntry(
            "MatVecMul",
            NvidiaSdk,
            Reduction {
                n_src: 2,
                heavy: false,
            },
            4,
        ),
        OclEntry("MatrixMul", NvidiaSdk, Matmul { fused: 1 }, 5),
        OclEntry("MersenneTwister", NvidiaSdk, Fft, 4),
        OclEntry("VectorAdd", NvidiaSdk, Streaming { n_src: 2, flops: 0 }, 3),
        // --- Parboil (6 apps) ---
        OclEntry(
            "BFS",
            Parboil,
            Gather {
                cv: 0.6,
                entropy: 0.7,
            },
            4,
        ),
        OclEntry("cutcp", Parboil, Nbody { neighbors: 48 }, 4),
        OclEntry(
            "lbm",
            Parboil,
            Stencil {
                dims: 3,
                points: 19,
            },
            4,
        ),
        OclEntry("sad", Parboil, Branchy { entropy: 0.3 }, 4),
        OclEntry(
            "spmv",
            Parboil,
            Gather {
                cv: 0.4,
                entropy: 0.5,
            },
            4,
        ),
        OclEntry("stencil", Parboil, Stencil { dims: 3, points: 7 }, 4),
        // --- PolyBench-GPU (15 apps) ---
        OclEntry("2mm", PolybenchGpu, Matmul { fused: 2 }, 3),
        OclEntry("3mm", PolybenchGpu, Matmul { fused: 3 }, 3),
        OclEntry(
            "atax",
            PolybenchGpu,
            Reduction {
                n_src: 2,
                heavy: false,
            },
            2,
        ),
        OclEntry(
            "bicg",
            PolybenchGpu,
            Reduction {
                n_src: 3,
                heavy: false,
            },
            2,
        ),
        OclEntry(
            "correlation",
            PolybenchGpu,
            Reduction {
                n_src: 2,
                heavy: true,
            },
            3,
        ),
        OclEntry(
            "covariance",
            PolybenchGpu,
            Reduction {
                n_src: 2,
                heavy: false,
            },
            3,
        ),
        OclEntry("fdtd2d", PolybenchGpu, Stencil { dims: 2, points: 5 }, 3),
        OclEntry("gemm", PolybenchGpu, Matmul { fused: 1 }, 3),
        OclEntry(
            "gesummv",
            PolybenchGpu,
            Reduction {
                n_src: 3,
                heavy: false,
            },
            2,
        ),
        OclEntry("gramschmidt", PolybenchGpu, Triangular { serial: 0.1 }, 3),
        OclEntry(
            "mvt",
            PolybenchGpu,
            Reduction {
                n_src: 2,
                heavy: false,
            },
            2,
        ),
        OclEntry("syr2k", PolybenchGpu, Matmul { fused: 2 }, 3),
        OclEntry("syrk", PolybenchGpu, Matmul { fused: 1 }, 3),
        OclEntry(
            "convolution2d",
            PolybenchGpu,
            Stencil { dims: 2, points: 9 },
            3,
        ),
        OclEntry(
            "convolution3d",
            PolybenchGpu,
            Stencil {
                dims: 3,
                points: 27,
            },
            3,
        ),
        // --- Rodinia OpenCL (17 apps) ---
        OclEntry(
            "b+tree",
            Rodinia,
            Gather {
                cv: 0.4,
                entropy: 0.6,
            },
            3,
        ),
        OclEntry("backprop", Rodinia, Matmul { fused: 1 }, 3),
        OclEntry(
            "bfs",
            Rodinia,
            Gather {
                cv: 0.6,
                entropy: 0.7,
            },
            3,
        ),
        OclEntry(
            "cfd",
            Rodinia,
            Stencil {
                dims: 3,
                points: 13,
            },
            4,
        ),
        OclEntry("gaussian", Rodinia, Triangular { serial: 0.05 }, 3),
        OclEntry("hotspot", Rodinia, Stencil { dims: 2, points: 5 }, 3),
        OclEntry(
            "kmeans",
            Rodinia,
            Reduction {
                n_src: 2,
                heavy: true,
            },
            3,
        ),
        OclEntry("lavaMD", Rodinia, Nbody { neighbors: 64 }, 3),
        OclEntry("leukocyte", Rodinia, Nbody { neighbors: 32 }, 3),
        OclEntry("lud", Rodinia, Triangular { serial: 0.06 }, 3),
        OclEntry(
            "nn",
            Rodinia,
            Reduction {
                n_src: 2,
                heavy: true,
            },
            2,
        ),
        OclEntry("nw", Rodinia, Branchy { entropy: 0.35 }, 3),
        OclEntry(
            "particlefilter",
            Rodinia,
            Gather {
                cv: 0.5,
                entropy: 0.5,
            },
            3,
        ),
        OclEntry("pathfinder", Rodinia, Branchy { entropy: 0.3 }, 2),
        OclEntry("srad", Rodinia, Stencil { dims: 2, points: 5 }, 3),
        OclEntry("streamcluster", Rodinia, Histogram, 3),
        OclEntry("myocyte", Rodinia, Nbody { neighbors: 16 }, 2),
        // --- SHOC (12 apps) ---
        OclEntry(
            "BFS",
            Shoc,
            Gather {
                cv: 0.6,
                entropy: 0.7,
            },
            3,
        ),
        OclEntry("FFT", Shoc, Fft, 4),
        OclEntry("GEMM", Shoc, Matmul { fused: 1 }, 4),
        OclEntry("MD", Shoc, Nbody { neighbors: 48 }, 3),
        OclEntry("MD5", Shoc, Sort, 3),
        OclEntry(
            "Reduction",
            Shoc,
            Reduction {
                n_src: 1,
                heavy: false,
            },
            3,
        ),
        OclEntry(
            "S3D",
            Shoc,
            Reduction {
                n_src: 3,
                heavy: true,
            },
            4,
        ),
        OclEntry("Scan", Shoc, Sort, 3),
        OclEntry("Sort", Shoc, Sort, 3),
        OclEntry(
            "Spmv",
            Shoc,
            Gather {
                cv: 0.4,
                entropy: 0.5,
            },
            3,
        ),
        OclEntry("Stencil2D", Shoc, Stencil { dims: 2, points: 9 }, 3),
        OclEntry("Triad", Shoc, Streaming { n_src: 2, flops: 1 }, 2),
    ]
}

/// The OpenCL kernel catalog (~256 unique kernels). Variants of an app
/// perturb the archetype parameters so each kernel has distinct IR.
pub fn opencl_catalog() -> Vec<KernelSpec> {
    use Arch::*;
    let mut out = Vec::new();
    for OclEntry(app, suite, base, variants) in ocl_entries() {
        for v in 0..variants {
            // Perturb the archetype per variant so the IR differs.
            let a = match (base, v % 4) {
                (Streaming { n_src, flops }, k) => Streaming {
                    n_src: n_src + k % 2,
                    flops: flops + k,
                },
                (Matmul { fused }, k) => Matmul {
                    fused: fused + k % 2,
                },
                (Stencil { dims, points }, k) => Stencil {
                    dims,
                    points: points + 2 * k,
                },
                (Reduction { n_src, heavy }, k) => Reduction {
                    n_src: n_src + k % 2,
                    heavy: heavy ^ (k == 3),
                },
                (Triangular { serial }, k) => Triangular {
                    serial: serial * (1.0 + 0.3 * k as f64),
                },
                (Gather { cv, entropy }, k) => Gather {
                    cv: cv * (1.0 + 0.2 * k as f64),
                    entropy: (entropy + 0.05 * k as f64).min(1.0),
                },
                (Histogram, _) => Histogram,
                (Branchy { entropy }, k) => Branchy {
                    entropy: (entropy + 0.08 * k as f64).min(1.0),
                },
                (Nbody { neighbors }, k) => Nbody {
                    neighbors: neighbors + 8 * k as i64,
                },
                (Sort, _) => Sort,
                (Fft, _) => Fft,
            };
            out.push(make_spec(app, v, suite, a));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn openmp_catalog_covers_all_suites() {
        let cat = openmp_catalog();
        let suites: HashSet<Suite> = cat.iter().map(|s| s.suite).collect();
        for s in [
            Suite::Polybench,
            Suite::Rodinia,
            Suite::Nas,
            Suite::Stream,
            Suite::DataRaceBench,
            Suite::Lulesh,
        ] {
            assert!(suites.contains(&s), "missing suite {s:?}");
        }
        assert!(cat.len() >= 60, "catalog too small: {}", cat.len());
    }

    #[test]
    fn kernel_names_are_unique() {
        for cat in [openmp_catalog(), opencl_catalog()] {
            let names: HashSet<&str> = cat.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(names.len(), cat.len(), "duplicate kernel names");
        }
    }

    #[test]
    fn thread_dataset_is_45_loops() {
        let ds = openmp_thread_dataset();
        assert_eq!(ds.len(), 45);
        let suites: HashSet<Suite> = ds.iter().map(|s| s.suite).collect();
        assert!(suites.len() >= 5, "suites collapsed: {suites:?}");
    }

    #[test]
    fn large_space_is_30_apps_from_polybench_rodinia_lulesh() {
        let apps = large_space_apps();
        assert_eq!(apps.len(), 30);
        assert!(apps
            .iter()
            .all(|s| matches!(s.suite, Suite::Polybench | Suite::Rodinia | Suite::Lulesh)));
        assert!(apps.iter().any(|s| s.suite == Suite::Lulesh));
        assert!(
            apps.iter().any(|s| s.app == "trisolv"),
            "trisolv must be in (worst case)"
        );
        // One loop per app.
        let names: HashSet<&str> = apps.iter().map(|s| s.app.as_str()).collect();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn portability_set_is_25_polybench() {
        let v = polybench_portability_kernels();
        assert_eq!(v.len(), 25);
        assert!(v.iter().all(|s| s.suite == Suite::Polybench));
    }

    #[test]
    fn opencl_catalog_size_near_256() {
        let cat = opencl_catalog();
        assert!(
            (230..=280).contains(&cat.len()),
            "OpenCL catalog has {} kernels",
            cat.len()
        );
        let suites: HashSet<Suite> = cat.iter().map(|s| s.suite).collect();
        assert_eq!(suites.len(), 7, "expected seven OpenCL suites");
    }

    #[test]
    fn all_specs_verify_and_have_ir() {
        for spec in openmp_catalog().iter().chain(opencl_catalog().iter()) {
            assert!(spec.function().num_instrs() > 5, "{} too small", spec.name);
            mga_ir::verify_module(&spec.module).unwrap();
        }
    }

    #[test]
    fn jitter_makes_same_archetype_kernels_differ() {
        let cat = openmp_catalog();
        let gemm = cat.iter().find(|s| s.app == "gemm").unwrap();
        let syrk = cat.iter().find(|s| s.app == "syrk").unwrap();
        assert_ne!(gemm.traits.bytes_per_iter, syrk.traits.bytes_per_iter);
    }

    #[test]
    fn trisolv_keeps_high_serial_fraction() {
        let cat = openmp_catalog();
        let t = cat.iter().find(|s| s.app == "trisolv").unwrap();
        assert!(
            t.traits.serial_frac > 0.35,
            "trisolv serial_frac {} too low to reproduce the paper's fold-1 anomaly",
            t.traits.serial_frac
        );
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = openmp_catalog();
        let b = openmp_catalog();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.traits, y.traits);
        }
    }
}
