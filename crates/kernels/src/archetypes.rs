//! Kernel-family archetypes.
//!
//! Every benchmark in the paper's Table 1 belongs to a small set of
//! computational families; the catalog instantiates these factories with
//! per-benchmark parameters (depth, operand counts, intensity, locality)
//! so each kernel gets its own IR — different opcode mixes, loop shapes,
//! data/control/call flow — plus matching simulator traits.

use crate::nest::{idx2, idx3, kernel_params, Bound, Level, NestBuilder};
use crate::spec::{Imbalance, Locality, Traits, TripCount};
use mga_ir::builder::FunctionBuilder;
use mga_ir::instr::CmpPred;
use mga_ir::{Module, Operand, Param, Type};

#[allow(clippy::too_many_arguments)] // mirrors the Traits struct field-for-field
fn traits(
    trip: TripCount,
    inner: TripCount,
    ws_bytes_per_n: f64,
    ws_power: f64,
    bytes_per_iter: f64,
    locality: Locality,
    imbalance: Imbalance,
    reduction: bool,
    branch_entropy: f64,
    serial_frac: f64,
) -> Traits {
    Traits {
        trip,
        inner,
        ws_bytes_per_n,
        ws_power,
        bytes_per_iter,
        locality,
        imbalance,
        reduction,
        branch_entropy,
        serial_frac,
        sync_us_per_iter: 0.0,
    }
}

/// STREAM-style bandwidth kernel: `dst[i] = f(srcs[i]...)` with
/// `flops` float ops per element over `n_src` source arrays.
pub fn streaming(name: &str, n_src: usize, flops: usize) -> (Module, Traits) {
    let mut m = Module::new(name);
    let arrays: Vec<(String, Type)> = (0..n_src)
        .map(|k| (format!("src{k}"), Type::F64))
        .chain(std::iter::once(("dst".to_string(), Type::F64)))
        .collect();
    let array_refs: Vec<(&str, Type)> = arrays
        .iter()
        .map(|(s, t)| (s.as_str(), t.clone()))
        .collect();
    let mut fb = FunctionBuilder::new(name, kernel_params(&array_refs), Type::Void);
    fb.set_parallel(false);
    NestBuilder::build(&mut fb, &[Level { bound: Bound::N }], &mut |ctx| {
        let i = ctx.ivs[0];
        let mut acc: Option<Operand> = None;
        for k in 0..n_src {
            let p = ctx.b.gep(ctx.b.param(1 + k as u32), i);
            let v = ctx.b.load(p);
            acc = Some(match acc {
                None => v,
                Some(a) => ctx.b.fadd(a, v),
            });
        }
        let mut v = acc.unwrap_or_else(|| ctx.b.const_f64(0.0));
        for f in 0..flops {
            let c = ctx.b.const_f64(1.5 + f as f64);
            v = ctx.b.fmul(v, c);
        }
        let pd = ctx.b.gep(ctx.b.param(1 + n_src as u32), i);
        ctx.b.store(v, pd);
    });
    fb.ret_void();
    m.add_function(fb.finish());
    let bytes = 8.0 * (n_src + 1) as f64;
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(1.0),
        bytes,
        1.0,
        bytes,
        Locality::streaming(),
        Imbalance::Uniform,
        false,
        0.02,
        0.005,
    );
    (m, t)
}

/// Dense matrix multiply (`C += A·B`), optionally chained (2mm/3mm do two
/// or three of these); `depth = 3` nest with tile reuse.
pub fn matmul(name: &str, fused_muls: usize) -> (Module, Traits) {
    let mut m = Module::new(name);
    let mut fb = FunctionBuilder::new(
        name,
        kernel_params(&[("a", Type::F64), ("b", Type::F64), ("c", Type::F64)]),
        Type::Void,
    );
    fb.set_parallel(false);
    NestBuilder::build(
        &mut fb,
        &[
            Level { bound: Bound::N },
            Level { bound: Bound::N },
            Level { bound: Bound::N },
        ],
        &mut |ctx| {
            let (i, j, k) = (ctx.ivs[0], ctx.ivs[1], ctx.ivs[2]);
            let n = ctx.n;
            let ia = idx2(ctx.b, i, k, n);
            let ib = idx2(ctx.b, k, j, n);
            let ic = idx2(ctx.b, i, j, n);
            let pa = ctx.b.gep(ctx.b.param(1), ia);
            let pb = ctx.b.gep(ctx.b.param(2), ib);
            let pc = ctx.b.gep(ctx.b.param(3), ic);
            let va = ctx.b.load(pa);
            let vb = ctx.b.load(pb);
            let mut prod = ctx.b.fmul(va, vb);
            for extra in 0..fused_muls.saturating_sub(1) {
                let c = ctx.b.const_f64(0.9 + extra as f64 * 0.1);
                prod = ctx.b.fmul(prod, c);
            }
            let vc = ctx.b.load(pc);
            let s = ctx.b.fadd(vc, prod);
            ctx.b.store(s, pc);
        },
    );
    fb.ret_void();
    m.add_function(fb.finish());
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Quadratic(1.0),
        24.0,
        2.0,
        10.0, // tile reuse keeps most traffic in cache
        Locality::tiled(8.0, 0.4),
        Imbalance::Uniform,
        false,
        0.02,
        0.01,
    );
    (m, t)
}

/// Stencil sweep (`jacobi`, `fdtd`, `convolution`, `hotspot`): `points`
/// neighbor loads around each cell, 2-D or 3-D.
pub fn stencil(name: &str, dims: usize, points: usize) -> (Module, Traits) {
    assert!(dims == 2 || dims == 3);
    let mut m = Module::new(name);
    let mut fb = FunctionBuilder::new(
        name,
        kernel_params(&[("in", Type::F64), ("out", Type::F64)]),
        Type::Void,
    );
    fb.set_parallel(false);
    let levels: Vec<Level> = (0..dims).map(|_| Level { bound: Bound::N }).collect();
    NestBuilder::build(&mut fb, &levels, &mut |ctx| {
        let n = ctx.n;
        let center = if dims == 2 {
            idx2(ctx.b, ctx.ivs[0], ctx.ivs[1], n)
        } else {
            idx3(ctx.b, ctx.ivs[0], ctx.ivs[1], ctx.ivs[2], n)
        };
        let mut acc = {
            let p = ctx.b.gep(ctx.b.param(1), center);
            ctx.b.load(p)
        };
        for pt in 1..points {
            // Offset neighbor: center + pt (modular enough for IR purposes;
            // the real index arithmetic is irrelevant to modeling).
            let off = ctx.b.const_i64(pt as i64);
            let idx = ctx.b.add(center, off);
            let p = ctx.b.gep(ctx.b.param(1), idx);
            let v = ctx.b.load(p);
            acc = ctx.b.fadd(acc, v);
        }
        let w = ctx.b.const_f64(1.0 / points as f64);
        let avg = ctx.b.fmul(acc, w);
        let po = ctx.b.gep(ctx.b.param(2), center);
        ctx.b.store(avg, po);
    });
    fb.ret_void();
    m.add_function(fb.finish());
    let (power, inner) = if dims == 2 {
        (2.0, TripCount::Linear(1.0))
    } else {
        (3.0, TripCount::Quadratic(1.0))
    };
    let t = traits(
        TripCount::Linear(1.0),
        inner,
        16.0,
        power,
        8.0 + points as f64, // row reuse
        Locality::tiled(points as f64 / 2.0, 0.0),
        Imbalance::Uniform,
        false,
        0.03,
        0.01,
    );
    (m, t)
}

/// Reduction kernel (`dot`, `kmeans` distance accumulation, `cg` inner
/// products): sums `n_src` arrays into a scalar, with optional heavy math.
pub fn reduction(name: &str, n_src: usize, heavy_math: bool) -> (Module, Traits) {
    let mut m = Module::new(name);
    let arrays: Vec<(String, Type)> = (0..n_src)
        .map(|k| (format!("src{k}"), Type::F64))
        .chain(std::iter::once(("out".to_string(), Type::F64)))
        .collect();
    let refs: Vec<(&str, Type)> = arrays
        .iter()
        .map(|(s, t)| (s.as_str(), t.clone()))
        .collect();
    let mut fb = FunctionBuilder::new(name, kernel_params(&refs), Type::Void);
    fb.set_parallel(true);
    NestBuilder::build(&mut fb, &[Level { bound: Bound::N }], &mut |ctx| {
        let i = ctx.ivs[0];
        let mut acc: Option<Operand> = None;
        for k in 0..n_src {
            let p = ctx.b.gep(ctx.b.param(1 + k as u32), i);
            let v = ctx.b.load(p);
            acc = Some(match acc {
                None => v,
                Some(a) => ctx.b.fmul(a, v),
            });
        }
        let mut v = acc.unwrap_or_else(|| ctx.b.const_f64(1.0));
        if heavy_math {
            v = ctx.b.sqrt(v);
        }
        // Accumulate into out[0] via atomic add (the reduction combiner).
        let zero = ctx.b.const_i64(0);
        let po = ctx.b.gep(ctx.b.param(1 + n_src as u32), zero);
        ctx.b.atomic_add(po, v);
    });
    fb.ret_void();
    m.add_function(fb.finish());
    // Loads of each source array plus accumulator/centroid traffic.
    let bytes = 8.0 * n_src as f64 + 16.0;
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(1.0),
        bytes,
        1.0,
        bytes,
        Locality::streaming(),
        Imbalance::Uniform,
        true,
        0.02,
        0.02,
    );
    (m, t)
}

/// Triangular sweep (`cholesky`, `lu`, `trisolv`, `gramschmidt`): inner
/// loop bounded by the outer induction variable → inherent imbalance.
pub fn triangular(name: &str, serial_frac: f64) -> (Module, Traits) {
    // Wavefront dependence: heavily serial triangular solves barrier
    // between dependent rows, which is what makes trisolv's parallel
    // version lose to serial execution (paper §4.1.3).
    let sync_us = if serial_frac > 0.3 { 0.9 } else { 0.04 };
    let mut m = Module::new(name);
    let mut fb = FunctionBuilder::new(
        name,
        kernel_params(&[("a", Type::F64), ("x", Type::F64)]),
        Type::Void,
    );
    fb.set_parallel(false);
    NestBuilder::build(
        &mut fb,
        &[
            Level { bound: Bound::N },
            Level {
                bound: Bound::Outer,
            },
        ],
        &mut |ctx| {
            let (i, j) = (ctx.ivs[0], ctx.ivs[1]);
            let n = ctx.n;
            let ia = idx2(ctx.b, i, j, n);
            let pa = ctx.b.gep(ctx.b.param(1), ia);
            let va = ctx.b.load(pa);
            let px = ctx.b.gep(ctx.b.param(2), j);
            let vx = ctx.b.load(px);
            let prod = ctx.b.fmul(va, vx);
            let pi = ctx.b.gep(ctx.b.param(2), i);
            let vi = ctx.b.load(pi);
            let s = ctx.b.fsub(vi, prod);
            ctx.b.store(s, pi);
            // Row dependence: the wavefront barrier is part of the code,
            // so the static modalities can see what the counters cannot.
            ctx.b.barrier();
        },
    );
    fb.ret_void();
    m.add_function(fb.finish());
    let mut t = traits(
        TripCount::Linear(1.0),
        TripCount::Linear(0.5),
        24.0,
        2.0,
        24.0,
        Locality::tiled(2.0, 0.2),
        Imbalance::Triangular,
        false,
        0.05,
        serial_frac,
    );
    t.sync_us_per_iter = sync_us;
    (m, t)
}

/// Sparse/indirect kernel (`spmv`, `bfs`, `b+tree`): index loads feed
/// data loads; unpredictable branches; random imbalance.
pub fn gather(name: &str, cv: f64, entropy: f64) -> (Module, Traits) {
    let mut m = Module::new(name);
    let mut params = kernel_params(&[("vals", Type::F64), ("out", Type::F64)]);
    params.push(Param {
        name: "idx".into(),
        ty: Type::I64.ptr(),
    });
    let mut fb = FunctionBuilder::new(name, params, Type::Void);
    fb.set_parallel(false);
    NestBuilder::build(&mut fb, &[Level { bound: Bound::N }], &mut |ctx| {
        let i = ctx.ivs[0];
        // col = idx[i]; v = vals[col]
        let pidx = ctx.b.gep(ctx.b.param(3), i);
        let col = ctx.b.load(pidx);
        let pval = ctx.b.gep(ctx.b.param(1), col);
        let v = ctx.b.load(pval);
        // data-dependent branch: out[i] += v if v > 0
        let zero = ctx.b.const_f64(0.0);
        let pos = ctx.b.fcmp(CmpPred::Gt, v, zero);
        let picked = ctx.b.select(pos, v, zero);
        let po = ctx.b.gep(ctx.b.param(2), i);
        let cur = ctx.b.load(po);
        let s = ctx.b.fadd(cur, picked);
        ctx.b.store(s, po);
    });
    fb.ret_void();
    m.add_function(fb.finish());
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(1.0),
        24.0,
        1.0,
        32.0,
        Locality {
            streaming_frac: 0.7,
            reuse_factor: 0.5,
            shared_frac: 0.3,
        },
        Imbalance::Random(cv),
        false,
        entropy,
        0.02,
    );
    (m, t)
}

/// Histogram/scatter with atomics (`histogram`, `streamcluster` assign).
pub fn histogram(name: &str) -> (Module, Traits) {
    let mut m = Module::new(name);
    let mut params = kernel_params(&[("bins", Type::F64)]);
    params.push(Param {
        name: "keys".into(),
        ty: Type::I64.ptr(),
    });
    let mut fb = FunctionBuilder::new(name, params, Type::Void);
    fb.set_parallel(false);
    NestBuilder::build(&mut fb, &[Level { bound: Bound::N }], &mut |ctx| {
        let i = ctx.ivs[0];
        let pk = ctx.b.gep(ctx.b.param(2), i);
        let key = ctx.b.load(pk);
        let mask = ctx.b.const_i64(1023);
        let bin = ctx.b.and(key, mask);
        let pb = ctx.b.gep(ctx.b.param(1), bin);
        let one = ctx.b.const_f64(1.0);
        ctx.b.atomic_add(pb, one);
    });
    fb.ret_void();
    m.add_function(fb.finish());
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(1.0),
        8.0,
        1.0,
        16.0,
        Locality {
            streaming_frac: 0.8,
            reuse_factor: 1.0,
            shared_frac: 0.5,
        },
        Imbalance::Random(0.2),
        false,
        0.4,
        0.02,
    );
    (m, t)
}

/// Dynamic-programming wavefront with data-dependent control
/// (`nw`/`needle`, `pathfinder`, `srad` thresholds).
pub fn branchy(name: &str, entropy: f64) -> (Module, Traits) {
    let mut m = Module::new(name);
    let mut fb = FunctionBuilder::new(
        name,
        kernel_params(&[("cost", Type::F64), ("out", Type::F64)]),
        Type::Void,
    );
    fb.set_parallel(false);
    NestBuilder::build(
        &mut fb,
        &[Level { bound: Bound::N }, Level { bound: Bound::N }],
        &mut |ctx| {
            let (i, j) = (ctx.ivs[0], ctx.ivs[1]);
            let n = ctx.n;
            let c = idx2(ctx.b, i, j, n);
            let pc = ctx.b.gep(ctx.b.param(1), c);
            let vc = ctx.b.load(pc);
            let one = ctx.b.const_i64(1);
            let jm = ctx.b.sub(j, one);
            let left_i = idx2(ctx.b, i, jm, n);
            let pl = ctx.b.gep(ctx.b.param(2), left_i);
            let vl = ctx.b.load(pl);
            let im = ctx.b.sub(i, one);
            let up_i = idx2(ctx.b, im, j, n);
            let pu = ctx.b.gep(ctx.b.param(2), up_i);
            let vu = ctx.b.load(pu);
            let better = ctx.b.fcmp(CmpPred::Lt, vl, vu);
            let best = ctx.b.select(better, vl, vu);
            let s = ctx.b.fadd(best, vc);
            let po = ctx.b.gep(ctx.b.param(2), c);
            ctx.b.store(s, po);
            // Anti-diagonal wavefront: neighbours must finish first.
            ctx.b.barrier();
        },
    );
    fb.ret_void();
    m.add_function(fb.finish());
    let mut t = traits(
        TripCount::Linear(1.0),
        TripCount::Linear(1.0),
        16.0,
        2.0,
        32.0,
        Locality::tiled(2.0, 0.0),
        Imbalance::Random(0.15),
        false,
        entropy,
        0.03,
    );
    t.sync_us_per_iter = 0.12;
    (m, t)
}

/// N-body style force kernel (`lavaMD`, `MD`, `leukocyte`, `cutcp`): calls
/// a distance helper per neighbor, heavy math inside.
pub fn nbody(name: &str, neighbors: i64) -> (Module, Traits) {
    let mut m = Module::new(name);
    // Distance helper with a sqrt.
    let mut hb = FunctionBuilder::new(
        "distance",
        vec![
            Param {
                name: "dx".into(),
                ty: Type::F64,
            },
            Param {
                name: "dy".into(),
                ty: Type::F64,
            },
        ],
        Type::F64,
    );
    let xx = hb.fmul(hb.param(0), hb.param(0));
    let yy = hb.fmul(hb.param(1), hb.param(1));
    let ss = hb.fadd(xx, yy);
    let d = hb.sqrt(ss);
    hb.ret(d);
    let helper = hb.finish();

    let mut fb = FunctionBuilder::new(
        name,
        kernel_params(&[("px", Type::F64), ("py", Type::F64), ("force", Type::F64)]),
        Type::Void,
    );
    fb.set_parallel(false);
    NestBuilder::build(
        &mut fb,
        &[
            Level { bound: Bound::N },
            Level {
                bound: Bound::Const(neighbors),
            },
        ],
        &mut |ctx| {
            let (i, k) = (ctx.ivs[0], ctx.ivs[1]);
            let j = ctx.b.add(i, k);
            let pxi = ctx.b.gep(ctx.b.param(1), i);
            let pxj = ctx.b.gep(ctx.b.param(1), j);
            let xi = ctx.b.load(pxi);
            let xj = ctx.b.load(pxj);
            let dx = ctx.b.fsub(xi, xj);
            let pyi = ctx.b.gep(ctx.b.param(2), i);
            let pyj = ctx.b.gep(ctx.b.param(2), j);
            let yi = ctx.b.load(pyi);
            let yj = ctx.b.load(pyj);
            let dy = ctx.b.fsub(yi, yj);
            let d = ctx.b.call("distance", vec![dx, dy], Type::F64);
            let eps = ctx.b.const_f64(1e-6);
            let dd = ctx.b.fadd(d, eps);
            let one = ctx.b.const_f64(1.0);
            let inv = ctx.b.fdiv(one, dd);
            let pf = ctx.b.gep(ctx.b.param(3), i);
            let f0 = ctx.b.load(pf);
            let f1 = ctx.b.fadd(f0, inv);
            ctx.b.store(f1, pf);
        },
    );
    fb.ret_void();
    m.add_function(fb.finish());
    m.add_function(helper);
    m.resolve_calls();
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(neighbors as f64),
        24.0,
        1.0,
        12.0,
        Locality::tiled(4.0, 0.3),
        Imbalance::Random(0.3),
        false,
        0.1,
        0.02,
    );
    (m, t)
}

/// Bitonic/merge-sort style kernel: `n·log n` work, comparison branches.
pub fn sortlike(name: &str) -> (Module, Traits) {
    let mut m = Module::new(name);
    let mut fb = FunctionBuilder::new(name, kernel_params(&[("keys", Type::F64)]), Type::Void);
    fb.set_parallel(false);
    NestBuilder::build(
        &mut fb,
        &[
            Level { bound: Bound::N },
            Level {
                bound: Bound::Const(16),
            },
        ],
        &mut |ctx| {
            let (i, s) = (ctx.ivs[0], ctx.ivs[1]);
            let one = ctx.b.const_i64(1);
            let stride = ctx.b.shl(one, s);
            let partner = ctx.b.xor(i, stride);
            let pi = ctx.b.gep(ctx.b.param(1), i);
            let pp = ctx.b.gep(ctx.b.param(1), partner);
            let vi = ctx.b.load(pi);
            let vp = ctx.b.load(pp);
            let swap = ctx.b.fcmp(CmpPred::Gt, vi, vp);
            let lo = ctx.b.select(swap, vp, vi);
            let hi = ctx.b.select(swap, vi, vp);
            ctx.b.store(lo, pi);
            ctx.b.store(hi, pp);
        },
    );
    fb.ret_void();
    m.add_function(fb.finish());
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(16.0),
        8.0,
        1.0,
        32.0,
        Locality {
            streaming_frac: 0.5,
            reuse_factor: 2.0,
            shared_frac: 0.0,
        },
        Imbalance::Uniform,
        false,
        0.5,
        0.02,
    );
    (m, t)
}

/// FFT/MersenneTwister-style butterfly: strided access, sin/cos twiddles.
pub fn fftlike(name: &str) -> (Module, Traits) {
    let mut m = Module::new(name);
    let mut fb = FunctionBuilder::new(
        name,
        kernel_params(&[("re", Type::F64), ("im", Type::F64)]),
        Type::Void,
    );
    fb.set_parallel(false);
    NestBuilder::build(
        &mut fb,
        &[
            Level { bound: Bound::N },
            Level {
                bound: Bound::Const(12),
            },
        ],
        &mut |ctx| {
            let (i, s) = (ctx.ivs[0], ctx.ivs[1]);
            let one = ctx.b.const_i64(1);
            let stride = ctx.b.shl(one, s);
            let j = ctx.b.xor(i, stride);
            let pre = ctx.b.gep(ctx.b.param(1), i);
            let pim = ctx.b.gep(ctx.b.param(2), i);
            let vre = ctx.b.load(pre);
            let vim = ctx.b.load(pim);
            let angle = ctx.b.sitofp(j, Type::F64);
            let c = ctx.b.cos(angle);
            let sn = ctx.b.sin(angle);
            let xr = ctx.b.fmul(vre, c);
            let xi = ctx.b.fmul(vim, sn);
            let out_r = ctx.b.fsub(xr, xi);
            let yr = ctx.b.fmul(vre, sn);
            let yi = ctx.b.fmul(vim, c);
            let out_i = ctx.b.fadd(yr, yi);
            ctx.b.store(out_r, pre);
            ctx.b.store(out_i, pim);
        },
    );
    fb.ret_void();
    m.add_function(fb.finish());
    let t = traits(
        TripCount::Linear(1.0),
        TripCount::Const(12.0),
        16.0,
        1.0,
        32.0,
        Locality {
            streaming_frac: 0.6,
            reuse_factor: 1.5,
            shared_frac: 0.0,
        },
        Imbalance::Uniform,
        false,
        0.08,
        0.03,
    );
    (m, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::InstrMix;
    use mga_ir::analysis::loops::LoopInfo;
    use mga_ir::verify_module;

    #[test]
    fn all_archetypes_verify() {
        let all: Vec<(Module, Traits)> = vec![
            streaming("s", 2, 1),
            matmul("m", 1),
            stencil("st2", 2, 5),
            stencil("st3", 3, 7),
            reduction("r", 2, true),
            triangular("t", 0.01),
            gather("g", 0.3, 0.5),
            histogram("h"),
            branchy("b", 0.4),
            nbody("nb", 32),
            sortlike("so"),
            fftlike("ff"),
        ];
        for (m, t) in &all {
            verify_module(m).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(t.ws_bytes_per_n > 0.0);
            assert!(t.bytes_per_iter > 0.0);
        }
    }

    #[test]
    fn archetypes_have_distinct_instruction_mixes() {
        let mixes: Vec<InstrMix> = [
            streaming("s", 2, 1).0,
            matmul("m", 1).0,
            reduction("r", 2, true).0,
            nbody("nb", 8).0,
            histogram("h").0,
        ]
        .iter()
        .map(|m| InstrMix::of_function(&m.functions[0]))
        .collect();
        for i in 0..mixes.len() {
            for j in i + 1..mixes.len() {
                assert_ne!(mixes[i], mixes[j], "mix {i} == mix {j}");
            }
        }
    }

    #[test]
    fn nbody_has_call_flow() {
        let (m, _) = nbody("nb", 16);
        assert_eq!(m.functions.len(), 2);
        let mix = InstrMix::of_function(&m.functions[0]);
        assert!(mix.calls >= 1.0);
        assert!(
            InstrMix::of_function(&m.functions[1]).heavy_math >= 1.0,
            "helper carries the sqrt"
        );
        // Calls are resolved to the helper.
        let call = m.functions[0]
            .instrs
            .iter()
            .find(|i| i.op == mga_ir::Opcode::Call)
            .unwrap();
        assert_eq!(call.callee, Some(1));
    }

    #[test]
    fn reduction_and_histogram_have_atomics() {
        let (m, t) = reduction("r", 1, false);
        assert!(InstrMix::of_function(&m.functions[0]).atomics >= 1.0);
        assert!(t.reduction);
        let (m2, _) = histogram("h");
        assert!(InstrMix::of_function(&m2.functions[0]).atomics >= 1.0);
    }

    #[test]
    fn matmul_has_three_deep_nest() {
        let (m, t) = matmul("mm", 1);
        let li = LoopInfo::compute(&m.functions[0]);
        assert_eq!(li.max_depth(), 3);
        assert_eq!(t.ws_power, 2.0);
    }

    #[test]
    fn triangular_is_imbalanced() {
        let (_, t) = triangular("tri", 0.3);
        assert_eq!(t.imbalance, Imbalance::Triangular);
        assert_eq!(t.serial_frac, 0.3);
    }

    #[test]
    fn streaming_flops_scale_with_parameter() {
        let (m1, _) = streaming("a", 1, 0);
        let (m2, _) = streaming("b", 1, 4);
        let f1 = InstrMix::of_function(&m1.functions[0]).flops;
        let f2 = InstrMix::of_function(&m2.functions[0]).flops;
        assert!(f2 > f1 + 3.0);
    }
}
