//! Execute every kernel archetype's IR in the reference interpreter: the
//! lowered loops must actually run, terminate, and compute sensible
//! values — the IR the models consume is real code, not decoration.

use mga_ir::interp::{Interpreter, Memory, Value};
use mga_kernels::archetypes;

const N: i64 = 6;

/// Run function 0 of a module with `n = N` and the given pointer args.
fn run(module: &mga_ir::Module, args: Vec<Value>, mem: &mut Memory) {
    let mut full_args = vec![Value::Int(N)];
    full_args.extend(args);
    let mut interp = Interpreter::with_step_limit(module, 10_000_000);
    let fname = module.functions[0].name.clone();
    interp
        .run(&fname, full_args, mem)
        .unwrap_or_else(|e| panic!("{fname} failed: {e}"));
}

fn assert_finite(mem: &Memory, ptr: Value, what: &str) {
    for v in mem.read_f64(ptr).unwrap() {
        assert!(v.is_finite(), "{what} produced non-finite value {v}");
    }
}

#[test]
fn streaming_computes_scaled_sum() {
    let (m, _) = archetypes::streaming("s", 2, 1);
    let mut mem = Memory::new();
    let src0 = mem.alloc_f64(&[1.0; N as usize]);
    let src1 = mem.alloc_f64(&[2.0; N as usize]);
    let dst = mem.alloc_f64(&[0.0; N as usize]);
    run(&m, vec![src0, src1, dst], &mut mem);
    // dst[i] = (src0[i] + src1[i]) * 1.5 (one fmul by constant 1.5).
    for v in mem.read_f64(dst).unwrap() {
        assert!((v - 4.5).abs() < 1e-12, "streaming wrote {v}, expected 4.5");
    }
}

#[test]
fn matmul_accumulates_products() {
    let (m, _) = archetypes::matmul("mm", 1);
    let n = N as usize;
    let mut mem = Memory::new();
    // A = all ones, B = all twos, C starts zero → C[i][j] = 2n.
    let a = mem.alloc_f64(&vec![1.0; n * n]);
    let b = mem.alloc_f64(&vec![2.0; n * n]);
    let c = mem.alloc_f64(&vec![0.0; n * n]);
    run(&m, vec![a, b, c], &mut mem);
    for v in mem.read_f64(c).unwrap() {
        assert!((v - 2.0 * N as f64).abs() < 1e-9, "gemm wrote {v}");
    }
}

#[test]
fn stencil_averages_neighbors() {
    let (m, _) = archetypes::stencil("st", 2, 5);
    let n = N as usize;
    let mut mem = Memory::new();
    // Slack: neighbors read up to center + points.
    let input = mem.alloc_f64(&vec![3.0; n * n + 16]);
    let out = mem.alloc_f64(&vec![0.0; n * n + 16]);
    run(&m, vec![input, out], &mut mem);
    // Average of 5 identical values is the value itself.
    let vals = mem.read_f64(out).unwrap();
    for &v in &vals[..n * n] {
        assert!((v - 3.0).abs() < 1e-9, "stencil wrote {v}");
    }
}

#[test]
fn reduction_accumulates_into_out() {
    let (m, _) = archetypes::reduction("r", 2, false);
    let n = N as usize;
    let mut mem = Memory::new();
    let s0 = mem.alloc_f64(&vec![2.0; n]);
    let s1 = mem.alloc_f64(&vec![4.0; n]);
    let out = mem.alloc_f64(&[0.0]);
    run(&m, vec![s0, s1, out], &mut mem);
    // Each iteration atomically adds 2*4 = 8 → total 8n.
    let total = mem.read_f64(out).unwrap()[0];
    assert!(
        (total - 8.0 * N as f64).abs() < 1e-9,
        "reduction got {total}"
    );
}

#[test]
fn triangular_runs_and_stays_finite() {
    let (m, _) = archetypes::triangular("tri", 0.1);
    let n = N as usize;
    let mut mem = Memory::new();
    let a = mem.alloc_f64(&vec![0.5; n * n + 8]);
    let x = mem.alloc_f64(&vec![1.0; n + 8]);
    run(&m, vec![a, x], &mut mem);
    assert_finite(&mem, x, "triangular");
}

#[test]
fn gather_respects_indices_and_filters_negatives() {
    let (m, _) = archetypes::gather("g", 0.3, 0.5);
    let n = N as usize;
    let mut mem = Memory::new();
    let vals = mem.alloc_f64(&[-1.0, 2.0, -3.0, 4.0, -5.0, 6.0]);
    let out = mem.alloc_f64(&vec![0.0; n]);
    let idx = mem.alloc_i64(&[1, 0, 3, 2, 5, 4]);
    run(&m, vec![vals, out, idx], &mut mem);
    // out[i] += max(vals[idx[i]], 0)
    let expect = [2.0, 0.0, 4.0, 0.0, 6.0, 0.0];
    let got = mem.read_f64(out).unwrap();
    for (g, e) in got.iter().zip(expect) {
        assert!((g - e).abs() < 1e-12, "gather got {got:?}");
    }
}

#[test]
fn histogram_counts_into_bins() {
    let (m, _) = archetypes::histogram("h");
    let mut mem = Memory::new();
    let bins = mem.alloc_f64(&vec![0.0; 1024]);
    let keys = mem.alloc_i64(&[5, 5, 7, 1029, 5, 0]); // 1029 & 1023 = 5
    run(&m, vec![bins, keys], &mut mem);
    let b = mem.read_f64(bins).unwrap();
    assert_eq!(b[5], 4.0, "bin 5 should hold four hits");
    assert_eq!(b[7], 1.0);
    assert_eq!(b[0], 1.0);
    assert_eq!(b.iter().sum::<f64>(), 6.0);
}

#[test]
fn branchy_wavefront_propagates_minimum() {
    let (m, _) = archetypes::branchy("b", 0.3);
    let n = N as usize;
    let mut mem = Memory::new();
    let cost = mem.alloc_f64(&vec![1.0; n * n + 8]);
    // Slack in front too: i-1/j-1 produce index -? For i=0,j=0: idx = -1 →
    // would be OOB, so shift the output pointer by one row + one col of
    // slack is not expressible; instead give out a front pad by allocating
    // and passing a pointer offset... The archetype reads out[c-1] and
    // out[c-n]; at i=j=0 that's out[-1]/out[-n]. Allocate with a pad and
    // pass an offset pointer.
    let out_buf = mem.alloc_f64(&vec![0.0; n * n + 2 * n + 8]);
    let Value::Ptr(buf, _) = out_buf else {
        unreachable!()
    };
    let out = Value::Ptr(buf, n as i64 + 1); // pad one row + one column
    run(&m, vec![cost, out], &mut mem);
    assert_finite(&mem, out_buf, "branchy");
}

#[test]
fn nbody_calls_distance_helper() {
    let (m, _) = archetypes::nbody("nb", 8);
    let n = N as usize;
    let mut mem = Memory::new();
    // j = i + k can reach n + neighbors.
    let px = mem.alloc_f64(&vec![1.0; n + 16]);
    let py = mem.alloc_f64(&vec![2.0; n + 16]);
    let force = mem.alloc_f64(&vec![0.0; n + 16]);
    run(&m, vec![px, py, force], &mut mem);
    let f = mem.read_f64(force).unwrap();
    // All particles identical → distance 0 → force += 1/eps each of 8
    // neighbor iterations; just require growth and finiteness.
    assert!(f[0] > 0.0, "no force accumulated");
    assert_finite(&mem, force, "nbody");
}

#[test]
fn sortlike_permutes_key_multiset() {
    let (m, _) = archetypes::sortlike("so");
    let n = N as usize;
    let mut mem = Memory::new();
    let init: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
    // partner = i ^ (1 << s) with s < 16 → needs 2^16 slack.
    let mut data = init.clone();
    data.resize(1 << 16, 0.0);
    let keys = mem.alloc_f64(&data);
    run(&m, vec![keys], &mut mem);
    let after = mem.read_f64(keys).unwrap();
    // Compare-and-swap network preserves the multiset of keys.
    let mut before_sorted = data.clone();
    let mut after_sorted = after.clone();
    before_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    after_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(before_sorted, after_sorted, "keys were lost or invented");
}

#[test]
fn fftlike_butterflies_stay_finite() {
    let (m, _) = archetypes::fftlike("ff");
    let n = N as usize;
    let mut mem = Memory::new();
    let mut re = vec![1.0; n];
    re.resize(1 << 13, 0.0); // xor strides up to 2^12
    let mut im = vec![0.5; n];
    im.resize(1 << 13, 0.0);
    let pre = mem.alloc_f64(&re);
    let pim = mem.alloc_f64(&im);
    run(&m, vec![pre, pim], &mut mem);
    assert_finite(&mem, pre, "fft re");
    assert_finite(&mem, pim, "fft im");
}
