//! `mga-graph` — PROGRAML-style flow multi-graphs over `mga-ir`.
//!
//! PROGRAML (Cummins et al., 2021) represents a program as a directed
//! multi-graph with one vertex per *instruction* plus separate vertices for
//! *variables* and *constants*, connected by three edge relations:
//!
//! * **control** — instruction → instruction, following block layout and
//!   branch targets;
//! * **data** — definition → variable → use (operand positions recorded on
//!   the edges), constants → uses;
//! * **call** — call site → callee entry instruction, callee returns →
//!   call site.
//!
//! This crate builds exactly that structure from an [`mga_ir::Module`]
//! ([`build_module_graph`] / [`build_function_graph`]) and stores each
//! relation both as an edge list (for gather/scatter message passing) and
//! as a CSR adjacency ([`Csr`], for analyses and tests). Downstream,
//! `mga-gnn` embeds [`Node::vocab_index`] values and runs one gated GNN
//! per relation — the heterogeneous GNN of the paper.

use mga_ir::{Function, FunctionId, Module, Opcode, Operand, Type};

/// Edge relations of the multi-graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    Control = 0,
    Data = 1,
    Call = 2,
}

impl Relation {
    pub const ALL: [Relation; 3] = [Relation::Control, Relation::Data, Relation::Call];

    pub fn index(self) -> usize {
        self as usize
    }
}

/// The kind of a graph vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An IR instruction, tagged with its opcode feature class.
    Instruction(usize),
    /// An SSA value (instruction result or function parameter), tagged
    /// with its type feature class.
    Variable(usize),
    /// A constant operand, tagged with its type feature class.
    Constant(usize),
    /// Entry placeholder for an external function (no body).
    ExternalEntry,
}

/// One graph vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    pub kind: NodeKind,
}

impl Node {
    /// Index into the embedding vocabulary:
    /// `[0, NUM_OPCODES)` instructions, then variables by type class, then
    /// constants by type class, then the external-entry token.
    pub fn vocab_index(&self) -> usize {
        match self.kind {
            NodeKind::Instruction(op) => op,
            NodeKind::Variable(t) => Opcode::NUM_FEATURE_CLASSES + t,
            NodeKind::Constant(t) => Opcode::NUM_FEATURE_CLASSES + Type::NUM_FEATURE_CLASSES + t,
            NodeKind::ExternalEntry => Opcode::NUM_FEATURE_CLASSES + 2 * Type::NUM_FEATURE_CLASSES,
        }
    }

    /// Total size of the vocabulary [`Node::vocab_index`] draws from.
    pub const VOCAB_SIZE: usize = Opcode::NUM_FEATURE_CLASSES + 2 * Type::NUM_FEATURE_CLASSES + 1;

    pub fn is_instruction(&self) -> bool {
        matches!(self.kind, NodeKind::Instruction(_))
    }
}

/// A directed edge with an operand/successor position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub src: u32,
    pub dst: u32,
    /// Operand position (data), successor index (control), or 0 (call).
    pub pos: u32,
}

/// The flow multi-graph.
#[derive(Debug, Clone, Default)]
pub struct ProGraph {
    pub nodes: Vec<Node>,
    /// Edge lists per relation, indexed by [`Relation::index`].
    pub edges: [Vec<Edge>; 3],
    /// Lazily derived per-relation endpoint lists (parallel `src`/`dst`
    /// vectors in edge order) — the single edge-list pass shared by
    /// message-passing batch packing and CSR construction. Built on first
    /// query; `edges` must not be mutated afterwards.
    endpoints: [std::sync::OnceLock<(Vec<u32>, Vec<u32>)>; 3],
    /// Lazily derived instruction-node index list (readout pooling).
    instr_nodes: std::sync::OnceLock<Vec<u32>>,
}

impl ProGraph {
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_edges(&self, r: Relation) -> usize {
        self.edges[r.index()].len()
    }

    pub fn total_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Indices of instruction nodes (used for readout pooling).
    pub fn instruction_nodes(&self) -> Vec<u32> {
        self.instruction_node_ids().to_vec()
    }

    /// Cached instruction-node index list: derived once, shared by every
    /// [`GraphBatch`-style] packing of this graph. The node list must not
    /// be mutated after the first call.
    pub fn instruction_node_ids(&self) -> &[u32] {
        self.instr_nodes.get_or_init(|| {
            self.nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_instruction())
                .map(|(i, _)| i as u32)
                .collect()
        })
    }

    /// Per-relation edge endpoints as parallel `(src, dst)` vectors in
    /// edge order — the layout message passing consumes. Derived by one
    /// edge-list pass on first use and cached, so repeated graph batching
    /// and CSR construction share the same pass instead of re-walking
    /// `edges` each time. `edges` must not be mutated after the first
    /// call.
    pub fn edge_endpoints(&self, r: Relation) -> (&[u32], &[u32]) {
        let (src, dst) = self.endpoints[r.index()].get_or_init(|| {
            let es = &self.edges[r.index()];
            let mut src = Vec::with_capacity(es.len());
            let mut dst = Vec::with_capacity(es.len());
            for e in es {
                src.push(e.src);
                dst.push(e.dst);
            }
            (src, dst)
        });
        (src, dst)
    }

    /// Build the CSR adjacency of one relation, grouped by destination
    /// (incoming edges per node), as message-passing consumes it. Shares
    /// the cached [`ProGraph::edge_endpoints`] pass.
    pub fn csr_in(&self, r: Relation) -> Csr {
        let (src, dst) = self.edge_endpoints(r);
        Csr::from_endpoints(self.num_nodes(), src, dst, true)
    }

    /// CSR grouped by source (outgoing edges per node).
    pub fn csr_out(&self, r: Relation) -> Csr {
        let (src, dst) = self.edge_endpoints(r);
        Csr::from_endpoints(self.num_nodes(), src, dst, false)
    }

    /// Check structural invariants (all endpoints in range, no self loops
    /// in the data relation).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes() as u32;
        for r in Relation::ALL {
            for e in &self.edges[r.index()] {
                if e.src >= n || e.dst >= n {
                    return Err(format!(
                        "{r:?} edge {}→{} out of range ({n} nodes)",
                        e.src, e.dst
                    ));
                }
            }
        }
        for e in &self.edges[Relation::Data.index()] {
            if e.src == e.dst {
                return Err(format!("data self-loop at node {}", e.src));
            }
        }
        Ok(())
    }
}

/// Compressed sparse row adjacency over one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[i]..offsets[i+1]` indexes `neighbors` for node `i`.
    pub offsets: Vec<u32>,
    /// Neighbor node ids, ordered by the grouping node.
    pub neighbors: Vec<u32>,
}

impl Csr {
    /// Build from an edge list; `by_dst` groups incoming edges by
    /// destination, otherwise outgoing edges by source.
    pub fn from_edges(num_nodes: usize, edges: &[Edge], by_dst: bool) -> Csr {
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        for e in edges {
            src.push(e.src);
            dst.push(e.dst);
        }
        Csr::from_endpoints(num_nodes, &src, &dst, by_dst)
    }

    /// Build from parallel endpoint lists (the cached
    /// [`ProGraph::edge_endpoints`] form), preserving edge order within
    /// each group exactly as [`Csr::from_edges`] does.
    pub fn from_endpoints(num_nodes: usize, src: &[u32], dst: &[u32], by_dst: bool) -> Csr {
        assert_eq!(src.len(), dst.len(), "endpoint list length mismatch");
        let (keys, vals) = if by_dst { (dst, src) } else { (src, dst) };
        let mut counts = vec![0u32; num_nodes + 1];
        for &k in keys {
            counts[k as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut neighbors = vec![0u32; keys.len()];
        for (&k, &v) in keys.iter().zip(vals) {
            neighbors[cursor[k as usize] as usize] = v;
            cursor[k as usize] += 1;
        }
        Csr { offsets, neighbors }
    }

    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn degree(&self, node: usize) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.neighbors[self.offsets[node] as usize..self.offsets[node + 1] as usize]
    }

    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }
}

/// Build the multi-graph of a single function within its module. Call
/// edges attach to a synthetic [`NodeKind::ExternalEntry`] node per callee
/// (callee bodies are not part of this graph).
pub fn build_function_graph(m: &Module, f: &Function) -> ProGraph {
    let mut g = ProGraph::default();
    let mut builder = GraphBuilder::new(&mut g);
    builder.add_function(m, f, None);
    builder.finish_intra_function_calls(m);
    g
}

/// Build one multi-graph covering every function in the module, with call
/// edges connecting call sites to callee entry instructions.
pub fn build_module_graph(m: &Module) -> ProGraph {
    let mut g = ProGraph::default();
    let mut builder = GraphBuilder::new(&mut g);
    for (fi, f) in m.functions.iter().enumerate() {
        builder.add_function(m, f, Some(FunctionId(fi as u32)));
    }
    builder.finish_inter_function_calls(m);
    g
}

struct FuncNodes {
    /// node id of each instruction (by arena index), u32::MAX for none.
    instr_node: Vec<u32>,
    /// node id of each instruction's result variable (if it has one).
    result_var: Vec<u32>,
    /// node id of each parameter variable.
    param_var: Vec<u32>,
    /// node id of each constant.
    const_node: Vec<u32>,
    /// first instruction node of the entry block, if any.
    entry_instr: Option<u32>,
    /// instruction nodes of `ret` instructions.
    ret_instrs: Vec<u32>,
    /// (call instruction node, callee name) pairs awaiting resolution.
    calls: Vec<(u32, String)>,
}

struct GraphBuilder<'g> {
    g: &'g mut ProGraph,
    funcs: Vec<FuncNodes>,
    externals: std::collections::HashMap<String, u32>,
}

impl<'g> GraphBuilder<'g> {
    fn new(g: &'g mut ProGraph) -> Self {
        GraphBuilder {
            g,
            funcs: Vec::new(),
            externals: std::collections::HashMap::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind) -> u32 {
        let id = self.g.nodes.len() as u32;
        self.g.nodes.push(Node { kind });
        id
    }

    fn add_edge(&mut self, r: Relation, src: u32, dst: u32, pos: u32) {
        self.g.edges[r.index()].push(Edge { src, dst, pos });
    }

    fn add_function(&mut self, m: &Module, f: &Function, _id: Option<FunctionId>) {
        if f.attrs.external {
            self.funcs.push(FuncNodes {
                instr_node: Vec::new(),
                result_var: Vec::new(),
                param_var: Vec::new(),
                const_node: Vec::new(),
                entry_instr: None,
                ret_instrs: Vec::new(),
                calls: Vec::new(),
            });
            return;
        }
        let mut fn_nodes = FuncNodes {
            instr_node: vec![u32::MAX; f.instrs.len()],
            result_var: vec![u32::MAX; f.instrs.len()],
            param_var: Vec::with_capacity(f.params.len()),
            const_node: Vec::with_capacity(f.consts.len()),
            entry_instr: None,
            ret_instrs: Vec::new(),
            calls: Vec::new(),
        };

        // Parameter variable nodes.
        for p in &f.params {
            let id = self.add_node(NodeKind::Variable(p.ty.feature_class()));
            fn_nodes.param_var.push(id);
        }
        // Constant nodes.
        for c in &f.consts {
            let id = self.add_node(NodeKind::Constant(c.ty().feature_class()));
            fn_nodes.const_node.push(id);
        }
        // Instruction nodes + result variables.
        for (_b, iid) in f.iter_instrs() {
            let instr = f.instr(iid);
            let node = self.add_node(NodeKind::Instruction(instr.op.feature_class()));
            fn_nodes.instr_node[iid.index()] = node;
            if instr.has_result() {
                let var = self.add_node(NodeKind::Variable(instr.ty.feature_class()));
                fn_nodes.result_var[iid.index()] = var;
                // def edge: instruction → its result variable.
                self.add_edge(Relation::Data, node, var, 0);
            }
            if instr.op == Opcode::Ret {
                fn_nodes.ret_instrs.push(node);
            }
            if instr.op == Opcode::Call {
                let name = instr.callee_name.clone().unwrap_or_default();
                fn_nodes.calls.push((node, name));
            }
        }
        // Entry instruction.
        if let Some(b0) = f.blocks.first() {
            if let Some(&first) = b0.instrs.first() {
                fn_nodes.entry_instr = Some(fn_nodes.instr_node[first.index()]);
            }
        }

        // Control edges: consecutive instructions in a block, then block
        // terminator → successor's first instruction.
        for b in &f.blocks {
            for w in b.instrs.windows(2) {
                let a = fn_nodes.instr_node[w[0].index()];
                let c = fn_nodes.instr_node[w[1].index()];
                self.add_edge(Relation::Control, a, c, 0);
            }
            if let Some(&last) = b.instrs.last() {
                let from = fn_nodes.instr_node[last.index()];
                for (pos, &succ) in f.instr(last).succs.iter().enumerate() {
                    if let Some(&first) = f.blocks[succ.index()].instrs.first() {
                        let to = fn_nodes.instr_node[first.index()];
                        self.add_edge(Relation::Control, from, to, pos as u32);
                    }
                }
            }
        }

        // Data edges: operand → using instruction, with positions.
        for (_b, iid) in f.iter_instrs() {
            let instr = f.instr(iid);
            let use_node = fn_nodes.instr_node[iid.index()];
            for (pos, &arg) in instr.args.iter().enumerate() {
                let src = match arg {
                    Operand::Instr(d) => fn_nodes.result_var[d.index()],
                    Operand::Param(i) => fn_nodes.param_var[i as usize],
                    Operand::Const(i) => fn_nodes.const_node[i as usize],
                    Operand::Global(gi) => {
                        // Globals get one shared variable node, lazily.
                        let key = format!("@global{gi}");
                        if let Some(&n) = self.externals.get(&key) {
                            n
                        } else {
                            let ty = m.globals[gi as usize].ty.clone().ptr();
                            let n = self.add_node(NodeKind::Variable(ty.feature_class()));
                            self.externals.insert(key, n);
                            n
                        }
                    }
                };
                if src != u32::MAX {
                    self.add_edge(Relation::Data, src, use_node, pos as u32);
                }
            }
        }

        self.funcs.push(fn_nodes);
    }

    /// Resolve call edges when only one function's graph was built: every
    /// callee becomes an external-entry node.
    fn finish_intra_function_calls(&mut self, _m: &Module) {
        let calls: Vec<(u32, String)> = self
            .funcs
            .iter()
            .flat_map(|fnodes| fnodes.calls.clone())
            .collect();
        for (call_node, name) in calls {
            let entry = self.external_entry(&name);
            self.add_edge(Relation::Call, call_node, entry, 0);
            self.add_edge(Relation::Call, entry, call_node, 0);
        }
    }

    /// Resolve call edges across the whole module: call → callee entry
    /// instruction and callee rets → call.
    fn finish_inter_function_calls(&mut self, m: &Module) {
        let mut pending = Vec::new();
        for fnodes in &self.funcs {
            for (call_node, name) in &fnodes.calls {
                pending.push((*call_node, name.clone()));
            }
        }
        for (call_node, name) in pending {
            match m.function_by_name(&name) {
                Some((fid, callee)) if !callee.attrs.external => {
                    let entry = self.funcs[fid.index()].entry_instr;
                    let rets = self.funcs[fid.index()].ret_instrs.clone();
                    if let Some(entry) = entry {
                        self.add_edge(Relation::Call, call_node, entry, 0);
                    }
                    for ret in rets {
                        self.add_edge(Relation::Call, ret, call_node, 0);
                    }
                }
                _ => {
                    let entry = self.external_entry(&name);
                    self.add_edge(Relation::Call, call_node, entry, 0);
                    self.add_edge(Relation::Call, entry, call_node, 0);
                }
            }
        }
    }

    fn external_entry(&mut self, name: &str) -> u32 {
        if let Some(&n) = self.externals.get(name) {
            return n;
        }
        let n = self.add_node(NodeKind::ExternalEntry);
        self.externals.insert(name.to_string(), n);
        n
    }
}

/// Summary statistics of a graph (used in benches and EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub instructions: usize,
    pub variables: usize,
    pub constants: usize,
    pub control_edges: usize,
    pub data_edges: usize,
    pub call_edges: usize,
}

impl GraphStats {
    pub fn of(g: &ProGraph) -> GraphStats {
        GraphStats {
            nodes: g.num_nodes(),
            instructions: g
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Instruction(_)))
                .count(),
            variables: g
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Variable(_)))
                .count(),
            constants: g
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Constant(_)))
                .count(),
            control_edges: g.num_edges(Relation::Control),
            data_edges: g.num_edges(Relation::Data),
            call_edges: g.num_edges(Relation::Call),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_ir::builder::FunctionBuilder;
    use mga_ir::instr::CmpPred;
    use mga_ir::{Param, Type};

    fn loop_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new(
            "scale",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I64,
                },
                Param {
                    name: "a".into(),
                    ty: Type::F64.ptr(),
                },
            ],
            Type::Void,
        );
        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let (i, ip) = b.phi_begin(Type::I64);
        let c = b.icmp(CmpPred::Lt, i, b.param(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.gep(b.param(1), i);
        let v = b.load(p);
        let s = b.call("helper", vec![v], Type::F64);
        b.store(s, p);
        let one = b.const_i64(1);
        let ix = b.add(i, one);
        b.br(header);
        b.phi_finish(ip, vec![(entry, zero), (body, ix)]);
        b.switch_to(exit);
        b.ret_void();
        m.add_function(b.finish());

        let mut h = FunctionBuilder::new(
            "helper",
            vec![Param {
                name: "x".into(),
                ty: Type::F64,
            }],
            Type::F64,
        );
        let two = h.const_f64(2.0);
        let r = h.fmul(h.param(0), two);
        h.ret(r);
        m.add_function(h.finish());
        m.resolve_calls();
        m
    }

    #[test]
    fn function_graph_shape() {
        let m = loop_module();
        let g = build_function_graph(&m, &m.functions[0]);
        g.validate().unwrap();
        let stats = GraphStats::of(&g);
        // 11 instructions in `scale`.
        assert_eq!(stats.instructions, 11);
        // 2 params + result vars.
        assert!(stats.variables >= 2);
        assert!(stats.constants >= 2);
        // Control: intra-block + branch edges, all present.
        assert!(stats.control_edges >= 10);
        // Call relation: call↔external entry.
        assert_eq!(stats.call_edges, 2);
    }

    #[test]
    fn module_graph_wires_call_to_callee_entry() {
        let m = loop_module();
        let g = build_module_graph(&m);
        g.validate().unwrap();
        // Call edges: call→callee entry, callee ret→call. No externals.
        assert_eq!(g.num_edges(Relation::Call), 2);
        assert!(g.nodes.iter().all(|n| n.kind != NodeKind::ExternalEntry));
        // Both call edges connect instruction nodes.
        for e in &g.edges[Relation::Call.index()] {
            assert!(g.nodes[e.src as usize].is_instruction());
            assert!(g.nodes[e.dst as usize].is_instruction());
        }
    }

    #[test]
    fn data_edges_have_positions() {
        let m = loop_module();
        let g = build_function_graph(&m, &m.functions[0]);
        // store has two operands: positions 0 and 1 must both appear.
        let positions: std::collections::HashSet<u32> = g.edges[Relation::Data.index()]
            .iter()
            .map(|e| e.pos)
            .collect();
        assert!(positions.contains(&0));
        assert!(positions.contains(&1));
    }

    #[test]
    fn def_use_chains_route_through_variables() {
        let m = loop_module();
        let g = build_function_graph(&m, &m.functions[0]);
        // PROGRAML's schema has no instruction→instruction data edges:
        // values route through variable/constant nodes.
        for e in &g.edges[Relation::Data.index()] {
            let s = &g.nodes[e.src as usize];
            let d = &g.nodes[e.dst as usize];
            assert!(
                !(s.is_instruction() && d.is_instruction()),
                "data edge between two instructions"
            );
        }
    }

    #[test]
    fn vocab_indices_in_range_and_distinct_by_kind() {
        let m = loop_module();
        let g = build_module_graph(&m);
        for n in &g.nodes {
            assert!(n.vocab_index() < Node::VOCAB_SIZE);
        }
        let instr = Node {
            kind: NodeKind::Instruction(0),
        };
        let var = Node {
            kind: NodeKind::Variable(0),
        };
        let cst = Node {
            kind: NodeKind::Constant(0),
        };
        let ext = Node {
            kind: NodeKind::ExternalEntry,
        };
        let set: std::collections::HashSet<usize> = [instr, var, cst, ext]
            .iter()
            .map(Node::vocab_index)
            .collect();
        assert_eq!(set.len(), 4);
        assert_eq!(ext.vocab_index(), Node::VOCAB_SIZE - 1);
    }

    #[test]
    fn csr_matches_edge_list() {
        let m = loop_module();
        let g = build_module_graph(&m);
        for r in Relation::ALL {
            let csr_in = g.csr_in(r);
            let csr_out = g.csr_out(r);
            assert_eq!(csr_in.num_edges(), g.num_edges(r));
            assert_eq!(csr_out.num_edges(), g.num_edges(r));
            assert_eq!(csr_in.num_nodes(), g.num_nodes());
            // Total degree equals edge count.
            let in_deg: usize = (0..g.num_nodes()).map(|i| csr_in.degree(i)).sum();
            assert_eq!(in_deg, g.num_edges(r));
            // Every incoming neighbor relationship appears in the edge list.
            for node in 0..g.num_nodes() {
                for &nb in csr_in.neighbors(node) {
                    assert!(g.edges[r.index()]
                        .iter()
                        .any(|e| e.src == nb && e.dst == node as u32));
                }
            }
        }
    }

    #[test]
    fn phi_back_edge_creates_control_cycle() {
        let m = loop_module();
        let g = build_function_graph(&m, &m.functions[0]);
        // The latch branch must produce a control edge back to the header's
        // first instruction (the phi), i.e. some control edge goes
        // "backwards" in node-id order.
        assert!(g.edges[Relation::Control.index()]
            .iter()
            .any(|e| e.dst < e.src));
    }

    #[test]
    fn module_graph_with_external_callee_gets_entry_node() {
        let mut m = loop_module();
        // Make the helper external (drop its body).
        let helper = m.functions.iter_mut().find(|f| f.name == "helper").unwrap();
        helper.blocks.clear();
        helper.instrs.clear();
        helper.consts.clear();
        helper.attrs.external = true;
        m.resolve_calls();
        let g = build_module_graph(&m);
        g.validate().unwrap();
        assert!(
            g.nodes.iter().any(|n| n.kind == NodeKind::ExternalEntry),
            "external callee must appear as an entry placeholder"
        );
        // Call edges attach to that placeholder in both directions.
        assert_eq!(g.num_edges(Relation::Call), 2);
    }

    #[test]
    fn empty_relation_yields_empty_csr() {
        // A straight-line function has no call edges.
        let mut m = Module::new("m");
        let mut b = mga_ir::builder::FunctionBuilder::new("f", vec![], Type::I64);
        let one = b.const_i64(1);
        let two = b.add(one, one);
        b.ret(two);
        m.add_function(b.finish());
        let g = build_module_graph(&m);
        let csr = g.csr_in(Relation::Call);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        for i in 0..g.num_nodes() {
            assert_eq!(csr.degree(i), 0);
        }
    }

    #[test]
    fn instruction_nodes_listed() {
        let m = loop_module();
        let g = build_function_graph(&m, &m.functions[0]);
        let instrs = g.instruction_nodes();
        assert_eq!(instrs.len(), GraphStats::of(&g).instructions);
        for &i in &instrs {
            assert!(g.nodes[i as usize].is_instruction());
        }
    }

    /// The cached endpoint lists and the CSR adjacencies are two views of
    /// the same edge-list pass: on a graph exercising every relation they
    /// must agree edge-for-edge, in both groupings.
    #[test]
    fn csr_and_endpoint_lists_agree() {
        let m = loop_module();
        let g = build_module_graph(&m);
        g.validate().unwrap();
        for r in Relation::ALL {
            let (src, dst) = g.edge_endpoints(r);
            assert_eq!(src.len(), g.num_edges(r));
            assert_eq!(dst.len(), g.num_edges(r));
            // Endpoint lists preserve raw edge order.
            for (i, e) in g.edges[r.index()].iter().enumerate() {
                assert_eq!((src[i], dst[i]), (e.src, e.dst));
            }
            let csr_in = g.csr_in(r);
            let csr_out = g.csr_out(r);
            assert_eq!(csr_in.num_edges(), src.len());
            assert_eq!(csr_out.num_edges(), src.len());
            // Each edge appears under its destination (incoming) and its
            // source (outgoing), with in-group order following edge order.
            let mut seen_in = vec![0usize; g.num_nodes()];
            let mut seen_out = vec![0usize; g.num_nodes()];
            for (&s, &d) in src.iter().zip(dst) {
                assert_eq!(csr_in.neighbors(d as usize)[seen_in[d as usize]], s);
                assert_eq!(csr_out.neighbors(s as usize)[seen_out[s as usize]], d);
                seen_in[d as usize] += 1;
                seen_out[s as usize] += 1;
            }
            // And the legacy edge-list constructor builds the same CSR.
            assert_eq!(
                csr_in,
                Csr::from_edges(g.num_nodes(), &g.edges[r.index()], true)
            );
        }
        // At least two relations must actually carry edges for this test
        // to mean anything.
        let populated = Relation::ALL
            .iter()
            .filter(|&&r| g.num_edges(r) > 0)
            .count();
        assert!(populated >= 2, "test graph must be multi-relation");
    }
}
