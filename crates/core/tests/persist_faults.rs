//! Checkpoint robustness under byte-level corruption.
//!
//! Property: for a valid v2 checkpoint produced by real training, any
//! truncation and any single-byte substitution must surface as a typed
//! [`PersistError::Malformed`] — never a panic, and never a silently
//! accepted load. The file-level FNV-1a seal guarantees this for the
//! sealed body (a single-byte substitution always changes the hash);
//! strict lowercase-hex parsing and the v1-section guard cover the few
//! unsealed tail/header bytes.

use std::sync::OnceLock;

use proptest::prelude::*;

use mga_core::cv::kfold_by_group;
use mga_core::model::{FitOptions, FusionModel, Modality, ModelConfig};
use mga_core::omp::OmpTask;
use mga_core::persist::{self, PersistError};
use mga_core::OmpDataset;
use mga_dae::DaeConfig;
use mga_gnn::{GnnConfig, UpdateKind};
use mga_kernels::catalog::openmp_thread_dataset;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

/// Train one tiny model with checkpointing on and return the resulting
/// v2 checkpoint file bytes (training state included). Shared across
/// all proptest cases — training once is what makes 100s of corruption
/// cases affordable.
fn checkpoint_bytes() -> &'static [u8] {
    static CKPT: OnceLock<Vec<u8>> = OnceLock::new();
    CKPT.get_or_init(|| {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
        let cpu = CpuSpec::comet_lake();
        let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
        let task = OmpTask::new(&ds);
        let folds = kfold_by_group(&ds.groups(), 3, 1);
        let cfg = ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 10,
                layers: 1,
                update: UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 12,
                hidden_dim: 8,
                code_dim: 4,
                epochs: 10,
                ..DaeConfig::default()
            },
            hidden: 16,
            epochs: 8,
            lr: 0.02,
            seed: 2,
        };
        let data = task.train_data(&ds);
        let path = std::env::temp_dir().join("mga_persist_faults.ckpt");
        let _ = std::fs::remove_file(&path);
        let opts = FitOptions {
            checkpoint: Some(&path),
            ..FitOptions::default()
        };
        FusionModel::try_fit(cfg, &data, &folds[0].train, &task.codec.head_sizes(), &opts)
            .expect("tiny training run failed");
        std::fs::read(&path).expect("checkpoint file missing after training")
    })
}

fn describe(res: &Result<(FusionModel, Option<persist::TrainState>), PersistError>) -> String {
    match res {
        Ok(_) => "Ok(model)".to_string(),
        Err(e) => format!("Err({e})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncation_is_typed_malformed(cut in 0..checkpoint_bytes().len()) {
        let bytes = checkpoint_bytes();
        // `cut` is in 0..len, i.e. always a strict prefix.
        let res = persist::load_checkpoint_bytes(&bytes[..cut]);
        prop_assert!(
            matches!(res, Err(PersistError::Malformed(_))),
            "truncation at {}/{} loaded as {}",
            cut,
            bytes.len(),
            describe(&res)
        );
    }

    #[test]
    fn single_byte_mutation_is_typed_malformed(
        pos in 0..checkpoint_bytes().len(),
        raw in 0u8..=255,
    ) {
        let bytes = checkpoint_bytes();
        // Skew away from a no-op substitution (there is no shrinking, so
        // remapping beats discarding the case).
        let byte = if raw == bytes[pos] { raw.wrapping_add(1) } else { raw };
        let mut mutated = bytes.to_vec();
        mutated[pos] = byte;
        let res = persist::load_checkpoint_bytes(&mutated);
        prop_assert!(
            matches!(res, Err(PersistError::Malformed(_))),
            "byte {} ({:#04x} -> {:#04x}) loaded as {}",
            pos,
            bytes[pos],
            byte,
            describe(&res)
        );
    }
}

/// The two corruptions the random sweep is unlikely to hit, pinned
/// deterministically: flipping the header version to `v1` (which would
/// bypass seal verification if v2-only sections weren't rejected there)
/// and case-flipping a seal hex digit (which `from_str_radix` alone
/// would re-parse to the stored value).
#[test]
fn header_downgrade_and_seal_case_flip_are_rejected() {
    let text = std::str::from_utf8(checkpoint_bytes()).expect("checkpoint is UTF-8");

    let downgraded = text.replacen("mga-model v2", "mga-model v1", 1);
    assert!(
        matches!(
            persist::load_checkpoint(&downgraded),
            Err(PersistError::Malformed(_))
        ),
        "v1-headered file with v2 sections was accepted"
    );

    let seal_at = text.rfind("[crc] ").expect("checkpoint has no seal");
    let hex_pos = text[seal_at + 6..]
        .char_indices()
        .find(|(_, c)| c.is_ascii_lowercase())
        .map(|(i, _)| seal_at + 6 + i)
        .expect("seal hash has no a-f digit to case-flip");
    let mut flipped = text.as_bytes().to_vec();
    flipped[hex_pos] = flipped[hex_pos].to_ascii_uppercase();
    assert!(
        matches!(
            persist::load_checkpoint_bytes(&flipped),
            Err(PersistError::Malformed(_))
        ),
        "seal with an uppercase hex digit was accepted"
    );
}

/// save → load → save must be byte-identical (floats are stored as bit
/// patterns, so serialization is a fixpoint). This is what makes
/// "resumed run == uninterrupted run" checks bitwise meaningful.
#[test]
fn save_load_save_is_a_fixpoint() {
    let bytes = checkpoint_bytes();
    let text = std::str::from_utf8(bytes).expect("checkpoint is UTF-8");
    let (model, state) = persist::load_checkpoint(text).expect("valid checkpoint rejected");
    assert!(state.is_some(), "trained checkpoint lost its TrainState");
    let resaved = persist::save_checkpoint(&model, 12, 5, state.as_ref());
    assert_eq!(text, resaved, "re-serialization is not a fixpoint");
}
