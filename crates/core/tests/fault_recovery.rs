//! Fault-tolerant training without any fault armed: the guardrails must
//! be invisible on healthy runs, surface typed errors (never panics)
//! when they do trip, and the checkpoint/resume plumbing must be exact.
//!
//! These tests run with `MGA_FAULT` unset; the injected-fault
//! counterparts live in the `validate_faults` harness binary (CI runs
//! both).

use mga_core::cv::kfold_by_group;
use mga_core::model::{FitOptions, FusionModel, Modality, ModelConfig, TrainData};
use mga_core::omp::OmpTask;
use mga_core::{GuardrailConfig, OmpDataset, TrainError};
use mga_dae::DaeConfig;
use mga_gnn::{GnnConfig, UpdateKind};
use mga_kernels::catalog::openmp_thread_dataset;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

fn small_task() -> (OmpDataset, OmpTask, Vec<usize>, Vec<usize>) {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
    let cpu = CpuSpec::comet_lake();
    let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 1);
    (ds, task, folds[0].train.clone(), folds[0].val.clone())
}

fn small_cfg(epochs: usize) -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 10,
            layers: 1,
            update: UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 12,
            hidden_dim: 8,
            code_dim: 4,
            epochs: 10,
            ..DaeConfig::default()
        },
        hidden: 16,
        epochs,
        lr: 0.02,
        seed: 2,
    }
}

fn predictions(m: &FusionModel, data: &TrainData<'_>, val: &[usize]) -> Vec<Vec<usize>> {
    m.predict(data, val)
}

/// With default guardrails and no checkpoint, `try_fit` is `fit`:
/// identical predictions and identical final loss, bit for bit.
#[test]
fn healthy_try_fit_matches_fit_exactly() {
    let (ds, task, train, val) = small_task();
    let data = task.train_data(&ds);
    let heads = task.codec.head_sizes();

    let classic = FusionModel::fit(small_cfg(12), &data, &train, &heads);
    let guarded =
        FusionModel::try_fit(small_cfg(12), &data, &train, &heads, &FitOptions::default())
            .expect("guarded training failed on a healthy run");

    assert_eq!(
        classic.final_loss.to_bits(),
        guarded.final_loss.to_bits(),
        "guardrails perturbed the final loss"
    );
    assert_eq!(
        predictions(&classic, &data, &val),
        predictions(&guarded, &data, &val),
        "guardrails perturbed predictions"
    );
}

/// A tripped guardrail with a zero retry budget is a typed
/// `RetryBudgetExhausted` wrapping the original failure — not a panic.
#[test]
fn exhausted_budget_is_a_typed_error() {
    let (ds, task, train, _) = small_task();
    let data = task.train_data(&ds);
    let heads = task.codec.head_sizes();

    // An absurdly low explosion threshold trips on the very first epoch
    // of any real run.
    let opts = FitOptions {
        guard: GuardrailConfig {
            explode_norm: 1e-20,
            max_retries: 0,
            ..GuardrailConfig::default()
        },
        ..FitOptions::default()
    };
    let err = FusionModel::try_fit(small_cfg(12), &data, &train, &heads, &opts)
        .err()
        .expect("impossible explosion threshold did not trip");
    match err {
        TrainError::RetryBudgetExhausted { retries, last } => {
            assert_eq!(retries, 0);
            assert!(
                matches!(*last, TrainError::GradExplosion { .. }),
                "unexpected failure class: {last}"
            );
        }
        other => panic!("expected RetryBudgetExhausted, got: {other}"),
    }
}

/// A finished checkpoint short-circuits a rerun with the same options to
/// the exact same model, and an incompatible checkpoint is ignored
/// (fresh training, same result as no checkpoint at all).
#[test]
fn checkpoint_resume_and_compat_gate() {
    let (ds, task, train, val) = small_task();
    let data = task.train_data(&ds);
    let heads = task.codec.head_sizes();
    let path = std::env::temp_dir().join("mga_fault_recovery_resume.ckpt");
    let _ = std::fs::remove_file(&path);

    let opts = FitOptions {
        checkpoint: Some(&path),
        ..FitOptions::default()
    };
    let first = FusionModel::try_fit(small_cfg(12), &data, &train, &heads, &opts)
        .expect("checkpointed training failed");
    assert!(path.exists(), "no checkpoint written");

    // Rerun: the finished checkpoint is loaded and returned as-is.
    let rerun = FusionModel::try_fit(small_cfg(12), &data, &train, &heads, &opts)
        .expect("rerun from finished checkpoint failed");
    assert_eq!(first.final_loss.to_bits(), rerun.final_loss.to_bits());
    assert_eq!(
        predictions(&first, &data, &val),
        predictions(&rerun, &data, &val),
        "resume from a finished checkpoint changed predictions"
    );

    // A different config must NOT resume from that file: it trains
    // fresh and matches a run that never saw the checkpoint.
    let mut other_cfg = small_cfg(12);
    other_cfg.seed = 7;
    let fresh = FusionModel::try_fit(
        other_cfg.clone(),
        &data,
        &train,
        &heads,
        &FitOptions::default(),
    )
    .expect("fresh training failed");
    let gated = FusionModel::try_fit(other_cfg, &data, &train, &heads, &opts)
        .expect("training with incompatible checkpoint failed");
    assert_eq!(
        predictions(&fresh, &data, &val),
        predictions(&gated, &data, &val),
        "incompatible checkpoint leaked into training"
    );
    let _ = std::fs::remove_file(&path);
}
