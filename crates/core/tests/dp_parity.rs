//! Data-parallel training parity.
//!
//! The micro-batch partition and the binary-tree gradient reduction are
//! pure functions of the batch and the width W — never of `MGA_THREADS`
//! — so a trained model must be:
//!
//! * bitwise deterministic for every fixed width (repeat runs agree),
//! * bitwise identical across thread counts for the same width (the
//!   cross-process battery re-executes this binary under
//!   `MGA_THREADS` ∈ {1, 4}),
//! * numerically equivalent across widths (same gradient up to f32
//!   reassociation: the training trajectory and predictions agree), and
//! * *exactly* the legacy single-tape path for degenerate partitions
//!   (W = 1, or a batch whose samples all share one kernel).

use mga_core::cv::kfold_by_group;
use mga_core::model::{batch_targets, FusionModel, Modality, ModelConfig};
use mga_core::omp::OmpTask;
use mga_core::OmpDataset;
use mga_dae::DaeConfig;
use mga_gnn::{GnnConfig, UpdateKind};
use mga_kernels::catalog::openmp_thread_dataset;
use mga_nn::optim::AdamW;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;
use proptest::prelude::*;

fn small_task() -> (OmpDataset, OmpTask, Vec<usize>, Vec<usize>) {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
    let cpu = CpuSpec::comet_lake();
    let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 1);
    (ds, task, folds[0].train.clone(), folds[0].val.clone())
}

fn small_cfg(epochs: usize) -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 10,
            layers: 1,
            update: UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 12,
            hidden_dim: 8,
            code_dim: 4,
            epochs: 10,
            ..DaeConfig::default()
        },
        hidden: 16,
        epochs,
        lr: 0.02,
        seed: 2,
    }
}

/// Outcome of one width-controlled training run: the FNV checksum over
/// every trained parameter, the final epoch's loss, and the validation
/// predictions.
struct Run {
    checksum: u64,
    loss: f32,
    preds: Vec<Vec<usize>>,
}

/// Initialize a model (zero `fit` epochs — DAE pre-training and weight
/// init only), then drive `epochs` epochs at micro-batch width `w`.
/// A fresh `PreparedBatch` per run: the micro-batch plan is cached per
/// prepared batch, keyed by the first width it is asked for.
fn train_at_width(w: usize, epochs: usize, idx_override: Option<&[usize]>) -> Run {
    let (ds, task, train, val) = small_task();
    let idx: Vec<usize> = idx_override.map(<[usize]>::to_vec).unwrap_or(train);
    let data = task.train_data(&ds);
    let heads = task.codec.head_sizes();
    let mut m = FusionModel::fit(small_cfg(0), &data, &idx, &heads);
    let prep = m.prepare(&data, &idx);
    let targets = batch_targets(&data, &idx, heads.len());
    let mut opt = AdamW::new(0.02).with_weight_decay(0.001);
    let mut loss = f32::NAN;
    for _ in 0..epochs {
        loss = m
            .train_epoch_stats_width(&prep, &targets, &mut opt, Some(w))
            .loss;
    }
    Run {
        checksum: m.param_checksum(),
        loss,
        preds: m.predict(&data, &val),
    }
}

/// Every width trains deterministically (repeat runs bitwise equal),
/// and all widths follow the same trajectory: identical predictions and
/// losses equal up to f32 reassociation of the per-micro-batch sums.
#[test]
fn widths_are_deterministic_and_agree() {
    let reference = train_at_width(1, 4, None);
    assert!(reference.loss.is_finite());
    for w in [1usize, 2, 3, 4, 8, 64] {
        let a = train_at_width(w, 4, None);
        let b = train_at_width(w, 4, None);
        assert_eq!(
            a.checksum, b.checksum,
            "width {w}: repeat runs disagree bitwise"
        );
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "width {w}: loss drifted"
        );
        let rel = (a.loss - reference.loss).abs() / reference.loss.abs().max(1e-12);
        assert!(
            rel < 5e-3,
            "width {w}: loss {} diverged from single-tape {} (rel {rel})",
            a.loss,
            reference.loss
        );
        assert_eq!(
            a.preds, reference.preds,
            "width {w}: predictions diverged from single-tape run"
        );
    }
}

/// A batch whose samples all come from one kernel cannot be split
/// without tearing a kernel across micro-batches, so every width must
/// collapse to the identical single-tape path — bitwise, not just
/// approximately.
#[test]
fn single_kernel_batch_collapses_to_single_tape() {
    let (ds, _task, _train, _val) = small_task();
    let groups = ds.groups();
    let idx: Vec<usize> = (0..groups.len())
        .filter(|&i| groups[i] == groups[0])
        .collect();
    assert!(!idx.is_empty());
    let one = train_at_width(1, 3, Some(&idx));
    let wide = train_at_width(8, 3, Some(&idx));
    assert_eq!(
        one.checksum, wide.checksum,
        "single-kernel batch must take the legacy path at any width"
    );
    assert_eq!(one.loss.to_bits(), wide.loss.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Partition invariance under fuzzed widths: any W trains
    /// deterministically and lands on the single-tape trajectory.
    #[test]
    fn fuzzed_width_is_deterministic(w in 1usize..=10) {
        let a = train_at_width(w, 2, None);
        let b = train_at_width(w, 2, None);
        prop_assert_eq!(a.checksum, b.checksum, "width {} not deterministic", w);
        prop_assert!(a.loss.is_finite());
        let r = train_at_width(1, 2, None);
        let rel = (a.loss - r.loss).abs() / r.loss.abs().max(1e-12);
        prop_assert!(rel < 5e-3, "width {} loss {} vs single-tape {}", w, a.loss, r.loss);
    }
}

/// Cross-process thread-count battery: the trained parameter checksums
/// for several widths must be bitwise identical under `MGA_THREADS=1`
/// (fully sequential) and `MGA_THREADS=4`. The pool reads the env var
/// once per process, so the test re-executes itself with the override
/// and compares dumps — the same harness as `parallel_parity`'s kernel
/// battery, but end-to-end over the data-parallel epoch.
#[test]
fn mga_threads_microbatch_parity_bitwise() {
    const DUMP: &str = "MGA_DP_PARITY_DUMP";
    let sums: Vec<u64> = [1usize, 4, 8]
        .iter()
        .map(|&w| train_at_width(w, 3, None).checksum)
        .collect();
    if let Ok(path) = std::env::var(DUMP) {
        // Child: record and exit.
        let text: Vec<String> = sums.iter().map(|s| s.to_string()).collect();
        std::fs::write(path, text.join("\n")).expect("write parity dump");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "4"] {
        let dump = std::env::temp_dir().join(format!(
            "mga_dp_parity_{}_{threads}.txt",
            std::process::id()
        ));
        let status = std::process::Command::new(&exe)
            .args([
                "--exact",
                "mga_threads_microbatch_parity_bitwise",
                "--nocapture",
            ])
            .env("MGA_THREADS", threads)
            .env(DUMP, &dump)
            .status()
            .expect("spawn thread-count child");
        assert!(status.success(), "MGA_THREADS={threads} child run failed");
        let text = std::fs::read_to_string(&dump).expect("read parity dump");
        let _ = std::fs::remove_file(&dump);
        let child_sums: Vec<u64> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(
            sums, child_sums,
            "trained parameters differ under MGA_THREADS={threads}"
        );
    }
}
