//! In-tree fault-injection smoke test (the full matrix lives in the
//! `validate_faults` harness binary).
//!
//! The fault registry is process-global, so everything runs inside ONE
//! `#[test]`: Rust's parallel test runner would otherwise interleave an
//! armed spec into unrelated tests.

use mga_core::cv::kfold_by_group;
use mga_core::model::{FitOptions, FusionModel, Modality, ModelConfig};
use mga_core::omp::OmpTask;
use mga_core::persist::{self, PersistError};
use mga_core::{GuardrailConfig, OmpDataset, TrainError};
use mga_dae::DaeConfig;
use mga_gnn::{GnnConfig, UpdateKind};
use mga_kernels::catalog::openmp_thread_dataset;
use mga_obs::fault;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

fn small_cfg(epochs: usize) -> ModelConfig {
    ModelConfig {
        modality: Modality::Multimodal,
        use_aux: true,
        gnn: GnnConfig {
            dim: 10,
            layers: 1,
            update: UpdateKind::Gru,
            homogeneous: false,
        },
        dae: DaeConfig {
            input_dim: 12,
            hidden_dim: 8,
            code_dim: 4,
            epochs: 10,
            ..DaeConfig::default()
        },
        hidden: 16,
        epochs,
        lr: 0.02,
        seed: 2,
    }
}

#[test]
fn armed_faults_surface_typed_failures_and_disarm_cleanly() {
    let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
    let cpu = CpuSpec::comet_lake();
    let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
    let task = OmpTask::new(&ds);
    let folds = kfold_by_group(&ds.groups(), 3, 1);
    let (train, val) = (&folds[0].train, &folds[0].val);
    let data = task.train_data(&ds);
    let heads = task.codec.head_sizes();
    fault::clear();

    // --- grad:nan at probability 1: every epoch fails, the retry budget
    // drains, and the caller gets a typed RetryBudgetExhausted.
    fault::set_spec("grad:nan:1.0:1").expect("valid fault spec rejected");
    let opts = FitOptions {
        guard: GuardrailConfig {
            max_retries: 2,
            ..GuardrailConfig::default()
        },
        ..FitOptions::default()
    };
    let err = FusionModel::try_fit(small_cfg(12), &data, train, &heads, &opts)
        .err()
        .expect("permanent NaN injection did not fail training");
    match err {
        TrainError::RetryBudgetExhausted { retries, .. } => assert_eq!(retries, 2),
        other => panic!("expected RetryBudgetExhausted, got: {other}"),
    }

    // --- ckpt:truncate at probability 1: the save itself succeeds (the
    // corruption models a torn write), but loading is a typed Malformed.
    fault::clear();
    let clean = FusionModel::fit(small_cfg(8), &data, train, &heads);
    let path = std::env::temp_dir().join("mga_fault_injection_ckpt.ckpt");
    fault::set_spec("ckpt:truncate:1.0:4").expect("valid fault spec rejected");
    persist::save_to_file(&clean, 12, 5, &path).expect("save failed");
    assert!(
        matches!(
            persist::load_from_file(&path),
            Err(PersistError::Malformed(_))
        ),
        "truncated checkpoint was not rejected as Malformed"
    );

    // --- disarmed: everything is healthy and deterministic again.
    fault::clear();
    persist::save_to_file(&clean, 12, 5, &path).expect("clean save failed");
    let restored = persist::load_from_file(&path).expect("clean checkpoint rejected");
    assert_eq!(
        clean.predict(&data, val),
        restored.predict(&data, val),
        "round trip changed predictions after disarm"
    );
    let _ = std::fs::remove_file(&path);
}
