//! Numeric guardrails for the training loop.
//!
//! [`TrainHealth`] watches the per-epoch loss and pre-clip gradient norm
//! that [`crate::model::FusionModel::train_epoch`] already produces and
//! turns numeric blow-ups — NaN/Inf loss, exploding gradients, runaway
//! loss divergence — into a structured [`TrainError`] instead of letting
//! NaNs propagate into the weights and silently poison every later
//! prediction. The monitor is observation-only: it performs no
//! floating-point operation that feeds back into the model, so a healthy
//! run with guardrails is bitwise identical to one without.
//!
//! Recovery (rollback to the last-good snapshot + learning-rate halving)
//! lives in `FusionModel::try_fit`; this module only detects and
//! classifies.

use mga_obs::metrics;

/// Thresholds for [`TrainHealth`]. The defaults are deliberately loose:
/// they must never trip on a healthy run (the workspace's figure suite
/// trains with pre-clip gradient norms in the 1e0–1e2 range and strictly
/// bounded cross-entropy losses), only on genuine numeric failure.
#[derive(Debug, Clone)]
pub struct GuardrailConfig {
    /// Pre-clip gradient norm above this is an explosion.
    pub explode_norm: f32,
    /// An epoch's loss above `divergence_factor * best_loss_so_far`
    /// (and above `divergence_floor`) is divergence.
    pub divergence_factor: f32,
    /// Absolute loss floor below which divergence is never declared
    /// (ratios of tiny losses are noise).
    pub divergence_floor: f32,
    /// Epochs before divergence checks engage (early training is
    /// legitimately jumpy; NaN/Inf detection is always on).
    pub warmup_epochs: usize,
    /// Recovery attempts (rollback + LR halving) before giving up.
    pub max_retries: u32,
    /// Take a rollback snapshot every this many healthy epochs.
    pub snapshot_every: usize,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        GuardrailConfig {
            explode_norm: 1e6,
            divergence_factor: 50.0,
            divergence_floor: 1.0,
            warmup_epochs: 10,
            max_retries: 4,
            snapshot_every: 5,
        }
    }
}

/// A structured training failure. Carries enough context to log, decide
/// on recovery, or surface to the caller when the retry budget runs out.
#[derive(Debug, Clone)]
pub enum TrainError {
    /// The epoch's loss came back NaN or infinite.
    NonFiniteLoss { epoch: usize, loss: f32 },
    /// The pre-clip gradient norm was NaN/Inf or above the explosion
    /// threshold.
    GradExplosion { epoch: usize, norm: f32 },
    /// The loss blew past `divergence_factor ×` the best loss seen.
    Diverged { epoch: usize, loss: f32, best: f32 },
    /// Recovery was attempted `retries` times and the run still failed.
    RetryBudgetExhausted { retries: u32, last: Box<TrainError> },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NonFiniteLoss { epoch, loss } => {
                write!(f, "non-finite loss {loss} at epoch {epoch}")
            }
            TrainError::GradExplosion { epoch, norm } => {
                write!(f, "gradient norm {norm} exploded at epoch {epoch}")
            }
            TrainError::Diverged { epoch, loss, best } => {
                write!(
                    f,
                    "loss diverged to {loss} at epoch {epoch} (best was {best})"
                )
            }
            TrainError::RetryBudgetExhausted { retries, last } => {
                write!(
                    f,
                    "training failed after {retries} recovery attempts: {last}"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Per-run monitor; feed it every epoch's `(loss, grad_norm)`.
#[derive(Debug, Clone)]
pub struct TrainHealth {
    cfg: GuardrailConfig,
    best_loss: f32,
    /// Epochs observed since the last rollback (divergence warmup is
    /// relative to this, not to the global epoch counter).
    observed: usize,
    retries: u32,
}

impl TrainHealth {
    pub fn new(cfg: GuardrailConfig) -> TrainHealth {
        TrainHealth {
            cfg,
            best_loss: f32::INFINITY,
            observed: 0,
            retries: 0,
        }
    }

    pub fn config(&self) -> &GuardrailConfig {
        &self.cfg
    }

    /// Recovery attempts consumed so far.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Best (lowest) loss observed so far.
    pub fn best_loss(&self) -> f32 {
        self.best_loss
    }

    /// Check one epoch's numbers. `Ok` means healthy (and the epoch is
    /// folded into the monitor's history); `Err` classifies the failure
    /// and leaves the history untouched for the caller's rollback.
    pub fn observe(&mut self, epoch: usize, loss: f32, grad_norm: f32) -> Result<(), TrainError> {
        if !loss.is_finite() {
            metrics::counter("health.nonfinite_loss").inc();
            return Err(TrainError::NonFiniteLoss { epoch, loss });
        }
        if !grad_norm.is_finite() || grad_norm > self.cfg.explode_norm {
            metrics::counter("health.grad_explosion").inc();
            return Err(TrainError::GradExplosion {
                epoch,
                norm: grad_norm,
            });
        }
        if self.observed >= self.cfg.warmup_epochs
            && loss > self.cfg.divergence_floor
            && loss > self.best_loss * self.cfg.divergence_factor
        {
            metrics::counter("health.diverged").inc();
            return Err(TrainError::Diverged {
                epoch,
                loss,
                best: self.best_loss,
            });
        }
        self.observed += 1;
        if loss < self.best_loss {
            self.best_loss = loss;
        }
        Ok(())
    }

    /// Record a recovery attempt and reset the divergence history (the
    /// model rolled back, so recent losses no longer describe its state).
    /// Returns the total retries consumed, for budget checks.
    pub fn note_rollback(&mut self) -> u32 {
        self.retries += 1;
        self.observed = 0;
        self.best_loss = f32::INFINITY;
        metrics::counter("health.recoveries").inc();
        self.retries
    }

    /// Restore the retry count (resume-from-checkpoint).
    pub fn set_retries(&mut self, retries: u32) {
        self.retries = retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TrainHealth {
        TrainHealth::new(GuardrailConfig {
            warmup_epochs: 2,
            ..GuardrailConfig::default()
        })
    }

    #[test]
    fn healthy_descent_passes() {
        let mut h = quick();
        for (e, loss) in [5.0f32, 3.0, 2.0, 1.5, 1.2].into_iter().enumerate() {
            h.observe(e, loss, 10.0).expect("healthy epoch flagged");
        }
        assert_eq!(h.best_loss(), 1.2);
        assert_eq!(h.retries(), 0);
    }

    #[test]
    fn nan_and_inf_loss_flagged_immediately() {
        let mut h = quick();
        assert!(matches!(
            h.observe(0, f32::NAN, 1.0),
            Err(TrainError::NonFiniteLoss { epoch: 0, .. })
        ));
        assert!(matches!(
            h.observe(0, f32::INFINITY, 1.0),
            Err(TrainError::NonFiniteLoss { .. })
        ));
    }

    #[test]
    fn nan_or_huge_grad_norm_is_explosion() {
        let mut h = quick();
        assert!(matches!(
            h.observe(0, 1.0, f32::NAN),
            Err(TrainError::GradExplosion { .. })
        ));
        assert!(matches!(
            h.observe(0, 1.0, 1e9),
            Err(TrainError::GradExplosion { .. })
        ));
        assert!(h.observe(0, 1.0, 1e5).is_ok(), "large-but-sane norm passes");
    }

    #[test]
    fn divergence_needs_warmup_and_factor() {
        let mut h = quick();
        // During warmup huge ratios are tolerated (as long as finite).
        assert!(h.observe(0, 1.0, 1.0).is_ok());
        assert!(h.observe(1, 100.0, 1.0).is_ok());
        // Past warmup, 50x the best (1.0) trips.
        assert!(h.observe(2, 2.0, 1.0).is_ok());
        let err = h.observe(3, 60.0, 1.0);
        assert!(matches!(err, Err(TrainError::Diverged { .. })), "{err:?}");
        // Tiny absolute losses never count as divergence.
        let mut h2 = quick();
        for e in 0..4 {
            h2.observe(e, 1e-4, 1.0).unwrap();
        }
        assert!(h2.observe(4, 5e-3, 1.0).is_ok(), "ratio noise on tiny loss");
    }

    #[test]
    fn rollback_resets_history() {
        let mut h = quick();
        for e in 0..3 {
            h.observe(e, 1.0, 1.0).unwrap();
        }
        assert_eq!(h.note_rollback(), 1);
        assert_eq!(h.retries(), 1);
        // History cleared: a big loss right after rollback is warmup again.
        assert!(h.observe(3, 500.0, 1.0).is_ok());
    }

    #[test]
    fn errors_render_usefully() {
        let e = TrainError::RetryBudgetExhausted {
            retries: 4,
            last: Box::new(TrainError::NonFiniteLoss {
                epoch: 7,
                loss: f32::NAN,
            }),
        };
        let s = e.to_string();
        assert!(s.contains("4") && s.contains("epoch 7"), "{s}");
    }
}
