//! Dataset assembly: simulate-profile every kernel × input × config and
//! attach the static representations (graphs, vectors).

use mga_graph::{build_module_graph, ProGraph};
use mga_kernels::spec::KernelSpec;
use mga_sim::counters::Counters;
use mga_sim::cpu::CpuSpec;
use mga_sim::gpu::{run_mapping, GpuSpec};
use mga_sim::openmp::{simulate, OmpConfig};
use mga_vec::{extract_triples, train_seed_embeddings, SeedEmbeddings, TransEConfig, Triple};

/// One OpenMP (loop, input) sample.
#[derive(Debug, Clone)]
pub struct OmpSample {
    /// Index into the dataset's kernel list.
    pub kernel: usize,
    /// Index into the input-size ladder.
    pub input: usize,
    /// Working-set target in bytes.
    pub ws_bytes: f64,
    /// Counters measured at the default configuration (the profiling run
    /// the tuner performs at inference time).
    pub counters: Counters,
    /// Simulated runtime of every configuration in the space.
    pub runtimes: Vec<f64>,
    /// Index of the best (oracle) configuration.
    pub best: usize,
    /// Runtime at the default configuration.
    pub default_runtime: f64,
}

/// The OpenMP tuning dataset.
pub struct OmpDataset {
    pub specs: Vec<KernelSpec>,
    pub graphs: Vec<ProGraph>,
    /// IR2Vec-style program vector per kernel.
    pub vectors: Vec<Vec<f32>>,
    pub space: Vec<OmpConfig>,
    pub sizes: Vec<f64>,
    pub cpu: CpuSpec,
    pub samples: Vec<OmpSample>,
    /// The seed embeddings (kept for encoding unseen kernels).
    pub embeddings: SeedEmbeddings,
}

/// Train the IR2Vec seed vocabulary over a set of kernels and encode each
/// kernel's module.
pub fn encode_kernels(
    specs: &[KernelSpec],
    dim: usize,
    seed: u64,
) -> (SeedEmbeddings, Vec<Vec<f32>>) {
    let mut triples: Vec<Triple> = Vec::new();
    for s in specs {
        triples.extend(extract_triples(&s.module));
    }
    let cfg = TransEConfig {
        dim,
        epochs: 25,
        ..TransEConfig::default()
    };
    let emb = train_seed_embeddings(&triples, &cfg, seed);
    let vectors = specs.iter().map(|s| emb.encode_module(&s.module)).collect();
    (emb, vectors)
}

impl OmpDataset {
    /// Build the dataset: per kernel the PROGRAML graph and IR2Vec
    /// vector; per (kernel, input) the full configuration sweep.
    pub fn build(
        specs: Vec<KernelSpec>,
        sizes: Vec<f64>,
        space: Vec<OmpConfig>,
        cpu: CpuSpec,
        vec_dim: usize,
        seed: u64,
    ) -> OmpDataset {
        assert!(!specs.is_empty() && !sizes.is_empty() && !space.is_empty());
        let graphs: Vec<ProGraph> = specs
            .iter()
            .map(|s| build_module_graph(&s.module))
            .collect();
        let (embeddings, vectors) = encode_kernels(&specs, vec_dim, seed);
        let default_cfg = OmpConfig::default_for(&cpu);

        let mut samples = Vec::with_capacity(specs.len() * sizes.len());
        for (ki, spec) in specs.iter().enumerate() {
            for (ii, &ws) in sizes.iter().enumerate() {
                let runtimes: Vec<f64> = space
                    .iter()
                    .map(|cfg| simulate(spec, ws, cfg, &cpu).runtime)
                    .collect();
                let best = runtimes
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                let default_run = simulate(spec, ws, &default_cfg, &cpu);
                samples.push(OmpSample {
                    kernel: ki,
                    input: ii,
                    ws_bytes: ws,
                    counters: default_run.counters,
                    runtimes,
                    best,
                    default_runtime: default_run.runtime,
                });
            }
        }
        OmpDataset {
            specs,
            graphs,
            vectors,
            space,
            sizes,
            cpu,
            samples,
            embeddings,
        }
    }

    /// Group id (kernel index) per sample — the unit the paper's CV folds
    /// partition.
    pub fn groups(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.kernel).collect()
    }

    /// App-level group id per sample (for leave-one-application-out).
    pub fn app_groups(&self) -> Vec<usize> {
        let mut apps: Vec<&str> = self.specs.iter().map(|s| s.app.as_str()).collect();
        apps.sort_unstable();
        apps.dedup();
        self.samples
            .iter()
            .map(|s| {
                apps.binary_search(&self.specs[s.kernel].app.as_str())
                    .unwrap()
            })
            .collect()
    }

    /// The oracle speedup of a sample (default / best runtime).
    pub fn oracle_speedup(&self, sample: &OmpSample) -> f64 {
        sample.default_runtime / sample.runtimes[sample.best]
    }

    /// The achieved speedup of choosing config `cfg_idx` for a sample.
    pub fn achieved_speedup(&self, sample: &OmpSample, cfg_idx: usize) -> f64 {
        sample.default_runtime / sample.runtimes[cfg_idx]
    }
}

/// One OpenCL device-mapping sample.
#[derive(Debug, Clone)]
pub struct OclSample {
    pub kernel: usize,
    pub transfer_bytes: f64,
    pub wg_size: u32,
    pub cpu_time: f64,
    pub gpu_time: f64,
    /// 1 = GPU is the better device.
    pub label: usize,
}

/// The OpenCL device-mapping dataset for one GPU.
pub struct OclDataset {
    pub specs: Vec<KernelSpec>,
    pub graphs: Vec<ProGraph>,
    pub vectors: Vec<Vec<f32>>,
    pub samples: Vec<OclSample>,
    pub embeddings: SeedEmbeddings,
    pub gpu: GpuSpec,
    pub cpu: CpuSpec,
}

impl OclDataset {
    /// Build ~670 labeled points for `gpu` over the kernel catalog.
    pub fn build(specs: Vec<KernelSpec>, gpu: GpuSpec, vec_dim: usize, seed: u64) -> OclDataset {
        let cpu = CpuSpec::i7_3820();
        let graphs: Vec<ProGraph> = specs
            .iter()
            .map(|s| build_module_graph(&s.module))
            .collect();
        let (embeddings, vectors) = encode_kernels(&specs, vec_dim, seed);
        let mut samples = Vec::new();
        for (ki, spec) in specs.iter().enumerate() {
            for p in mga_kernels::inputs::opencl_points(mga_sim::name_hash(&spec.name)) {
                let m = run_mapping(spec, p.transfer_bytes, p.wg_size, &cpu, &gpu);
                samples.push(OclSample {
                    kernel: ki,
                    transfer_bytes: p.transfer_bytes,
                    wg_size: p.wg_size,
                    cpu_time: m.cpu_time,
                    gpu_time: m.gpu_time,
                    label: usize::from(m.gpu_wins()),
                });
            }
        }
        OclDataset {
            specs,
            graphs,
            vectors,
            samples,
            embeddings,
            gpu,
            cpu,
        }
    }

    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Runtime of the statically best single device over all samples (the
    /// "static mapping" speedup baseline of §4.2).
    pub fn static_mapping_time(&self) -> f64 {
        let all_cpu: f64 = self.samples.iter().map(|s| s.cpu_time).sum();
        let all_gpu: f64 = self.samples.iter().map(|s| s.gpu_time).sum();
        all_cpu.min(all_gpu)
    }

    /// Is the GPU the better *static* device (by total time)?
    pub fn static_device_is_gpu(&self) -> bool {
        let all_cpu: f64 = self.samples.iter().map(|s| s.cpu_time).sum();
        let all_gpu: f64 = self.samples.iter().map(|s| s.gpu_time).sum();
        all_gpu < all_cpu
    }

    /// Geometric-mean per-sample speedup of a mapping over the static
    /// baseline (how the paper and IR2Vec report §4.2 speedups — each
    /// kernel execution counts equally, not weighted by its runtime).
    pub fn geomean_speedup(&self, pred: &[usize]) -> f64 {
        assert_eq!(pred.len(), self.samples.len());
        let gpu_static = self.static_device_is_gpu();
        let ratios: Vec<f64> = self
            .samples
            .iter()
            .zip(pred)
            .map(|(s, &p)| {
                let static_t = if gpu_static { s.gpu_time } else { s.cpu_time };
                let mapped_t = if p == 1 { s.gpu_time } else { s.cpu_time };
                static_t / mapped_t
            })
            .collect();
        let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
        (log_sum / ratios.len() as f64).exp()
    }

    /// Geometric-mean per-sample speedup of the oracle mapping.
    pub fn geomean_oracle_speedup(&self) -> f64 {
        self.geomean_speedup(&self.labels())
    }

    /// Total runtime when each sample runs on its predicted device
    /// (`pred[i] == 1` → GPU).
    pub fn mapped_time(&self, pred: &[usize]) -> f64 {
        assert_eq!(pred.len(), self.samples.len());
        self.samples
            .iter()
            .zip(pred)
            .map(|(s, &p)| if p == 1 { s.gpu_time } else { s.cpu_time })
            .sum()
    }

    /// Total runtime with oracle mapping.
    pub fn oracle_time(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.cpu_time.min(s.gpu_time))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_kernels::catalog::{opencl_catalog, openmp_thread_dataset};
    use mga_sim::openmp::thread_space;

    fn tiny_omp() -> OmpDataset {
        let specs: Vec<KernelSpec> = openmp_thread_dataset().into_iter().take(6).collect();
        let cpu = CpuSpec::comet_lake();
        let sizes = vec![
            64.0 * 1024.0,
            8.0 * 1024.0 * 1024.0,
            256.0 * 1024.0 * 1024.0,
        ];
        let space = thread_space(&cpu);
        OmpDataset::build(specs, sizes, space, cpu, 16, 7)
    }

    #[test]
    fn omp_dataset_shapes() {
        let ds = tiny_omp();
        assert_eq!(ds.samples.len(), 6 * 3);
        assert_eq!(ds.graphs.len(), 6);
        assert_eq!(ds.vectors.len(), 6);
        assert!(ds.vectors.iter().all(|v| v.len() == 16));
        for s in &ds.samples {
            assert_eq!(s.runtimes.len(), 8);
            assert!(s.best < 8);
            assert!(s.default_runtime > 0.0);
            // Oracle at least as good as default.
            assert!(ds.oracle_speedup(s) >= 0.99);
        }
    }

    #[test]
    fn omp_labels_are_argmin() {
        let ds = tiny_omp();
        for s in &ds.samples {
            let min = s.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(s.runtimes[s.best], min);
        }
    }

    #[test]
    fn omp_groups_align_with_kernels() {
        let ds = tiny_omp();
        let g = ds.groups();
        assert_eq!(g.len(), ds.samples.len());
        assert_eq!(g[0], 0);
        assert_eq!(g[3], 1);
        let apps = ds.app_groups();
        assert_eq!(apps.len(), ds.samples.len());
    }

    #[test]
    fn ocl_dataset_builds_with_both_labels() {
        let specs: Vec<KernelSpec> = opencl_catalog().into_iter().take(40).collect();
        let ds = OclDataset::build(specs, GpuSpec::gtx_970(), 16, 3);
        assert!(
            ds.samples.len() >= 60,
            "too few points: {}",
            ds.samples.len()
        );
        let ones = ds.labels().iter().filter(|&&l| l == 1).count();
        assert!(ones > 0 && ones < ds.samples.len(), "degenerate labels");
        // Oracle beats static mapping and mapped_time with oracle preds
        // equals oracle_time.
        assert!(ds.oracle_time() <= ds.static_mapping_time());
        let oracle_pred = ds.labels();
        assert!((ds.mapped_time(&oracle_pred) - ds.oracle_time()).abs() < 1e-9);
    }
}
