//! `mga-core` — the MGA tuner: datasets, models, training and evaluation.
//!
//! This crate assembles everything below it into the paper's pipeline
//! (Fig. 2):
//!
//! ```text
//! kernel IR ──► PROGRAML graph ──► heterogeneous GNN ─┐
//!          └──► IR2Vec vector ──► DAE encoder ────────┼─► late fusion ─► MLP ─► config
//!  profiling ──► 5 PAPI counters (or transfer/wg) ────┘
//! ```
//!
//! * [`dataset`] — builds the OpenMP tuning dataset (kernels × 30 input
//!   sizes × configuration space, labels by exhaustive simulation) and
//!   the OpenCL device-mapping dataset (~670 labeled points/device);
//! * [`model`] — [`model::FusionModel`], the multimodal learner with
//!   selectable modalities (full MGA, PROGRAML-only, IR2Vec-only,
//!   counters-only) and multi-head classification for joint
//!   threads/schedule/chunk prediction;
//! * [`cv`] — k-fold by loop, stratified k-fold, leave-one-app-out and
//!   input-holdout splitters (§4.1.3/4.1.4/4.2 protocols);
//! * [`metrics`] — accuracy, macro-F1, geometric-mean speedups and
//!   normalized-vs-oracle speedups;
//! * [`omp`] — the OpenMP tuning task wrappers (thread prediction,
//!   large-space prediction, feature ablations, µ-arch portability);
//! * [`devmap`] — the OpenCL heterogeneous device-mapping task;
//! * [`online`] — the paper's future-work online tuner: model prior +
//!   greedy refinement with a few real evaluations.

pub mod cv;
pub mod dataset;
pub mod devmap;
pub mod health;
pub mod metrics;
pub mod model;
pub mod omp;
pub mod online;
pub mod persist;
pub mod wgsize;

pub use dataset::{OmpDataset, OmpSample};
pub use health::{GuardrailConfig, TrainError, TrainHealth};
pub use model::{FitOptions, FusionModel, Modality, ModelConfig};
