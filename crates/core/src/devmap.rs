//! The OpenCL heterogeneous device-mapping task (§4.2).
//!
//! Ten-fold stratified cross-validation over the labeled dataset; the
//! model fuses the two static modalities with the transfer and
//! work-group sizes (performance counters are *not* used here, matching
//! the paper).

use crate::cv::{stratified_kfold, Fold};
use crate::dataset::OclDataset;
use crate::metrics::{accuracy, macro_f1};
use crate::model::{FusionModel, ModelConfig, TrainData};

/// Aux features of a device-mapping sample: log-transfer size and
/// work-group size (min-max scaled downstream by the model).
pub fn ocl_aux(transfer_bytes: f64, wg_size: u32) -> Vec<f32> {
    vec![(transfer_bytes.max(1.0)).log2() as f32, wg_size as f32]
}

/// The task view over an [`OclDataset`].
pub struct DevmapTask {
    pub sample_kernel: Vec<usize>,
    pub aux: Vec<Vec<f32>>,
    pub labels: Vec<Vec<usize>>,
}

impl DevmapTask {
    pub fn new(ds: &OclDataset) -> DevmapTask {
        DevmapTask {
            sample_kernel: ds.samples.iter().map(|s| s.kernel).collect(),
            aux: ds
                .samples
                .iter()
                .map(|s| ocl_aux(s.transfer_bytes, s.wg_size))
                .collect(),
            labels: vec![ds.labels()],
        }
    }

    pub fn train_data<'a>(&'a self, ds: &'a OclDataset) -> TrainData<'a> {
        TrainData {
            graphs: &ds.graphs,
            vectors: &ds.vectors,
            sample_kernel: &self.sample_kernel,
            aux: &self.aux,
            labels: &self.labels,
        }
    }
}

/// Cross-validated result on one device.
#[derive(Debug, Clone)]
pub struct DevmapResult {
    pub accuracy: f64,
    pub f1: f64,
    /// Speedup of the predicted mapping over the best static mapping.
    pub speedup: f64,
    /// Speedup of the oracle mapping over the best static mapping.
    pub oracle_speedup: f64,
    /// Out-of-fold prediction per sample.
    pub predictions: Vec<usize>,
}

/// Run `k`-fold stratified CV with the given model config.
pub fn run_devmap(ds: &OclDataset, cfg: &ModelConfig, k: usize, seed: u64) -> DevmapResult {
    let task = DevmapTask::new(ds);
    let data = task.train_data(ds);
    let labels = ds.labels();
    let folds: Vec<Fold> = stratified_kfold(&labels, k, seed);
    let mut predictions = vec![0usize; ds.samples.len()];
    for (fi, fold) in folds.iter().enumerate() {
        let mut mcfg = cfg.clone();
        mcfg.seed = cfg.seed.wrapping_add(fi as u64);
        let model = FusionModel::fit(mcfg, &data, &fold.train, &[2]);
        let preds = model.predict(&data, &fold.val);
        for (j, &i) in fold.val.iter().enumerate() {
            predictions[i] = preds[0][j];
        }
    }
    DevmapResult {
        accuracy: accuracy(&predictions, &labels),
        f1: macro_f1(&predictions, &labels, 2),
        speedup: ds.geomean_speedup(&predictions),
        oracle_speedup: ds.geomean_oracle_speedup(),
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Modality;
    use mga_dae::DaeConfig;
    use mga_gnn::GnnConfig;
    use mga_kernels::catalog::opencl_catalog;
    use mga_sim::gpu::GpuSpec;

    fn quick_cfg() -> ModelConfig {
        ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 15,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 20,
            lr: 0.02,
            seed: 11,
        }
    }

    #[test]
    fn ocl_aux_features() {
        let f = ocl_aux(1024.0 * 1024.0, 128);
        assert!((f[0] - 20.0).abs() < 1e-6);
        assert_eq!(f[1], 128.0);
    }

    #[test]
    fn devmap_cv_beats_majority_class() {
        let specs: Vec<_> = opencl_catalog().into_iter().take(60).collect();
        let ds = crate::dataset::OclDataset::build(specs, GpuSpec::gtx_970(), 16, 5);
        let labels = ds.labels();
        let majority = {
            let ones = labels.iter().filter(|&&l| l == 1).count();
            (ones.max(labels.len() - ones)) as f64 / labels.len() as f64
        };
        let res = run_devmap(&ds, &quick_cfg(), 4, 1);
        assert!(
            res.accuracy > majority.min(0.95) - 0.1,
            "accuracy {} not competitive with majority {majority}",
            res.accuracy
        );
        assert!(res.f1 > 0.4, "degenerate F1 {}", res.f1);
        assert!(res.oracle_speedup >= 1.0);
        assert!(res.speedup <= res.oracle_speedup + 1e-9);
        assert!(res.speedup > 0.5, "mapped time exploded: {}", res.speedup);
        assert_eq!(res.predictions.len(), ds.samples.len());
    }
}
