//! The OpenMP tuning tasks (§4.1): dataset → model → per-fold speedups.

use crate::cv::Fold;
use crate::dataset::OmpDataset;
use crate::metrics::{accuracy, SpeedupPair};
use crate::model::{FusionModel, ModelConfig, TrainData};
use mga_sim::counters::Counters;
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::{OmpConfig, Schedule};
use mga_tuners::{Evaluator, Space, Tuner};

/// Maps between configurations and per-dimension classification heads.
///
/// The §4.1.3 thread task has a single head (thread count); the §4.1.4
/// joint task has three (threads, schedule, chunk). Only dimensions with
/// more than one distinct value become heads.
#[derive(Debug, Clone)]
pub struct ConfigCodec {
    threads: Vec<u32>,
    schedules: Vec<Schedule>,
    chunks: Vec<u32>,
    space: Vec<OmpConfig>,
}

impl ConfigCodec {
    pub fn from_space(space: &[OmpConfig]) -> ConfigCodec {
        let mut threads: Vec<u32> = space.iter().map(|c| c.threads).collect();
        threads.sort_unstable();
        threads.dedup();
        let mut schedules: Vec<Schedule> = Vec::new();
        for c in space {
            if !schedules.contains(&c.schedule) {
                schedules.push(c.schedule);
            }
        }
        let mut chunks: Vec<u32> = space.iter().map(|c| c.chunk).collect();
        chunks.sort_unstable();
        chunks.dedup();
        ConfigCodec {
            threads,
            schedules,
            chunks,
            space: space.to_vec(),
        }
    }

    /// Sizes of the active heads.
    pub fn head_sizes(&self) -> Vec<usize> {
        let mut v = Vec::new();
        if self.threads.len() > 1 {
            v.push(self.threads.len());
        }
        if self.schedules.len() > 1 {
            v.push(self.schedules.len());
        }
        if self.chunks.len() > 1 {
            v.push(self.chunks.len());
        }
        assert!(!v.is_empty(), "degenerate single-config space");
        v
    }

    /// Head labels of a config (by its index in the space).
    pub fn encode(&self, cfg_idx: usize) -> Vec<usize> {
        let c = self.space[cfg_idx];
        let mut v = Vec::new();
        if self.threads.len() > 1 {
            v.push(self.threads.iter().position(|&t| t == c.threads).unwrap());
        }
        if self.schedules.len() > 1 {
            v.push(
                self.schedules
                    .iter()
                    .position(|&s| s == c.schedule)
                    .unwrap(),
            );
        }
        if self.chunks.len() > 1 {
            v.push(self.chunks.iter().position(|&k| k == c.chunk).unwrap());
        }
        v
    }

    /// Decode head predictions back to a config index in the space.
    pub fn decode(&self, heads: &[usize]) -> usize {
        let mut it = heads.iter();
        let t = if self.threads.len() > 1 {
            self.threads[*it.next().unwrap()]
        } else {
            self.threads[0]
        };
        let s = if self.schedules.len() > 1 {
            self.schedules[*it.next().unwrap()]
        } else {
            self.schedules[0]
        };
        let k = if self.chunks.len() > 1 {
            self.chunks[*it.next().unwrap()]
        } else {
            self.chunks[0]
        };
        self.space
            .iter()
            .position(|c| c.threads == t && c.schedule == s && c.chunk == k)
            .expect("decoded config not in space (space must be a cross product)")
    }
}

/// Aux features of a sample: the five selected counters, log-compressed.
///
/// Counter magnitudes span five orders of magnitude across the 3.5 KB –
/// 0.5 GB input ladder; `ln(1+x)` keeps the min-max scaling downstream
/// from crushing the small-input regime the model must recognize.
pub fn counter_features(c: &Counters) -> Vec<f32> {
    c.to_features().map(|x| (1.0 + x).ln() as f32).to_vec()
}

/// Borrowable training inputs derived from a dataset.
pub struct OmpTask {
    pub codec: ConfigCodec,
    pub sample_kernel: Vec<usize>,
    pub aux: Vec<Vec<f32>>,
    /// Per head per sample.
    pub labels: Vec<Vec<usize>>,
}

impl OmpTask {
    pub fn new(ds: &OmpDataset) -> OmpTask {
        let codec = ConfigCodec::from_space(&ds.space);
        let heads = codec.head_sizes().len();
        let mut labels = vec![Vec::with_capacity(ds.samples.len()); heads];
        for s in &ds.samples {
            for (h, l) in codec.encode(s.best).into_iter().enumerate() {
                labels[h].push(l);
            }
        }
        OmpTask {
            codec,
            sample_kernel: ds.samples.iter().map(|s| s.kernel).collect(),
            aux: ds
                .samples
                .iter()
                .map(|s| counter_features(&s.counters))
                .collect(),
            labels,
        }
    }

    pub fn train_data<'a>(&'a self, ds: &'a OmpDataset) -> TrainData<'a> {
        TrainData {
            graphs: &ds.graphs,
            vectors: &ds.vectors,
            sample_kernel: &self.sample_kernel,
            aux: &self.aux,
            labels: &self.labels,
        }
    }
}

/// Result of evaluating one fold with one method.
#[derive(Debug, Clone)]
pub struct FoldEval {
    pub pairs: Vec<SpeedupPair>,
    /// Exact-best-config accuracy (only meaningful for model methods).
    pub accuracy: f64,
}

/// Train the model on a fold's training samples and evaluate speedups on
/// its validation samples.
pub fn eval_model_fold(ds: &OmpDataset, task: &OmpTask, cfg: ModelConfig, fold: &Fold) -> FoldEval {
    eval_model_fold_ckpt(ds, task, cfg, fold, None)
}

/// [`eval_model_fold`] with fault-tolerant training: an optional
/// checkpoint path enables crash-safe checkpointing and resume for this
/// fold's model (see `FusionModel::try_fit`). With `ckpt == None` this
/// is exactly `eval_model_fold`.
pub fn eval_model_fold_ckpt(
    ds: &OmpDataset,
    task: &OmpTask,
    cfg: ModelConfig,
    fold: &Fold,
    ckpt: Option<&std::path::Path>,
) -> FoldEval {
    let data = task.train_data(ds);
    let head_sizes = task.codec.head_sizes();
    let opts = crate::model::FitOptions {
        checkpoint: ckpt,
        ..crate::model::FitOptions::default()
    };
    let model = match FusionModel::try_fit(cfg, &data, &fold.train, &head_sizes, &opts) {
        Ok(m) => m,
        Err(e) => panic!("fold training failed: {e}"),
    };
    let preds = model.predict(&data, &fold.val);
    let mut pairs = Vec::with_capacity(fold.val.len());
    let mut pred_best = Vec::with_capacity(fold.val.len());
    let mut true_best = Vec::with_capacity(fold.val.len());
    for (j, &i) in fold.val.iter().enumerate() {
        let heads: Vec<usize> = preds.iter().map(|p| p[j]).collect();
        let cfg_idx = task.codec.decode(&heads);
        let s = &ds.samples[i];
        pairs.push(SpeedupPair {
            achieved: ds.achieved_speedup(s, cfg_idx),
            oracle: ds.oracle_speedup(s),
        });
        pred_best.push(cfg_idx);
        true_best.push(s.best);
    }
    FoldEval {
        accuracy: accuracy(&pred_best, &true_best),
        pairs,
    }
}

/// Evaluate a black-box tuner on a fold's validation samples.
///
/// Search tuners tune an application *once* — they search on a reference
/// input (the median size here) and the chosen configuration is then
/// used for every input of that loop. This is how ytopt/OpenTuner are
/// deployed in practice (re-tuning per input would multiply their
/// already-heavy execution cost); the DL models, by contrast, predict
/// per input from the profiled counters.
pub fn eval_tuner_fold(
    ds: &OmpDataset,
    make_tuner: &mut dyn FnMut(u64) -> Box<dyn Tuner>,
    budget: usize,
    fold: &Fold,
) -> FoldEval {
    let space = Space::new(ds.space.clone());
    // Group the fold's validation samples by loop.
    let mut by_kernel: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for &i in &fold.val {
        by_kernel.entry(ds.samples[i].kernel).or_default().push(i);
    }
    let mut pairs = Vec::with_capacity(fold.val.len());
    for (kernel, idxs) in by_kernel {
        let spec = &ds.specs[kernel];
        // Reference input: the median working-set size in this fold.
        let mut sizes: Vec<f64> = idxs.iter().map(|&i| ds.samples[i].ws_bytes).collect();
        sizes.sort_by(|a, b| a.total_cmp(b));
        let ref_ws = sizes[sizes.len() / 2];
        let mut tuner = make_tuner(kernel as u64);
        let mut ev = Evaluator::new(spec, ref_ws, &ds.cpu);
        let chosen = tuner.tune(&space, &mut ev, budget);
        let cfg_idx = ds.space.iter().position(|c| *c == chosen).unwrap();
        for &i in &idxs {
            let s = &ds.samples[i];
            pairs.push(SpeedupPair {
                achieved: ds.achieved_speedup(s, cfg_idx),
                oracle: ds.oracle_speedup(s),
            });
        }
    }
    FoldEval {
        accuracy: f64::NAN,
        pairs,
    }
}

/// §4.1.5 µ-architecture portability: rescale the Comet-Lake-trained
/// counters of a *target-architecture* profiling run into the training
/// feature space.
///
/// The paper scales each cache-miss counter by the target/source cache
/// capacity ratio and divides mispredictions by reference cycles; here
/// the profiled counters already come from the target model, so we apply
/// the *inverse* capacity scaling to express them in source-architecture
/// units before the (source-fitted) min-max scaler sees them.
pub fn portability_features(
    target_counters: &Counters,
    source: &CpuSpec,
    target: &CpuSpec,
) -> Vec<f32> {
    let rescaled = Counters {
        l1_dcm: target_counters.l1_dcm * source.l1_kb / target.l1_kb,
        l2_tcm: target_counters.l2_tcm * source.l2_kb / target.l2_kb,
        l3_ldm: target_counters.l3_ldm * source.l3_mb / target.l3_mb,
        br_ins: target_counters.br_ins,
        br_msp: target_counters.br_msp,
        ref_cyc: target_counters.ref_cyc,
    };
    counter_features(&rescaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::kfold_by_group;
    use crate::model::Modality;
    use mga_dae::DaeConfig;
    use mga_gnn::GnnConfig;
    use mga_kernels::catalog::openmp_thread_dataset;
    use mga_sim::openmp::{large_space, thread_space};
    use mga_tuners::RandomSearch;

    fn quick_ds() -> OmpDataset {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().take(8).collect();
        let cpu = CpuSpec::comet_lake();
        let sizes = vec![1e5, 1e7, 3e8];
        OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 1)
    }

    fn quick_model_cfg() -> ModelConfig {
        ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 20,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 25,
            lr: 0.02,
            seed: 3,
        }
    }

    #[test]
    fn codec_round_trips_thread_space() {
        let cpu = CpuSpec::comet_lake();
        let space = thread_space(&cpu);
        let codec = ConfigCodec::from_space(&space);
        assert_eq!(codec.head_sizes(), vec![8]);
        for i in 0..space.len() {
            let heads = codec.encode(i);
            assert_eq!(codec.decode(&heads), i);
        }
    }

    #[test]
    fn codec_round_trips_large_space() {
        let space = large_space();
        let codec = ConfigCodec::from_space(&space);
        assert_eq!(codec.head_sizes(), vec![7, 3, 7]);
        for i in (0..space.len()).step_by(11) {
            let heads = codec.encode(i);
            assert_eq!(codec.decode(&heads), i);
        }
    }

    #[test]
    fn model_fold_beats_nothing_sanely() {
        let ds = quick_ds();
        let task = OmpTask::new(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let eval = eval_model_fold(&ds, &task, quick_model_cfg(), &folds[0]);
        assert_eq!(eval.pairs.len(), folds[0].val.len());
        for p in &eval.pairs {
            assert!(p.achieved > 0.0);
            assert!(p.oracle >= p.achieved * 0.99, "achieved can't beat oracle");
            assert!(p.normalized() <= 1.01);
        }
        assert!((0.0..=1.0).contains(&eval.accuracy));
    }

    #[test]
    fn tuner_fold_runs_with_budget() {
        let ds = quick_ds();
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let mut mk = |seed: u64| -> Box<dyn Tuner> { Box::new(RandomSearch { seed }) };
        let eval = eval_tuner_fold(&ds, &mut mk, 3, &folds[0]);
        assert_eq!(eval.pairs.len(), folds[0].val.len());
        for p in &eval.pairs {
            assert!(p.normalized() <= 1.01);
            assert!(p.normalized() > 0.0);
        }
    }

    #[test]
    fn task_labels_match_dataset_best() {
        let ds = quick_ds();
        let task = OmpTask::new(&ds);
        assert_eq!(task.labels.len(), 1);
        for (i, s) in ds.samples.iter().enumerate() {
            assert_eq!(task.labels[0][i], task.codec.encode(s.best)[0]);
        }
    }

    #[test]
    fn portability_features_rescale_cache_counters() {
        let src = CpuSpec::comet_lake();
        let tgt = CpuSpec::broadwell_8c();
        let c = Counters {
            l1_dcm: 10.0,
            l2_tcm: 10.0,
            l3_ldm: 10.0,
            br_ins: 100.0,
            br_msp: 5.0,
            ref_cyc: 1e6,
        };
        let f = portability_features(&c, &src, &tgt);
        // L1/L2 equal across these parts; L3 shrinks 16/20. Features are
        // log-compressed like the training features.
        assert!((f[0] - (11.0f32).ln()).abs() < 1e-6);
        assert!((f[1] - (11.0f32).ln()).abs() < 1e-6);
        assert!((f[2] - (9.0f32).ln()).abs() < 1e-6);
        assert!((f[3] - (101.0f32).ln()).abs() < 1e-6);
        assert!((f[4] - (6.0f32).ln()).abs() < 1e-6);
    }
}
