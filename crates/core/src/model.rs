//! The multimodal fusion model (paper Fig. 2).
//!
//! [`FusionModel`] composes, per the configured [`Modality`]:
//!
//! * a **heterogeneous GNN** over the PROGRAML graph (trained jointly
//!   with the classifier),
//! * a **denoising autoencoder** over the IR2Vec vector (pre-trained
//!   self-supervised on the *training* vectors with swap noise, its
//!   frozen encoder providing the code features — §3.2),
//! * **auxiliary dynamic features** (PAPI counters or OpenCL
//!   transfer/work-group sizes) min-max scaled to `[0,1]`,
//!
//! late-fused by concatenation into a one-hidden-layer MLP (the paper
//! deliberately keeps this head shallow). Joint tuning tasks (threads ×
//! schedule × chunk) use one classification head per dimension on the
//! shared hidden layer.

use crate::health::{GuardrailConfig, TrainError, TrainHealth};
use crate::persist;
use mga_dae::{pretrain, DaeConfig, TrainedDae};
use mga_gnn::{GnnConfig, GraphBatch, HeteroGnn};
use mga_graph::ProGraph;
use mga_nn::layers::{Activation, Linear};
use mga_nn::optim::{AdamW, AdamWState};
use mga_nn::params::{tree_sum, GradShard, GradShards};
use mga_nn::pool;
use mga_nn::scaler::{GaussRankScaler, MinMaxScaler};
use mga_nn::tape::{FusedAct, Tape, Var};
use mga_nn::tensor::Tensor;
use mga_nn::ParamSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::OnceCell;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

/// Which static modalities the model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// Graph (hetero-GNN) + vector (DAE): the MGA tuner.
    Multimodal,
    /// PROGRAML-only unimodal baseline.
    GraphOnly,
    /// IR2Vec-only unimodal baseline. Follows the IR2Vec paper's own
    /// usage: the raw program vectors (Gaussian-rank scaled) feed the
    /// classifier directly — the DAE compression is the MGA pipeline's
    /// addition.
    VectorOnly,
    /// Dynamic features only (Fig. 5's blue bar).
    AuxOnly,
    /// Early (feature-level) fusion ablation: instead of learned
    /// per-modality encoders whose *outputs* are fused (the paper's late
    /// fusion), the raw representations are flattened into one feature
    /// vector — hand-built graph summary statistics concatenated with the
    /// scaled program vector — and fed to the MLP directly (§2.5's
    /// description of early fusion).
    EarlyFusion,
}

/// Hand-built summary features of a flow graph (for the early-fusion
/// ablation): node/edge-kind counts, log-scaled.
pub fn graph_summary(g: &ProGraph) -> Vec<f32> {
    let stats = mga_graph::GraphStats::of(g);
    let lg = |x: usize| ((x + 1) as f32).ln();
    let nodes = stats.nodes.max(1) as f32;
    vec![
        lg(stats.nodes),
        lg(stats.instructions),
        lg(stats.variables),
        lg(stats.constants),
        lg(stats.control_edges),
        lg(stats.data_edges),
        lg(stats.call_edges),
        stats.instructions as f32 / nodes,
        stats.data_edges as f32 / nodes,
        stats.control_edges as f32 / stats.instructions.max(1) as f32,
    ]
}

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    pub modality: Modality,
    /// Include the auxiliary (dynamic) features? `false` reproduces the
    /// static-only ablation of Fig. 5.
    pub use_aux: bool,
    pub gnn: GnnConfig,
    pub dae: DaeConfig,
    /// Width of the fused MLP's single hidden layer.
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig::default(),
            dae: DaeConfig::default(),
            hidden: 64,
            epochs: 60,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Fault-tolerance options for [`FusionModel::try_fit`]: numeric
/// guardrails plus crash-safe checkpointing. The defaults (no checkpoint
/// path, loose guardrails) make `try_fit` behave bitwise identically to
/// the classic [`FusionModel::fit`] on a healthy run.
pub struct FitOptions<'a> {
    /// Guardrail thresholds and the recovery retry budget.
    pub guard: GuardrailConfig,
    /// Where to write the resumable checkpoint; `None` disables
    /// checkpointing entirely.
    pub checkpoint: Option<&'a Path>,
    /// Write the checkpoint every this many completed epochs (a final
    /// one is always written when training finishes). `0` means only the
    /// final checkpoint.
    pub checkpoint_every: usize,
    /// If `checkpoint` already holds a compatible mid-training state,
    /// resume from it instead of training from scratch.
    pub resume: bool,
}

impl Default for FitOptions<'_> {
    fn default() -> Self {
        FitOptions {
            guard: GuardrailConfig::default(),
            checkpoint: None,
            checkpoint_every: 10,
            resume: true,
        }
    }
}

/// Per-epoch diagnostics from [`FusionModel::train_epoch_stats`].
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Total (summed over heads) cross-entropy loss of the epoch.
    pub loss: f32,
    /// Global gradient norm *before* clipping — NaN or huge values here
    /// are the earliest numeric-failure signal.
    pub grad_norm: f32,
}

/// Everything the model consumes, borrowed from a dataset.
pub struct TrainData<'a> {
    /// Per-kernel flow graphs.
    pub graphs: &'a [ProGraph],
    /// Per-kernel IR2Vec program vectors.
    pub vectors: &'a [Vec<f32>],
    /// Kernel index of each sample.
    pub sample_kernel: &'a [usize],
    /// Raw auxiliary (dynamic) features per sample.
    pub aux: &'a [Vec<f32>],
    /// Per head: the label of each sample.
    pub labels: &'a [Vec<usize>],
}

impl TrainData<'_> {
    pub fn num_samples(&self) -> usize {
        self.sample_kernel.len()
    }
}

/// The trained multimodal model.
pub struct FusionModel {
    pub cfg: ModelConfig,
    pub(crate) ps: ParamSet,
    pub(crate) gnn: Option<HeteroGnn>,
    pub(crate) dae: Option<TrainedDae>,
    pub(crate) raw_vec_scaler: Option<GaussRankScaler>,
    pub(crate) aux_scaler: Option<MinMaxScaler>,
    pub(crate) trunk: Linear,
    pub(crate) heads: Vec<Linear>,
    pub head_sizes: Vec<usize>,
    /// Final training loss (diagnostics).
    pub final_loss: f32,
    /// Persistent training tape: epoch N ≥ 2 replays epoch 1's op
    /// sequence into recycled buffers, so the steady-state epoch loop
    /// performs zero tape-tensor heap allocations.
    pub(crate) tape: Tape,
    /// Data-parallel epoch state (replica tapes + gradient shards),
    /// populated on the first multi-micro-batch epoch and replayed by
    /// the rest — each replica has the same zero-alloc steady state as
    /// the single tape above.
    pub(crate) dp: DpState,
    /// Scratch tape for [`FusionModel::predict_prepared`]: repeated
    /// evaluation (shadow-eval, `evaluate_online`) replays into recycled
    /// buffers instead of rebuilding a fresh graph per call. `try_lock`
    /// so concurrent predictors fall back to a fresh tape — replay is
    /// bitwise-identical to a fresh build, so the fallback never changes
    /// results.
    predict_tape: Mutex<Tape>,
}

/// Replica tapes and gradient shards of the data-parallel epoch, one of
/// each per micro-batch; see [`FusionModel::train_epoch_stats`].
#[derive(Default)]
pub(crate) struct DpState {
    replicas: Vec<Replica>,
    shards: GradShards,
}

/// One micro-batch's persistent training state.
struct Replica {
    tape: Tape,
    /// Scaled loss of the last pass, combined by [`tree_sum`].
    loss: f32,
}

impl FusionModel {
    /// Rebuild the architecture for a checkpoint (`cfg` + `head_sizes` +
    /// `vec_dim`/`aux_dim`/`graph summary width` determine every shape),
    /// with zeroed parameters awaiting [`crate::persist`] restoration.
    pub(crate) fn skeleton(
        cfg: ModelConfig,
        head_sizes: &[usize],
        vec_dim: usize,
        aux_dim: usize,
    ) -> FusionModel {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamSet::new();
        let use_graph = matches!(cfg.modality, Modality::Multimodal | Modality::GraphOnly);
        let gnn = use_graph.then(|| HeteroGnn::new(&mut ps, "gnn", &cfg.gnn, &mut rng));
        let mut in_dim = 0;
        if use_graph {
            in_dim += cfg.gnn.dim;
        }
        let dae = if cfg.modality == Modality::Multimodal {
            in_dim += cfg.dae.code_dim;
            None // restored from the checkpoint
        } else {
            None
        };
        if matches!(cfg.modality, Modality::VectorOnly | Modality::EarlyFusion) {
            in_dim += vec_dim;
        }
        if cfg.modality == Modality::EarlyFusion {
            in_dim += 10; // graph_summary width
        }
        if cfg.use_aux && aux_dim > 0 {
            in_dim += aux_dim;
        }
        let trunk = Linear::new(
            &mut ps,
            "trunk",
            in_dim,
            cfg.hidden,
            Activation::Relu,
            &mut rng,
        );
        let heads = head_sizes
            .iter()
            .enumerate()
            .map(|(h, &k)| {
                Linear::new(
                    &mut ps,
                    &format!("head{h}"),
                    cfg.hidden,
                    k,
                    Activation::Identity,
                    &mut rng,
                )
            })
            .collect();
        FusionModel {
            cfg,
            ps,
            gnn,
            dae,
            raw_vec_scaler: None,
            aux_scaler: None,
            trunk,
            heads,
            head_sizes: head_sizes.to_vec(),
            final_loss: f32::NAN,
            tape: Tape::new(),
            dp: DpState::default(),
            predict_tape: Mutex::new(Tape::new()),
        }
    }
}

/// Epoch-invariant state of one sample batch, computed once by
/// [`FusionModel::prepare`] and replayed by every epoch's forward pass.
///
/// Everything here is a pure function of the (frozen) preprocessing
/// stages and the dataset — the block-diagonal [`GraphBatch`], the DAE
/// codes, the scaled raw vectors, the graph summaries and the scaled aux
/// features. Only the GNN and the fused MLP have trainable parameters,
/// so only they re-run per epoch; the rest enters the tape as cached
/// leaves. This is what makes the epoch loop cheap: the per-epoch cost
/// is the differentiable part of the model, not the feature pipeline.
pub struct PreparedBatch {
    /// Distinct kernel ids of the batch, sorted — row `r` of every
    /// per-kernel table below belongs to `kernels[r]`.
    kernels: Vec<usize>,
    /// Per sample: its kernel's row in the batch-local kernel tables.
    sample_rows: Vec<u32>,
    /// Packed flow graphs of the batch's distinct kernels.
    graph: Option<GraphBatch>,
    /// Degraded-mode replacement for `graph`: fixed per-kernel embeddings
    /// computed outside the tape when some graphs in the batch are
    /// degenerate (empty / no instructions). Degenerate kernels get the
    /// column-mean of the valid kernels' embeddings (zeros if none), so
    /// prediction falls back to the remaining modalities instead of
    /// panicking inside the GNN.
    graph_precomputed: Option<Tensor>,
    /// DAE-encoded program vectors, one row per distinct kernel.
    codes: Option<Tensor>,
    /// Gaussian-rank-scaled raw vectors, one row per distinct kernel.
    raw_vecs: Option<Tensor>,
    /// Hand-built graph summaries (early fusion), one row per kernel.
    summaries: Option<Tensor>,
    /// Min-max-scaled auxiliary features, one row per *sample*.
    aux: Option<Tensor>,
    /// Lazily built micro-batch plan for the data-parallel epoch (empty
    /// = run the single-tape path). Built once per batch: the partition
    /// is a pure function of the batch and the configured width, so
    /// every epoch replays the same plan.
    micro: OnceCell<Vec<MicroBatch>>,
}

/// One micro-batch of the data-parallel epoch: a contiguous sample range
/// `[lo, hi)` of its [`PreparedBatch`] plus per-kernel tables restricted
/// to the kernels those samples reference, so each replica's forward
/// pass — including the GNN, the dominant epoch cost — runs only on its
/// own slice of the batch.
struct MicroBatch {
    lo: usize,
    hi: usize,
    /// Per sample in `[lo, hi)`: its kernel's row in this micro-batch's
    /// tables (the micro-local analogue of `PreparedBatch::sample_rows`).
    sample_rows: Vec<u32>,
    /// Sub-batch of the graphs this range's kernels own (row-stable:
    /// bitwise the same readout rows as the full batch).
    graph: Option<GraphBatch>,
    /// Row subsets of the corresponding `PreparedBatch` tables.
    graph_precomputed: Option<Tensor>,
    codes: Option<Tensor>,
    raw_vecs: Option<Tensor>,
    summaries: Option<Tensor>,
}

/// Borrowed view of one forward pass's inputs — either a whole
/// [`PreparedBatch`] or one [`MicroBatch`] of it — so the full-batch and
/// data-parallel paths share a single forward implementation
/// ([`FusionModel::forward_view`]).
struct BatchView<'a> {
    graph: Option<&'a GraphBatch>,
    graph_precomputed: Option<&'a Tensor>,
    codes: Option<&'a Tensor>,
    raw_vecs: Option<&'a Tensor>,
    summaries: Option<&'a Tensor>,
    sample_rows: &'a [u32],
    /// The per-sample aux table plus this view's row range within it.
    aux: Option<(&'a Tensor, usize, usize)>,
}

/// Micro-batch width for data-parallel epochs: `MGA_MICROBATCH` (read
/// once), default 8. Deliberately *not* derived from `MGA_THREADS`: the
/// partition fixes the gradient summation tree, so it must be identical
/// at every thread count for training to stay bitwise thread-invariant.
fn configured_microbatch_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        if let Ok(v) = std::env::var("MGA_MICROBATCH") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => {
                    mga_obs::warn!(
                        "MGA_MICROBATCH={v:?} is not a positive integer; using the default"
                    );
                }
            }
        }
        8
    })
}

/// Split `[0, n)` into at most `width` contiguous sample ranges of
/// near-equal size, snapping each boundary forward to the next kernel-row
/// change. Samples arrive kernel-sorted (`prepare` maps sorted distinct
/// kernels), so snapping means no kernel's samples straddle two
/// micro-batches — each graph is computed by exactly one replica and the
/// epoch's total GNN work stays identical to the single-tape path. A
/// batch whose first kernel covers everything collapses to one range
/// (the caller then uses the single-tape path, which still parallelizes
/// inside its kernels).
fn micro_ranges(sample_rows: &[u32], width: usize) -> Vec<(usize, usize)> {
    let n = sample_rows.len();
    if n == 0 || width <= 1 {
        return vec![(0, n)];
    }
    let per = n.div_ceil(width);
    let mut ranges = Vec::new();
    let mut lo = 0;
    while lo < n {
        let mut hi = (lo + per).min(n);
        while hi < n && sample_rows[hi] == sample_rows[hi - 1] {
            hi += 1;
        }
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Copy the given rows of a per-kernel table into a dense sub-table.
fn subset_rows(t: &Tensor, rows: &[usize]) -> Tensor {
    let cols = t.cols();
    let mut data: Vec<f32> = Vec::with_capacity(rows.len() * cols);
    for &r in rows {
        data.extend_from_slice(t.row_slice(r));
    }
    Tensor::from_vec(rows.len(), cols, data)
}

impl PreparedBatch {
    /// Distinct kernel ids of the batch, sorted (row order of the
    /// per-kernel tables). Serving uses this to key its embedding cache.
    pub fn kernels(&self) -> &[usize] {
        &self.kernels
    }

    /// Number of samples in the batch.
    pub fn num_samples(&self) -> usize {
        self.sample_rows.len()
    }

    /// The micro-batch plan at `width`, built on first use and cached
    /// (an empty slice means "don't data-parallelize this batch"). The
    /// first caller's width sticks — within a process the width is a
    /// constant, and tests that vary it prepare a fresh batch per width.
    fn micro_plan(&self, width: usize) -> &[MicroBatch] {
        self.micro.get_or_init(|| {
            let ranges = micro_ranges(&self.sample_rows, width);
            if ranges.len() <= 1 {
                return Vec::new();
            }
            ranges
                .into_iter()
                .map(|(lo, hi)| self.build_micro(lo, hi))
                .collect()
        })
    }

    /// Materialize one micro-batch: local kernel tables for the range's
    /// kernels plus the remapped sample→row indices.
    fn build_micro(&self, lo: usize, hi: usize) -> MicroBatch {
        let mut kernel_rows: Vec<u32> = self.sample_rows[lo..hi].to_vec();
        kernel_rows.sort_unstable();
        kernel_rows.dedup();
        let sample_rows: Vec<u32> = self.sample_rows[lo..hi]
            .iter()
            .map(|r| kernel_rows.binary_search(r).unwrap() as u32)
            .collect();
        let rows: Vec<usize> = kernel_rows.iter().map(|&r| r as usize).collect();
        MicroBatch {
            lo,
            hi,
            sample_rows,
            graph: self.graph.as_ref().map(|g| g.subset(&rows)),
            graph_precomputed: self
                .graph_precomputed
                .as_ref()
                .map(|t| subset_rows(t, &rows)),
            codes: self.codes.as_ref().map(|t| subset_rows(t, &rows)),
            raw_vecs: self.raw_vecs.as_ref().map(|t| subset_rows(t, &rows)),
            summaries: self.summaries.as_ref().map(|t| subset_rows(t, &rows)),
        }
    }
}

/// Borrowed snapshot of the trained classifier for plan compilation
/// (`mga-serve`): the packed trunk/head weights and the dynamic-feature
/// scaler — everything a request needs that is not a per-kernel static
/// embedding.
pub struct ModelExport<'a> {
    /// Trunk weight `[in_dim × hidden]` and bias `[1 × hidden]`.
    pub trunk_w: &'a Tensor,
    pub trunk_b: &'a Tensor,
    /// Per classification head: weight `[hidden × classes]` and bias.
    pub heads: Vec<(&'a Tensor, &'a Tensor)>,
    pub head_sizes: &'a [usize],
    /// Scaler for the dynamic (auxiliary) features; `None` when the
    /// model runs static-only.
    pub aux_scaler: Option<&'a MinMaxScaler>,
    /// Total trunk input width; the per-kernel static prefix occupies
    /// `in_dim - aux_dim` columns, the scaled aux row the rest.
    pub in_dim: usize,
    pub aux_dim: usize,
    pub hidden: usize,
}

impl FusionModel {
    /// Train on `train_idx` of `data`; `head_sizes[h]` is the number of
    /// classes of head `h`. Thin wrapper over [`FusionModel::try_fit`]
    /// with default [`FitOptions`]; panics if training fails numerically
    /// even after the recovery budget (which a healthy run never does).
    pub fn fit(
        cfg: ModelConfig,
        data: &TrainData<'_>,
        train_idx: &[usize],
        head_sizes: &[usize],
    ) -> FusionModel {
        match Self::try_fit(cfg, data, train_idx, head_sizes, &FitOptions::default()) {
            Ok(model) => model,
            Err(e) => panic!("training failed: {e}"),
        }
    }

    /// Fault-tolerant training. Runs the same deterministic loop as the
    /// classic `fit`, but:
    ///
    /// * every epoch's loss and pre-clip gradient norm pass through the
    ///   [`TrainHealth`] guardrails; on a numeric failure the model rolls
    ///   back to the last-good snapshot, halves the learning rate and
    ///   retries, up to `opts.guard.max_retries` times before returning
    ///   the final [`TrainError`];
    /// * with `opts.checkpoint` set, a crash-safe checkpoint (weights +
    ///   optimizer moments + epoch counter + RNG state, atomically
    ///   written) is maintained during training, and an interrupted run
    ///   restarted with the same options resumes from it — bitwise
    ///   identical to a run that was never interrupted.
    ///
    /// When no fault fires and no checkpoint exists, the result is
    /// bitwise identical to `fit`'s.
    pub fn try_fit(
        cfg: ModelConfig,
        data: &TrainData<'_>,
        train_idx: &[usize],
        head_sizes: &[usize],
        opts: &FitOptions<'_>,
    ) -> Result<FusionModel, TrainError> {
        mga_obs::span!("model.fit");
        assert!(!train_idx.is_empty(), "empty training set");
        assert_eq!(data.labels.len(), head_sizes.len());

        // --- Resume from a compatible checkpoint, if asked and present.
        let mut resumed: Option<(FusionModel, persist::TrainState)> = None;
        if opts.resume {
            if let Some(path) = opts.checkpoint {
                if path.exists() {
                    match persist::load_checkpoint_from_file(path) {
                        Ok((m, Some(st)))
                            if format!("{:?}", m.cfg) == format!("{cfg:?}")
                                && m.head_sizes == head_sizes =>
                        {
                            mga_obs::info!(
                                "resuming from checkpoint at epoch {}/{}",
                                st.epoch,
                                cfg.epochs
                            );
                            mga_obs::metrics::counter("train.resumes").inc();
                            resumed = Some((m, st));
                        }
                        Ok(_) => {
                            mga_obs::warn!(
                                "checkpoint incompatible with this run; training from scratch"
                            );
                        }
                        Err(e) => {
                            mga_obs::warn!("checkpoint unusable ({e}); training from scratch");
                        }
                    }
                }
            }
        }

        let (mut model, mut opt, start_epoch, mut health, rng_state) = match resumed {
            Some((m, st)) => {
                if st.epoch >= cfg.epochs {
                    // The checkpointed run already finished.
                    return Ok(m);
                }
                match optimizer_from_state(&m, &st) {
                    Some(opt) => {
                        let mut health = TrainHealth::new(opts.guard.clone());
                        health.set_retries(st.retries);
                        (m, opt, st.epoch, health, st.rng)
                    }
                    None => {
                        mga_obs::warn!(
                            "checkpoint optimizer state mismatched; training from scratch"
                        );
                        let (model, rng_state) = Self::build(&cfg, data, train_idx, head_sizes);
                        let opt = AdamW::new(cfg.lr).with_weight_decay(0.001);
                        (
                            model,
                            opt,
                            0,
                            TrainHealth::new(opts.guard.clone()),
                            rng_state,
                        )
                    }
                }
            }
            None => {
                let (model, rng_state) = Self::build(&cfg, data, train_idx, head_sizes);
                let opt = AdamW::new(cfg.lr).with_weight_decay(0.001);
                (
                    model,
                    opt,
                    0,
                    TrainHealth::new(opts.guard.clone()),
                    rng_state,
                )
            }
        };

        // --- Training loop (full-batch AdamW, as the dataset is small).
        // All epoch-invariant feature work is hoisted into the prepared
        // batch; each epoch only replays the tape over cached leaves. ---
        let prep = model.prepare(data, train_idx);
        let targets = batch_targets(data, train_idx, head_sizes.len());
        let vec_dim = data.vectors[0].len();
        let aux_dim = model.aux_scaler.as_ref().map(|s| s.dims()).unwrap_or(0);

        struct Snapshot {
            values: Vec<Tensor>,
            opt: AdamWState,
            epoch: usize,
        }
        let mut snap = Snapshot {
            values: model.ps.clone_values(),
            opt: opt.state(),
            epoch: start_epoch,
        };
        let mut epoch = start_epoch;
        while epoch < model.cfg.epochs {
            let stats = model.train_epoch_stats(&prep, &targets, &mut opt);
            match health.observe(epoch, stats.loss, stats.grad_norm) {
                Ok(()) => {
                    model.final_loss = stats.loss;
                    epoch += 1;
                    if epoch % opts.guard.snapshot_every == 0 {
                        snap = Snapshot {
                            values: model.ps.clone_values(),
                            opt: opt.state(),
                            epoch,
                        };
                    }
                    if let Some(path) = opts.checkpoint {
                        if opts.checkpoint_every > 0
                            && epoch % opts.checkpoint_every == 0
                            && epoch < model.cfg.epochs
                        {
                            write_checkpoint(
                                &model, &health, &opt, epoch, rng_state, vec_dim, aux_dim, path,
                            );
                        }
                    }
                }
                Err(e) => {
                    if health.retries() >= opts.guard.max_retries {
                        mga_obs::error!("epoch {epoch}: {e}; recovery budget exhausted");
                        return Err(TrainError::RetryBudgetExhausted {
                            retries: health.retries(),
                            last: Box::new(e),
                        });
                    }
                    let lr_next = opt.lr * 0.5;
                    mga_obs::error!(
                        "epoch {epoch}: {e}; rolling back to epoch {} with lr {lr_next}",
                        snap.epoch
                    );
                    model.ps.restore_values(&snap.values);
                    opt.restore(snap.opt.clone());
                    opt.lr = lr_next;
                    model.ps.zero_grads();
                    epoch = snap.epoch;
                    health.note_rollback();
                }
            }
        }
        mga_obs::metrics::gauge("train.final_loss").set(model.final_loss as f64);
        if let Some(path) = opts.checkpoint {
            write_checkpoint(
                &model,
                &health,
                &opt,
                model.cfg.epochs,
                rng_state,
                vec_dim,
                aux_dim,
                path,
            );
        }
        Ok(model)
    }

    /// Build a freshly initialized model (preprocessing stages fitted,
    /// parameters randomly initialized, no gradient steps yet). Returns
    /// the post-initialization RNG state for checkpointing.
    fn build(
        cfg: &ModelConfig,
        data: &TrainData<'_>,
        train_idx: &[usize],
        head_sizes: &[usize],
    ) -> (FusionModel, [u64; 4]) {
        let cfg = cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamSet::new();

        // --- Vector modality: DAE pre-training (MGA) or raw scaled
        // vectors (the IR2Vec unimodal baseline). ---
        let use_graph = matches!(cfg.modality, Modality::Multimodal | Modality::GraphOnly);
        let mut train_kernels: Vec<usize> =
            train_idx.iter().map(|&i| data.sample_kernel[i]).collect();
        train_kernels.sort_unstable();
        train_kernels.dedup();
        let train_vecs: Vec<Vec<f32>> = train_kernels
            .iter()
            .map(|&k| data.vectors[k].clone())
            .collect();
        let use_raw_vec = matches!(cfg.modality, Modality::VectorOnly | Modality::EarlyFusion);
        let dae = if cfg.modality == Modality::Multimodal {
            let mut dcfg = cfg.dae.clone();
            dcfg.input_dim = data.vectors[0].len();
            Some(pretrain(&train_vecs, dcfg, &mut rng))
        } else {
            None
        };
        let raw_vec_scaler = if use_raw_vec {
            Some(GaussRankScaler::fit(&train_vecs, data.vectors[0].len()))
        } else {
            None
        };

        // --- Aux scaler on training samples. ---
        let aux_scaler = if cfg.use_aux && !data.aux[0].is_empty() {
            let train_aux: Vec<Vec<f32>> = train_idx.iter().map(|&i| data.aux[i].clone()).collect();
            Some(MinMaxScaler::fit(&train_aux, data.aux[0].len()))
        } else {
            None
        };

        // --- Architecture. ---
        let gnn = use_graph.then(|| HeteroGnn::new(&mut ps, "gnn", &cfg.gnn, &mut rng));
        let mut in_dim = 0;
        if use_graph {
            in_dim += cfg.gnn.dim;
        }
        if let Some(d) = &dae {
            in_dim += d.dae.cfg.code_dim;
        }
        if raw_vec_scaler.is_some() {
            in_dim += data.vectors[0].len();
        }
        if cfg.modality == Modality::EarlyFusion {
            in_dim += graph_summary(&data.graphs[0]).len();
        }
        if let Some(s) = &aux_scaler {
            in_dim += s.dims();
        }
        assert!(in_dim > 0, "model has no input features");
        let trunk = Linear::new(
            &mut ps,
            "trunk",
            in_dim,
            cfg.hidden,
            Activation::Relu,
            &mut rng,
        );
        let heads: Vec<Linear> = head_sizes
            .iter()
            .enumerate()
            .map(|(h, &k)| {
                Linear::new(
                    &mut ps,
                    &format!("head{h}"),
                    cfg.hidden,
                    k,
                    Activation::Identity,
                    &mut rng,
                )
            })
            .collect();

        let model = FusionModel {
            cfg,
            ps,
            gnn,
            dae,
            raw_vec_scaler,
            aux_scaler,
            trunk,
            heads,
            head_sizes: head_sizes.to_vec(),
            final_loss: f32::MAX,
            tape: Tape::new(),
            dp: DpState::default(),
            predict_tape: Mutex::new(Tape::new()),
        };
        let rng_state = rng.to_state();
        (model, rng_state)
    }

    /// Hoist every epoch-invariant computation for `idx` of `data` into a
    /// reusable [`PreparedBatch`]: kernel dedup + sample-row mapping,
    /// graph batching, DAE encoding, scaler transforms and summaries.
    pub fn prepare(&self, data: &TrainData<'_>, idx: &[usize]) -> PreparedBatch {
        mga_obs::span!("model.prepare");
        // Distinct kernels in this batch, and each sample's local row.
        let mut kernels: Vec<usize> = idx.iter().map(|&i| data.sample_kernel[i]).collect();
        kernels.sort_unstable();
        kernels.dedup();
        let local_row = |k: usize| kernels.binary_search(&k).unwrap() as u32;
        let sample_rows: Vec<u32> = idx
            .iter()
            .map(|&i| local_row(data.sample_kernel[i]))
            .collect();

        let (graph, graph_precomputed) = if self.gnn.is_some() {
            // Degenerate graphs (and `sample:empty` fault injection) are
            // handled outside the tape so the GNN never sees them.
            let mut degenerate: Vec<bool> = kernels
                .iter()
                .map(|&k| {
                    let g = &data.graphs[k];
                    g.num_nodes() == 0 || g.instruction_nodes().is_empty()
                })
                .collect();
            if mga_obs::fault::armed() {
                for d in degenerate.iter_mut() {
                    if let Some(shot) = mga_obs::fault::fire(mga_obs::fault::Site::Sample) {
                        if shot.kind == mga_obs::fault::Kind::Empty {
                            *d = true;
                        }
                    }
                }
            }
            if degenerate.iter().any(|&d| d) {
                (
                    None,
                    Some(self.degraded_graph_embeddings(data, &kernels, &degenerate)),
                )
            } else {
                let graph_refs: Vec<&ProGraph> = kernels.iter().map(|&k| &data.graphs[k]).collect();
                (Some(GraphBatch::new(&graph_refs)), None)
            }
        } else {
            (None, None)
        };
        let codes = self.dae.as_ref().map(|dae| {
            let kernel_vecs: Vec<Vec<f32>> =
                kernels.iter().map(|&k| data.vectors[k].clone()).collect();
            dae.encode_vectors(&kernel_vecs)
        });
        let raw_vecs = self.raw_vec_scaler.as_ref().map(|scaler| {
            let dim = data.vectors[0].len();
            let mut rows: Vec<f32> = Vec::with_capacity(kernels.len() * dim);
            for &k in &kernels {
                let mut v = data.vectors[k].clone();
                scaler.transform_row(&mut v);
                rows.extend_from_slice(&v);
            }
            Tensor::from_vec(kernels.len(), dim, rows)
        });
        let summaries = (self.cfg.modality == Modality::EarlyFusion).then(|| {
            let width = graph_summary(&data.graphs[0]).len();
            let mut rows: Vec<f32> = Vec::with_capacity(kernels.len() * width);
            for &k in &kernels {
                rows.extend(graph_summary(&data.graphs[k]));
            }
            Tensor::from_vec(kernels.len(), width, rows)
        });
        let aux = self.aux_scaler.as_ref().map(|scaler| {
            let dims = scaler.dims();
            let mut degraded = 0u64;
            let mut rows: Vec<f32> = Vec::with_capacity(idx.len() * dims);
            for &i in idx {
                let raw = &data.aux[i];
                if raw.len() != dims || raw.iter().any(|x| !x.is_finite()) {
                    // Missing or corrupt dynamic features: impute the
                    // scaled mid-range so the static modalities decide.
                    rows.extend(std::iter::repeat_n(0.5, dims));
                    degraded += 1;
                } else {
                    let mut r = raw.clone();
                    scaler.transform_row(&mut r);
                    rows.extend_from_slice(&r);
                }
            }
            if degraded > 0 {
                mga_obs::metrics::counter("model.degraded_aux").add(degraded);
                mga_obs::warn!("{degraded} aux row(s) missing/non-finite; imputed mid-range");
            }
            Tensor::from_vec(idx.len(), dims, rows)
        });
        PreparedBatch {
            kernels,
            sample_rows,
            graph,
            graph_precomputed,
            codes,
            raw_vecs,
            summaries,
            aux,
            micro: OnceCell::new(),
        }
    }

    /// Degraded-mode graph features: run the GNN on the valid graphs
    /// only (outside any training tape) and fill degenerate kernels'
    /// rows with the column-mean of the valid embeddings.
    #[cold]
    fn degraded_graph_embeddings(
        &self,
        data: &TrainData<'_>,
        kernels: &[usize],
        degenerate: &[bool],
    ) -> Tensor {
        let gnn = self.gnn.as_ref().expect("degraded path needs a GNN");
        let dim = self.cfg.gnn.dim;
        let n_degen = degenerate.iter().filter(|&&d| d).count();
        mga_obs::metrics::counter("model.degraded_graphs").add(n_degen as u64);
        mga_obs::warn!(
            "{n_degen}/{} graph(s) degenerate; falling back to mean graph embedding",
            kernels.len()
        );
        let valid: Vec<usize> = (0..kernels.len()).filter(|&i| !degenerate[i]).collect();
        let mut out = Tensor::zeros(kernels.len(), dim);
        if valid.is_empty() {
            // No graph signal at all: zero rows, the other modalities
            // carry the prediction.
            return out;
        }
        let graph_refs: Vec<&ProGraph> = valid.iter().map(|&i| &data.graphs[kernels[i]]).collect();
        let batch = GraphBatch::new(&graph_refs);
        let mut tape = Tape::new();
        let emb = gnn.forward(&mut tape, &self.ps, &batch);
        let vals = tape.value(emb).clone();
        let mut mean = vec![0f32; dim];
        for r in 0..vals.rows() {
            for (c, acc) in mean.iter_mut().enumerate() {
                *acc += vals.get(r, c);
            }
        }
        for acc in &mut mean {
            *acc /= vals.rows() as f32;
        }
        for row in 0..kernels.len() {
            match valid.iter().position(|&i| i == row) {
                Some(vr) => {
                    for c in 0..dim {
                        out.set(row, c, vals.get(vr, c));
                    }
                }
                None => {
                    for (c, &m) in mean.iter().enumerate() {
                        out.set(row, c, m);
                    }
                }
            }
        }
        out
    }

    /// Forward pass over a prepared batch; returns one logits tensor per
    /// head. Only the GNN and the fused MLP compute — the static
    /// features enter the tape as cached leaves.
    pub fn forward_prepared(&self, tape: &mut Tape, prep: &PreparedBatch) -> Vec<Var> {
        self.forward_view(
            tape,
            BatchView {
                graph: prep.graph.as_ref(),
                graph_precomputed: prep.graph_precomputed.as_ref(),
                codes: prep.codes.as_ref(),
                raw_vecs: prep.raw_vecs.as_ref(),
                summaries: prep.summaries.as_ref(),
                sample_rows: &prep.sample_rows,
                aux: prep.aux.as_ref().map(|t| (t, 0, prep.num_samples())),
            },
        )
    }

    /// The one forward implementation behind both the full-batch pass
    /// and the data-parallel micro-batch passes: a [`BatchView`] names
    /// which tables to read and which aux row range belongs to it.
    fn forward_view(&self, tape: &mut Tape, view: BatchView<'_>) -> Vec<Var> {
        mga_obs::span!("model.forward");
        let mut parts: Vec<Var> = Vec::new();
        if let Some(pre) = view.graph_precomputed {
            // Degraded mode: the embeddings were computed outside the
            // tape (no gradient flows into the GNN for this batch).
            let t = tape.leaf_ref(pre);
            parts.push(tape.gather_rows(t, view.sample_rows));
        } else if let (Some(gnn), Some(batch)) = (&self.gnn, view.graph) {
            let kernel_emb = gnn.forward(tape, &self.ps, batch);
            parts.push(tape.gather_rows(kernel_emb, view.sample_rows));
        }
        if let Some(codes) = view.codes {
            let codes = tape.leaf_ref(codes);
            parts.push(tape.gather_rows(codes, view.sample_rows));
        }
        if let Some(vecs) = view.raw_vecs {
            let vecs = tape.leaf_ref(vecs);
            parts.push(tape.gather_rows(vecs, view.sample_rows));
        }
        if let Some(summaries) = view.summaries {
            let t = tape.leaf_ref(summaries);
            parts.push(tape.gather_rows(t, view.sample_rows));
        }
        if let Some((aux, lo, hi)) = view.aux {
            parts.push(tape.leaf_rows(aux, lo, hi));
        }
        let fused = if parts.len() == 1 {
            parts[0]
        } else {
            tape.concat_cols(&parts)
        };
        let h = self
            .trunk
            .forward_act(tape, &self.ps, fused, FusedAct::Relu);
        self.heads
            .iter()
            .map(|head| head.forward(tape, &self.ps, h))
            .collect()
    }

    /// One full-batch gradient step over a prepared batch (the body of
    /// the `fit` epoch loop); returns the epoch's total loss. Public so
    /// the training benchmarks can time exactly one epoch.
    pub fn train_epoch(
        &mut self,
        prep: &PreparedBatch,
        targets: &[Vec<u32>],
        opt: &mut AdamW,
    ) -> f32 {
        self.train_epoch_stats(prep, targets, opt).loss
    }

    /// [`FusionModel::train_epoch`] plus the pre-clip gradient norm, the
    /// signal the [`TrainHealth`] guardrails watch.
    pub fn train_epoch_stats(
        &mut self,
        prep: &PreparedBatch,
        targets: &[Vec<u32>],
        opt: &mut AdamW,
    ) -> EpochStats {
        self.train_epoch_stats_width(prep, targets, opt, None)
    }

    /// [`FusionModel::train_epoch_stats`] with an explicit micro-batch
    /// width (`None` = the process-wide `MGA_MICROBATCH` default). The
    /// parity tests and scaling benchmarks use this to vary the
    /// partition without re-spawning the process.
    ///
    /// The epoch is data-parallel when the partition yields W > 1
    /// micro-batches: each replica runs forward/loss/backward on its own
    /// persistent tape concurrently, gradients combine through a
    /// fixed-shape binary tree ([`GradShards`]), and the optimizer step
    /// sees exactly one full-batch gradient. The partition and the tree
    /// depend only on the batch and W — never on `MGA_THREADS` — so the
    /// trained parameters are bitwise identical at any thread count. A
    /// single-micro-batch partition runs today's single-tape path
    /// unchanged.
    pub fn train_epoch_stats_width(
        &mut self,
        prep: &PreparedBatch,
        targets: &[Vec<u32>],
        opt: &mut AdamW,
        width: Option<usize>,
    ) -> EpochStats {
        mga_obs::span!("train_epoch");
        let width = width.unwrap_or_else(configured_microbatch_width);
        let micros = prep.micro_plan(width);
        let loss = if micros.is_empty() {
            self.epoch_single_tape(prep, targets)
        } else {
            self.epoch_data_parallel(micros, prep, targets)
        };
        if mga_obs::fault::armed() {
            if let Some(shot) = mga_obs::fault::fire(mga_obs::fault::Site::Grad) {
                if shot.kind == mga_obs::fault::Kind::Nan {
                    self.poison_first_grad();
                }
            }
        }
        let grad_norm = {
            mga_obs::span!("optimizer");
            let grad_norm = self.ps.clip_grad_norm(5.0);
            opt.step(&mut self.ps);
            grad_norm
        };
        mga_obs::metrics::counter("train.epochs").inc();
        mga_obs::metrics::gauge("train.loss").set(loss as f64);
        mga_obs::metrics::gauge("train.grad_norm").set(grad_norm as f64);
        mga_obs::metrics::histogram(
            "train.batch_rows",
            &[8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0],
        )
        .observe(prep.sample_rows.len() as f64);
        EpochStats { loss, grad_norm }
    }

    /// The original single-tape epoch body: one forward/loss/backward
    /// over the whole batch, gradients accumulated straight into the
    /// `ParamSet`. Degenerate partitions (W = 1, tiny or single-kernel
    /// batches) take this path, which keeps them bitwise identical to
    /// every release before data-parallel training existed.
    fn epoch_single_tape(&mut self, prep: &PreparedBatch, targets: &[Vec<u32>]) -> f32 {
        // The persistent tape: taken out for the borrow (forward reads
        // `&self` while the tape is mutated), returned before exit.
        // `reset` flips it into replay mode after the first epoch, so
        // steady-state epochs rebuild the graph into recycled buffers.
        let mut tape = std::mem::take(&mut self.tape);
        tape.reset();
        let logits = {
            mga_obs::span!("forward");
            self.forward_prepared(&mut tape, prep)
        };
        debug_assert_eq!(logits.len(), targets.len());
        let (total, loss) = {
            mga_obs::span!("loss");
            let mut total: Option<Var> = None;
            for (lg, tg) in logits.iter().zip(targets) {
                let loss = tape.softmax_cross_entropy(*lg, tg);
                total = Some(match total {
                    None => loss,
                    Some(t) => tape.add(t, loss),
                });
            }
            let total = total.expect("at least one head");
            (total, tape.value(total).get(0, 0))
        };
        {
            mga_obs::span!("backward");
            tape.backward(total);
            tape.accumulate_param_grads(&mut self.ps);
        }
        mga_obs::metrics::counter("tape.alloc_bytes").add(tape.pass_alloc_bytes());
        mga_obs::metrics::counter("tape.arena_reuse").add(tape.pass_reuse_count());
        if tape.replaying() {
            // Steady state: must stay at zero (asserted by validate_trace).
            mga_obs::metrics::counter("tape.steady_alloc_bytes").add(tape.pass_alloc_bytes());
        }
        self.tape = tape;
        loss
    }

    /// The data-parallel epoch body: one concurrent forward/loss/backward
    /// per micro-batch on persistent replica tapes, then a fixed-shape
    /// tree reduction of the per-replica gradient shards into the shared
    /// `ParamSet`. The summed gradient equals the full batch's (each
    /// replica's mean-CE loss is pre-scaled by its sample fraction), and
    /// its floats are a pure function of the partition — scheduling and
    /// thread count only decide *where* each replica runs.
    fn epoch_data_parallel(
        &mut self,
        micros: &[MicroBatch],
        prep: &PreparedBatch,
        targets: &[Vec<u32>],
    ) -> f32 {
        let w = micros.len();
        let n_total = prep.num_samples();
        let mut dp = std::mem::take(&mut self.dp);
        dp.shards.begin_pass(&self.ps, w);
        dp.replicas.truncate(w);
        while dp.replicas.len() < w {
            dp.replicas.push(Replica {
                tape: Tape::new(),
                loss: 0.0,
            });
        }
        {
            mga_obs::span!("train_epoch.microbatches");
            let replicas = pool::SendPtr::new(dp.replicas.as_mut_ptr());
            let shards = pool::SendPtr::new(dp.shards.shards_mut().as_mut_ptr());
            let aux = prep.aux.as_ref();
            let model = &*self;
            pool::parallel_for(w, |i| {
                // Chunk i exclusively owns replica i and shard i; the
                // model itself is only read.
                let rep = unsafe { &mut *replicas.get().add(i) };
                let shard = unsafe { &mut *shards.get().add(i) };
                // The micro-batches already saturate the pool; keep each
                // replica's kernels on its own thread (nesting bound).
                pool::inline_scope(|| {
                    rep.loss = model.micro_batch_pass(
                        &mut rep.tape,
                        shard,
                        &micros[i],
                        aux,
                        targets,
                        n_total,
                    );
                });
            });
        }
        let (mut alloc, mut reuse, mut steady) = (0u64, 0u64, 0u64);
        for rep in &dp.replicas {
            alloc += rep.tape.pass_alloc_bytes();
            reuse += rep.tape.pass_reuse_count();
            if rep.tape.replaying() {
                steady += rep.tape.pass_alloc_bytes();
            }
        }
        mga_obs::metrics::counter("tape.alloc_bytes").add(alloc);
        mga_obs::metrics::counter("tape.arena_reuse").add(reuse);
        // Steady state: must stay at zero (asserted by validate_trace);
        // each replica replays its own memory plan.
        mga_obs::metrics::counter("tape.steady_alloc_bytes").add(steady);
        let reduce_start = std::time::Instant::now();
        {
            mga_obs::span!("train_epoch.reduce");
            dp.shards.reduce_into(&mut self.ps);
        }
        mga_obs::metrics::counter("train.microbatch.reduce_ns")
            .add(reduce_start.elapsed().as_nanos() as u64);
        mga_obs::metrics::histogram(
            "train.microbatch.width",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        )
        .observe(w as f64);
        let losses: Vec<f32> = dp.replicas.iter().map(|r| r.loss).collect();
        self.dp = dp;
        // Same fixed tree as the gradients, so the reported loss is as
        // thread-count-invariant as the weights.
        tree_sum(&losses)
    }

    /// One replica's share of a data-parallel epoch: replay-reset its
    /// tape, forward its micro-batch, scale the summed head losses by the
    /// replica's sample fraction (so the shard gradients sum to the
    /// full-batch mean-CE gradient), backpropagate, and flush parameter
    /// gradients into its shard.
    fn micro_batch_pass(
        &self,
        tape: &mut Tape,
        shard: &mut GradShard,
        mb: &MicroBatch,
        aux: Option<&Tensor>,
        targets: &[Vec<u32>],
        n_total: usize,
    ) -> f32 {
        tape.reset();
        let logits = {
            mga_obs::span!("forward");
            self.forward_view(
                tape,
                BatchView {
                    graph: mb.graph.as_ref(),
                    graph_precomputed: mb.graph_precomputed.as_ref(),
                    codes: mb.codes.as_ref(),
                    raw_vecs: mb.raw_vecs.as_ref(),
                    summaries: mb.summaries.as_ref(),
                    sample_rows: &mb.sample_rows,
                    aux: aux.map(|t| (t, mb.lo, mb.hi)),
                },
            )
        };
        debug_assert_eq!(logits.len(), targets.len());
        let (total, loss) = {
            mga_obs::span!("loss");
            let mut total: Option<Var> = None;
            for (lg, tg) in logits.iter().zip(targets) {
                let loss = tape.softmax_cross_entropy(*lg, &tg[mb.lo..mb.hi]);
                total = Some(match total {
                    None => loss,
                    Some(t) => tape.add(t, loss),
                });
            }
            let total = total.expect("at least one head");
            let total = tape.scale(total, (mb.hi - mb.lo) as f32 / n_total as f32);
            (total, tape.value(total).get(0, 0))
        };
        {
            mga_obs::span!("backward");
            tape.backward(total);
            tape.accumulate_param_grads_shard(shard);
        }
        loss
    }

    /// `grad:nan` fault-injection payload: corrupt one gradient scalar,
    /// the way a bad kernel or memory fault would, and let the guardrails
    /// find it via the NaN-propagating gradient norm.
    #[cold]
    fn poison_first_grad(&mut self) {
        if let Some(id) = self.ps.ids().next() {
            if let Some(g) = self.ps.grad_mut(id).data_mut().first_mut() {
                *g = f32::NAN;
            }
        }
    }

    /// Predict head classes for a set of samples: `out[h][j]` is head
    /// `h`'s class for the j-th index. Builds a fresh [`PreparedBatch`]
    /// per call — repeated evaluation over the same samples should
    /// [`FusionModel::prepare`] once and call
    /// [`FusionModel::predict_prepared`] instead.
    pub fn predict(&self, data: &TrainData<'_>, idx: &[usize]) -> Vec<Vec<usize>> {
        let prep = self.prepare(data, idx);
        self.predict_prepared(&prep)
    }

    /// Predict head classes over an already-prepared batch, skipping the
    /// kernel dedup / graph batching / DAE encoding / scaler work that
    /// [`FusionModel::prepare`] hoists out. Runs on the model's cached
    /// scratch tape, so repeated evaluation (`evaluate_online`,
    /// shadow-eval) replays into recycled buffers instead of rebuilding
    /// a graph per call; replay is bitwise-identical to a fresh build,
    /// and a contended (or poisoned) scratch tape falls back to one.
    pub fn predict_prepared(&self, prep: &PreparedBatch) -> Vec<Vec<usize>> {
        mga_obs::span!("model.predict");
        let mut guard = self.predict_tape.try_lock().ok();
        let mut fallback = Tape::new();
        let tape: &mut Tape = match guard.as_deref_mut() {
            Some(t) => {
                t.reset();
                t
            }
            None => &mut fallback,
        };
        let logits = self.forward_prepared(tape, prep);
        logits
            .iter()
            .map(|lg| {
                let t = tape.value(*lg);
                (0..t.rows())
                    .map(|r| mga_nn::infer::argmax(t.row_slice(r)))
                    .collect()
            })
            .collect()
    }

    /// Snapshot the classifier weights for inference-plan compilation.
    pub fn export(&self) -> ModelExport<'_> {
        let trunk_w = self.ps.value(self.trunk.w);
        ModelExport {
            trunk_w,
            trunk_b: self.ps.value(self.trunk.b),
            heads: self
                .heads
                .iter()
                .map(|h| (self.ps.value(h.w), self.ps.value(h.b)))
                .collect(),
            head_sizes: &self.head_sizes,
            aux_scaler: self.aux_scaler.as_ref(),
            in_dim: trunk_w.rows(),
            aux_dim: self.aux_scaler.as_ref().map(|s| s.dims()).unwrap_or(0),
            hidden: self.cfg.hidden,
        }
    }

    /// The fused static-feature row of one kernel — the per-kernel prefix
    /// of the trunk input (graph readout ⊕ DAE code ⊕ scaled raw vector ⊕
    /// graph summary, in [`FusionModel::forward_prepared`] part order),
    /// computed outside any training tape. Every kernel involved is
    /// row-stable under batching, so the row is bitwise-identical to the
    /// one the same kernel gets inside any [`PreparedBatch`]. Degenerate
    /// graphs (no nodes or no instructions) contribute a zero graph block
    /// — `prepare`'s batch-mean fallback is batch-dependent and therefore
    /// not cacheable.
    pub fn static_embedding(&self, graph: &ProGraph, vector: &[f32]) -> Vec<f32> {
        mga_obs::span!("model.static_embedding");
        let mut row = Vec::new();
        if let Some(gnn) = &self.gnn {
            if graph.num_nodes() == 0 || graph.instruction_node_ids().is_empty() {
                mga_obs::metrics::counter("model.degraded_graphs").inc();
                row.extend(std::iter::repeat_n(0.0f32, self.cfg.gnn.dim));
            } else {
                let batch = GraphBatch::single(graph);
                let mut tape = Tape::new();
                let emb = gnn.forward(&mut tape, &self.ps, &batch);
                row.extend_from_slice(tape.value(emb).row_slice(0));
            }
        }
        if let Some(dae) = &self.dae {
            let codes = dae.encode_vectors(&[vector.to_vec()]);
            row.extend_from_slice(codes.row_slice(0));
        }
        if let Some(scaler) = &self.raw_vec_scaler {
            let mut v = vector.to_vec();
            scaler.transform_row(&mut v);
            row.extend_from_slice(&v);
        }
        if self.cfg.modality == Modality::EarlyFusion {
            row.extend(graph_summary(graph));
        }
        row
    }

    /// Per-kernel fused static embeddings of a prepared batch: row `r` is
    /// the static trunk-input prefix of `prep.kernels()[r]`, in the same
    /// column order as [`FusionModel::static_embedding`]. Used to warm
    /// the serving cache from preparation work already done. Returns
    /// `None` when the batch took the degraded graph path — those rows
    /// hold batch-dependent mean embeddings that must not be cached.
    pub fn static_embeddings_prepared(&self, prep: &PreparedBatch) -> Option<Tensor> {
        if prep.graph_precomputed.is_some() {
            return None;
        }
        let graph_vals = match (&self.gnn, &prep.graph) {
            (Some(gnn), Some(batch)) => {
                let mut tape = Tape::new();
                let emb = gnn.forward(&mut tape, &self.ps, batch);
                Some(tape.value(emb).clone())
            }
            _ => None,
        };
        let parts: Vec<&Tensor> = [
            graph_vals.as_ref(),
            prep.codes.as_ref(),
            prep.raw_vecs.as_ref(),
            prep.summaries.as_ref(),
        ]
        .into_iter()
        .flatten()
        .collect();
        let n = prep.kernels.len();
        let width: usize = parts.iter().map(|t| t.cols()).sum();
        let mut rows: Vec<f32> = Vec::with_capacity(n * width);
        for r in 0..n {
            for t in &parts {
                rows.extend_from_slice(t.row_slice(r));
            }
        }
        Some(Tensor::from_vec(n, width, rows))
    }

    /// Number of trainable scalar parameters.
    pub fn num_params(&self) -> usize {
        self.ps.num_scalars()
    }

    /// FNV-1a checksum over the exact bit patterns of every parameter,
    /// in registration order. Two models agree here iff their weights
    /// are bitwise identical — the parity tests use this to compare
    /// training runs across partitions, thread counts and processes.
    pub fn param_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in self.ps.ids() {
            for &x in self.ps.value(id).data() {
                h ^= x.to_bits() as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Continue training this model on new samples (§7 transfer
    /// learning): the pre-trained weights, DAE and scalers are kept and
    /// only the gradient steps run — a handful of target-domain samples
    /// go much further than training from scratch.
    pub fn fine_tune(&mut self, data: &TrainData<'_>, train_idx: &[usize], epochs: usize, lr: f32) {
        assert!(!train_idx.is_empty(), "empty fine-tuning set");
        assert_eq!(data.labels.len(), self.head_sizes.len());
        let prep = self.prepare(data, train_idx);
        let targets = batch_targets(data, train_idx, self.head_sizes.len());
        let mut opt = AdamW::new(lr).with_weight_decay(0.001);
        for _epoch in 0..epochs {
            self.final_loss = self.train_epoch(&prep, &targets, &mut opt);
        }
    }
}

/// Rebuild an [`AdamW`] from a checkpoint's [`persist::TrainState`].
/// Returns `None` when the saved moments don't line up with the model's
/// parameters (wrong names, order or shapes) — the caller then trains
/// from scratch rather than resuming with a corrupted optimizer.
fn optimizer_from_state(model: &FusionModel, st: &persist::TrainState) -> Option<AdamW> {
    let mut opt = AdamW::new(st.lr).with_weight_decay(0.001);
    if st.moments.is_empty() {
        // Saved before the first step; lazy init will handle it.
        opt.restore(AdamWState {
            t: st.t,
            lr: st.lr,
            m: Vec::new(),
            v: Vec::new(),
        });
        return Some(opt);
    }
    let params: Vec<(&str, &Tensor)> = model.ps.iter_named().collect();
    if params.len() != st.moments.len() {
        return None;
    }
    let mut m = Vec::with_capacity(params.len());
    let mut v = Vec::with_capacity(params.len());
    for ((pname, pt), (mname, mm, mv)) in params.iter().zip(&st.moments) {
        if *pname != mname.as_str()
            || mm.rows() != pt.rows()
            || mm.cols() != pt.cols()
            || mv.rows() != pt.rows()
            || mv.cols() != pt.cols()
        {
            return None;
        }
        m.push(mm.clone());
        v.push(mv.clone());
    }
    opt.restore(AdamWState {
        t: st.t,
        lr: st.lr,
        m,
        v,
    });
    Some(opt)
}

/// Write the resumable checkpoint. Checkpointing is best-effort: a write
/// failure is logged and counted but never aborts training.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    model: &FusionModel,
    health: &TrainHealth,
    opt: &AdamW,
    epoch: usize,
    rng: [u64; 4],
    vec_dim: usize,
    aux_dim: usize,
    path: &Path,
) {
    let ost = opt.state();
    let moments = if ost.m.is_empty() {
        Vec::new()
    } else {
        model
            .ps
            .iter_named()
            .map(|(n, _)| n.to_string())
            .zip(ost.m)
            .zip(ost.v)
            .map(|((n, m), v)| (n, m, v))
            .collect()
    };
    let st = persist::TrainState {
        epoch,
        retries: health.retries(),
        t: ost.t,
        lr: ost.lr,
        best_loss: health.best_loss(),
        final_loss: model.final_loss,
        moments,
        rng,
    };
    match persist::save_checkpoint_to_file(model, vec_dim, aux_dim, Some(&st), path) {
        Ok(()) => {
            mga_obs::metrics::counter("train.ckpt_writes").inc();
        }
        Err(e) => {
            mga_obs::metrics::counter("train.ckpt_write_failures").inc();
            mga_obs::warn!("checkpoint write failed ({e}); training continues");
        }
    }
}

/// Per-head integer targets of the given samples.
pub fn batch_targets(data: &TrainData<'_>, idx: &[usize], heads: usize) -> Vec<Vec<u32>> {
    (0..heads)
        .map(|h| idx.iter().map(|&i| data.labels[h][i] as u32).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mga_graph::build_module_graph;
    use mga_kernels::archetypes;

    /// A tiny synthetic task: distinguish matmul-family kernels from
    /// streaming-family kernels (2 kernels per class, 4 samples per
    /// kernel with a noisy aux channel).
    type ToyData = (
        Vec<ProGraph>,
        Vec<Vec<f32>>,
        Vec<usize>,
        Vec<Vec<f32>>,
        Vec<usize>,
    );

    fn toy_data() -> ToyData {
        let modules = vec![
            archetypes::matmul("m1", 1).0,
            archetypes::matmul("m2", 2).0,
            archetypes::streaming("s1", 1, 1).0,
            archetypes::streaming("s2", 2, 2).0,
        ];
        let graphs: Vec<ProGraph> = modules.iter().map(build_module_graph).collect();
        let specs_vec: Vec<Vec<f32>> = {
            // Train a tiny seed embedding over the four modules.
            let mut triples = Vec::new();
            for m in &modules {
                triples.extend(mga_vec::extract_triples(m));
            }
            let emb = mga_vec::train_seed_embeddings(
                &triples,
                &mga_vec::TransEConfig {
                    dim: 12,
                    epochs: 15,
                    ..Default::default()
                },
                3,
            );
            modules.iter().map(|m| emb.encode_module(m)).collect()
        };
        let mut sample_kernel = Vec::new();
        let mut aux = Vec::new();
        let mut labels = Vec::new();
        for k in 0..4 {
            for j in 0..4 {
                sample_kernel.push(k);
                aux.push(vec![j as f32, (k * j) as f32]);
                labels.push(usize::from(k >= 2));
            }
        }
        (graphs, specs_vec, sample_kernel, aux, labels)
    }

    fn quick_cfg(modality: Modality) -> ModelConfig {
        ModelConfig {
            modality,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 2,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 12,
                hidden_dim: 8,
                code_dim: 4,
                epochs: 30,
                ..DaeConfig::default()
            },
            hidden: 16,
            epochs: 80,
            lr: 0.02,
            seed: 5,
        }
    }

    #[test]
    fn multimodal_model_learns_toy_task() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: std::slice::from_ref(&labels),
        };
        let train: Vec<usize> = (0..16).collect();
        let model = FusionModel::fit(quick_cfg(Modality::Multimodal), &data, &train, &[2]);
        let preds = model.predict(&data, &train);
        let acc = crate::metrics::accuracy(&preds[0], &labels);
        assert!(acc > 0.9, "training accuracy only {acc}");
        assert!(model.final_loss < 0.5);
        assert!(model.num_params() > 1000);
    }

    #[test]
    fn all_modalities_train_and_predict() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: std::slice::from_ref(&labels),
        };
        let train: Vec<usize> = (0..16).collect();
        for m in [
            Modality::Multimodal,
            Modality::GraphOnly,
            Modality::VectorOnly,
            Modality::AuxOnly,
            Modality::EarlyFusion,
        ] {
            let mut cfg = quick_cfg(m);
            cfg.epochs = 10;
            let model = FusionModel::fit(cfg, &data, &train, &[2]);
            let preds = model.predict(&data, &train);
            assert_eq!(preds.len(), 1);
            assert_eq!(preds[0].len(), 16);
            assert!(preds[0].iter().all(|&p| p < 2));
        }
    }

    #[test]
    fn static_only_ablation_drops_aux() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: &[labels],
        };
        let train: Vec<usize> = (0..16).collect();
        let mut cfg = quick_cfg(Modality::Multimodal);
        cfg.use_aux = false;
        cfg.epochs = 5;
        let model = FusionModel::fit(cfg, &data, &train, &[2]);
        assert!(model.aux_scaler.is_none());
    }

    #[test]
    fn multi_head_prediction_shapes() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        // Second head: a 3-way label.
        let labels2: Vec<usize> = sample_kernel.iter().map(|&k| k % 3).collect();
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: &[labels, labels2],
        };
        let train: Vec<usize> = (0..16).collect();
        let mut cfg = quick_cfg(Modality::Multimodal);
        cfg.epochs = 5;
        let model = FusionModel::fit(cfg, &data, &train, &[2, 3]);
        let preds = model.predict(&data, &[0, 5, 10]);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].len(), 3);
        assert!(preds[1].iter().all(|&p| p < 3));
    }

    #[test]
    fn prediction_on_unseen_kernels_works() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: std::slice::from_ref(&labels),
        };
        // Train on kernels 0 and 2, validate on 1 and 3 (unseen graphs).
        let train: Vec<usize> = (0..16).filter(|i| sample_kernel[*i] % 2 == 0).collect();
        let val: Vec<usize> = (0..16).filter(|i| sample_kernel[*i] % 2 == 1).collect();
        let model = FusionModel::fit(quick_cfg(Modality::Multimodal), &data, &train, &[2]);
        let preds = model.predict(&data, &val);
        // Same-family generalization should be learnable on this toy task.
        let truth: Vec<usize> = val.iter().map(|&i| labels[i]).collect();
        let acc = crate::metrics::accuracy(&preds[0], &truth);
        assert!(acc >= 0.5, "unseen-kernel accuracy collapsed: {acc}");
    }

    #[test]
    fn graph_summary_features_are_finite_and_discriminative() {
        let (graphs, ..) = toy_data();
        let a = graph_summary(&graphs[0]);
        let b = graph_summary(&graphs[2]);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|x| x.is_finite()));
        assert_ne!(a, b, "matmul and streaming graphs summarized identically");
    }

    #[test]
    fn fine_tuning_improves_fit_on_new_samples() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        // Flip the labels of kernel 3's samples so the pre-trained model
        // is wrong there, then fine-tune on exactly those samples.
        let mut flipped = labels.clone();
        for (i, &k) in sample_kernel.iter().enumerate() {
            if k == 3 {
                flipped[i] = 1 - flipped[i];
            }
        }
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: &[flipped.clone()],
        };
        let pretrain_idx: Vec<usize> = (0..16).filter(|i| sample_kernel[*i] != 3).collect();
        let tune_idx: Vec<usize> = (0..16).filter(|i| sample_kernel[*i] == 3).collect();
        let mut model =
            FusionModel::fit(quick_cfg(Modality::Multimodal), &data, &pretrain_idx, &[2]);
        let before = {
            let preds = model.predict(&data, &tune_idx);
            let truth: Vec<usize> = tune_idx.iter().map(|&i| flipped[i]).collect();
            crate::metrics::accuracy(&preds[0], &truth)
        };
        model.fine_tune(&data, &tune_idx, 60, 0.02);
        let after = {
            let preds = model.predict(&data, &tune_idx);
            let truth: Vec<usize> = tune_idx.iter().map(|&i| flipped[i]).collect();
            crate::metrics::accuracy(&preds[0], &truth)
        };
        assert!(
            after >= before && after > 0.9,
            "fine-tuning failed to adapt: {before} -> {after}"
        );
        // The pre-trained knowledge must not be obliterated entirely.
        let keep_idx: Vec<usize> = pretrain_idx.iter().copied().take(8).collect();
        let preds = model.predict(&data, &keep_idx);
        let truth: Vec<usize> = keep_idx.iter().map(|&i| flipped[i]).collect();
        let retained = crate::metrics::accuracy(&preds[0], &truth);
        assert!(retained >= 0.5, "catastrophic forgetting: {retained}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (graphs, vectors, sample_kernel, aux, labels) = toy_data();
        let data = TrainData {
            graphs: &graphs,
            vectors: &vectors,
            sample_kernel: &sample_kernel,
            aux: &aux,
            labels: &[labels],
        };
        let train: Vec<usize> = (0..16).collect();
        let mut cfg = quick_cfg(Modality::Multimodal);
        cfg.epochs = 8;
        let m1 = FusionModel::fit(cfg.clone(), &data, &train, &[2]);
        let m2 = FusionModel::fit(cfg, &data, &train, &[2]);
        assert_eq!(m1.predict(&data, &train), m2.predict(&data, &train));
        assert_eq!(m1.final_loss, m2.final_loss);
    }
}
