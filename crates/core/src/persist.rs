//! Model checkpointing: save a trained [`FusionModel`] to a plain-text
//! format and restore it later, so a tuned model ships with a tool instead
//! of being retrained per run.
//!
//! The format is line-oriented and self-describing (no external
//! serialization crates):
//!
//! ```text
//! mga-model v1
//! modality Multimodal
//! use_aux true
//! ...
//! [param] trunk.w 61 64
//! 0.01 -0.2 ...
//! [gauss] 3
//! <vals> / <scores>
//! ...
//! end
//! ```

use crate::model::{FusionModel, Modality, ModelConfig};
use mga_dae::{DaeConfig, TrainedDae};
use mga_gnn::{GnnConfig, UpdateKind};
use mga_nn::scaler::{GaussRankScaler, MinMaxScaler};
use mga_nn::Tensor;
use std::fmt::Write as _;
use std::str::FromStr;

/// Checkpointing failures.
#[derive(Debug)]
pub enum PersistError {
    Malformed(String),
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            PersistError::Io(e) => write!(f, "checkpoint I/O: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn modality_name(m: Modality) -> &'static str {
    match m {
        Modality::Multimodal => "Multimodal",
        Modality::GraphOnly => "GraphOnly",
        Modality::VectorOnly => "VectorOnly",
        Modality::AuxOnly => "AuxOnly",
        Modality::EarlyFusion => "EarlyFusion",
    }
}

fn modality_from(s: &str) -> Result<Modality, PersistError> {
    Ok(match s {
        "Multimodal" => Modality::Multimodal,
        "GraphOnly" => Modality::GraphOnly,
        "VectorOnly" => Modality::VectorOnly,
        "AuxOnly" => Modality::AuxOnly,
        "EarlyFusion" => Modality::EarlyFusion,
        other => return Err(PersistError::Malformed(format!("modality {other}"))),
    })
}

fn update_name(u: UpdateKind) -> &'static str {
    match u {
        UpdateKind::Gru => "Gru",
        UpdateKind::SageConcat => "SageConcat",
        UpdateKind::Gcn => "Gcn",
        UpdateKind::Gat => "Gat",
    }
}

fn update_from(s: &str) -> Result<UpdateKind, PersistError> {
    Ok(match s {
        "Gru" => UpdateKind::Gru,
        "SageConcat" => UpdateKind::SageConcat,
        "Gcn" => UpdateKind::Gcn,
        "Gat" => UpdateKind::Gat,
        other => return Err(PersistError::Malformed(format!("update kind {other}"))),
    })
}

fn write_floats(out: &mut String, data: &[f32]) {
    for (i, v) in data.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        // Bit-exact round trip via hexadecimal bits.
        write!(out, "{:08x}", v.to_bits()).unwrap();
    }
    out.push('\n');
}

fn parse_floats(line: &str) -> Result<Vec<f32>, PersistError> {
    line.split_whitespace()
        .map(|t| {
            u32::from_str_radix(t, 16)
                .map(f32::from_bits)
                .map_err(|_| PersistError::Malformed(format!("bad float token {t}")))
        })
        .collect()
}

/// Serialize a trained model to its text checkpoint.
pub fn save_model(model: &FusionModel, vec_dim: usize, aux_dim: usize) -> String {
    let mut out = String::new();
    let cfg = &model.cfg;
    out.push_str("mga-model v1\n");
    let _ = writeln!(out, "modality {}", modality_name(cfg.modality));
    let _ = writeln!(out, "use_aux {}", cfg.use_aux);
    let _ = writeln!(
        out,
        "gnn {} {} {} {}",
        cfg.gnn.dim,
        cfg.gnn.layers,
        update_name(cfg.gnn.update),
        cfg.gnn.homogeneous
    );
    let _ = writeln!(
        out,
        "dae {} {} {} {} {} {}",
        cfg.dae.input_dim,
        cfg.dae.hidden_dim,
        cfg.dae.code_dim,
        cfg.dae.swap_noise,
        cfg.dae.epochs,
        cfg.dae.lr
    );
    let _ = writeln!(out, "hidden {}", cfg.hidden);
    let _ = writeln!(out, "epochs {}", cfg.epochs);
    let _ = writeln!(out, "lr {}", cfg.lr);
    let _ = writeln!(out, "seed {}", cfg.seed);
    let _ = writeln!(
        out,
        "heads {}",
        model
            .head_sizes
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(out, "vec_dim {vec_dim}");
    let _ = writeln!(out, "aux_dim {aux_dim}");

    for (name, t) in model.ps.iter_named() {
        let _ = writeln!(out, "[param] {name} {} {}", t.rows(), t.cols());
        write_floats(&mut out, t.data());
    }
    if let Some(dae) = &model.dae {
        for (name, t) in dae.params.iter_named() {
            let _ = writeln!(out, "[dae_param] {name} {} {}", t.rows(), t.cols());
            write_floats(&mut out, t.data());
        }
        for (vals, scores) in dae.scaler.to_parts() {
            let _ = writeln!(out, "[dae_gauss] {}", vals.len());
            write_floats(&mut out, vals);
            write_floats(&mut out, scores);
        }
    }
    if let Some(s) = &model.raw_vec_scaler {
        for (vals, scores) in s.to_parts() {
            let _ = writeln!(out, "[vec_gauss] {}", vals.len());
            write_floats(&mut out, vals);
            write_floats(&mut out, scores);
        }
    }
    if let Some(s) = &model.aux_scaler {
        let (mins, maxs) = s.to_parts();
        let _ = writeln!(out, "[aux_minmax] {}", mins.len());
        write_floats(&mut out, mins);
        write_floats(&mut out, maxs);
    }
    out.push_str("end\n");
    out
}

fn field<T: FromStr>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, PersistError> {
    tokens
        .next()
        .ok_or_else(|| PersistError::Malformed(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| PersistError::Malformed(format!("bad {what}")))
}

/// Restore a model from its text checkpoint.
pub fn load_model(text: &str) -> Result<FusionModel, PersistError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header != "mga-model v1" {
        return Err(PersistError::Malformed(format!("bad header `{header}`")));
    }

    let mut modality = Modality::Multimodal;
    let mut use_aux = true;
    let mut gnn = GnnConfig::default();
    let mut dae = DaeConfig::default();
    let mut hidden = 64;
    let mut epochs = 0;
    let mut lr = 0.01f32;
    let mut seed = 0u64;
    let mut head_sizes: Vec<usize> = Vec::new();
    let mut vec_dim = 0usize;
    let mut aux_dim = 0usize;

    let mut params: Vec<(String, Tensor)> = Vec::new();
    let mut dae_params: Vec<(String, Tensor)> = Vec::new();
    let mut dae_gauss: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    let mut vec_gauss: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    let mut aux_minmax: Option<(Vec<f32>, Vec<f32>)> = None;

    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "end" {
            break;
        }
        let mut toks = line.split_whitespace();
        match toks.next().unwrap() {
            "modality" => modality = modality_from(toks.next().unwrap_or(""))?,
            "use_aux" => use_aux = field(&mut toks, "use_aux")?,
            "gnn" => {
                gnn.dim = field(&mut toks, "gnn dim")?;
                gnn.layers = field(&mut toks, "gnn layers")?;
                gnn.update = update_from(toks.next().unwrap_or(""))?;
                gnn.homogeneous = toks.next().map(|t| t == "true").unwrap_or(false);
            }
            "dae" => {
                dae.input_dim = field(&mut toks, "dae input")?;
                dae.hidden_dim = field(&mut toks, "dae hidden")?;
                dae.code_dim = field(&mut toks, "dae code")?;
                dae.swap_noise = field(&mut toks, "dae noise")?;
                dae.epochs = field(&mut toks, "dae epochs")?;
                dae.lr = field(&mut toks, "dae lr")?;
            }
            "hidden" => hidden = field(&mut toks, "hidden")?,
            "epochs" => epochs = field(&mut toks, "epochs")?,
            "lr" => lr = field(&mut toks, "lr")?,
            "seed" => seed = field(&mut toks, "seed")?,
            "heads" => {
                head_sizes = toks
                    .map(|t| {
                        t.parse()
                            .map_err(|_| PersistError::Malformed("head".into()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "vec_dim" => vec_dim = field(&mut toks, "vec_dim")?,
            "aux_dim" => aux_dim = field(&mut toks, "aux_dim")?,
            "[param]" | "[dae_param]" => {
                let kind = line.starts_with("[param]");
                let name: String = field(&mut toks, "param name")?;
                let rows: usize = field(&mut toks, "rows")?;
                let cols: usize = field(&mut toks, "cols")?;
                let data = parse_floats(
                    lines
                        .next()
                        .ok_or_else(|| PersistError::Malformed("missing data".into()))?,
                )?;
                if data.len() != rows * cols {
                    return Err(PersistError::Malformed(format!(
                        "param {name}: {} values for {rows}x{cols}",
                        data.len()
                    )));
                }
                let t = Tensor::from_vec(rows, cols, data);
                if kind {
                    params.push((name, t));
                } else {
                    dae_params.push((name, t));
                }
            }
            "[dae_gauss]" | "[vec_gauss]" => {
                let is_dae = line.starts_with("[dae_gauss]");
                let vals = parse_floats(
                    lines
                        .next()
                        .ok_or_else(|| PersistError::Malformed("missing gauss vals".into()))?,
                )?;
                let scores = parse_floats(
                    lines
                        .next()
                        .ok_or_else(|| PersistError::Malformed("missing gauss scores".into()))?,
                )?;
                if is_dae {
                    dae_gauss.push((vals, scores));
                } else {
                    vec_gauss.push((vals, scores));
                }
            }
            "[aux_minmax]" => {
                let mins = parse_floats(
                    lines
                        .next()
                        .ok_or_else(|| PersistError::Malformed("missing mins".into()))?,
                )?;
                let maxs = parse_floats(
                    lines
                        .next()
                        .ok_or_else(|| PersistError::Malformed("missing maxs".into()))?,
                )?;
                aux_minmax = Some((mins, maxs));
            }
            other => {
                return Err(PersistError::Malformed(format!("unknown section {other}")));
            }
        }
    }

    let cfg = ModelConfig {
        modality,
        use_aux,
        gnn,
        dae: dae.clone(),
        hidden,
        epochs,
        lr,
        seed,
    };
    let mut model = FusionModel::skeleton(cfg, &head_sizes, vec_dim, aux_dim);
    for (name, t) in params {
        if !model.ps.set_by_name(&name, t) {
            return Err(PersistError::Malformed(format!("unknown parameter {name}")));
        }
    }
    if modality == Modality::Multimodal {
        if dae_gauss.is_empty() {
            return Err(PersistError::Malformed(
                "multimodal checkpoint without DAE".into(),
            ));
        }
        model.dae = Some(TrainedDae::from_parts(
            dae,
            dae_params,
            GaussRankScaler::from_parts(dae_gauss),
        ));
    }
    if !vec_gauss.is_empty() {
        model.raw_vec_scaler = Some(GaussRankScaler::from_parts(vec_gauss));
    }
    if let Some((mins, maxs)) = aux_minmax {
        model.aux_scaler = Some(MinMaxScaler::from_parts(mins, maxs));
    }
    Ok(model)
}

/// Save to a file path.
pub fn save_to_file(
    model: &FusionModel,
    vec_dim: usize,
    aux_dim: usize,
    path: &std::path::Path,
) -> Result<(), PersistError> {
    std::fs::write(path, save_model(model, vec_dim, aux_dim))?;
    Ok(())
}

/// Load from a file path.
pub fn load_from_file(path: &std::path::Path) -> Result<FusionModel, PersistError> {
    load_model(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::kfold_by_group;
    use crate::omp::OmpTask;
    use crate::OmpDataset;
    use mga_kernels::catalog::openmp_thread_dataset;
    use mga_sim::cpu::CpuSpec;
    use mga_sim::openmp::thread_space;

    fn trained(modality: Modality) -> (OmpDataset, OmpTask, FusionModel, Vec<usize>) {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
        let cpu = CpuSpec::comet_lake();
        let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
        let task = OmpTask::new(&ds);
        let folds = kfold_by_group(&ds.groups(), 3, 1);
        let cfg = ModelConfig {
            modality,
            use_aux: true,
            gnn: GnnConfig {
                dim: 10,
                layers: 1,
                update: UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 12,
                hidden_dim: 8,
                code_dim: 4,
                epochs: 10,
                ..DaeConfig::default()
            },
            hidden: 16,
            epochs: 10,
            lr: 0.02,
            seed: 2,
        };
        let data = task.train_data(&ds);
        let model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());
        (ds, task, model, folds[0].val.clone())
    }

    #[test]
    fn round_trip_preserves_predictions_multimodal() {
        let (ds, task, model, val) = trained(Modality::Multimodal);
        let data = task.train_data(&ds);
        let before = model.predict(&data, &val);
        let text = save_model(&model, 12, 5);
        let restored = load_model(&text).expect("load");
        let after = restored.predict(&data, &val);
        assert_eq!(before, after, "checkpoint changed predictions");
    }

    #[test]
    fn round_trip_preserves_predictions_vector_only() {
        let (ds, task, model, val) = trained(Modality::VectorOnly);
        let data = task.train_data(&ds);
        let before = model.predict(&data, &val);
        let text = save_model(&model, 12, 5);
        let restored = load_model(&text).expect("load");
        assert_eq!(before, restored.predict(&data, &val));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_model("not a checkpoint").is_err());
        assert!(load_model("mga-model v1\nbogus_section x\nend\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let (ds, task, model, val) = trained(Modality::GraphOnly);
        let data = task.train_data(&ds);
        let dir = std::env::temp_dir().join("mga_persist_test.ckpt");
        save_to_file(&model, 12, 5, &dir).unwrap();
        let restored = load_from_file(&dir).unwrap();
        assert_eq!(model.predict(&data, &val), restored.predict(&data, &val));
        let _ = std::fs::remove_file(&dir);
    }
}
