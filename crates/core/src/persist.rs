//! Model checkpointing: save a trained [`FusionModel`] to a plain-text
//! format and restore it later, so a tuned model ships with a tool instead
//! of being retrained per run — and so an interrupted training run can
//! resume exactly where it stopped.
//!
//! The v2 format is line-oriented and self-describing (no external
//! serialization crates), integrity-checked, and carries the full
//! training state:
//!
//! ```text
//! mga-model v2
//! modality Multimodal
//! use_aux true
//! ...
//! [param] trunk.w 61 64 crc=1a2b3c4d
//! 3dcccccd be4ccccd ...
//! [dae_gauss] 3 crc=...
//! <vals> / <scores>
//! [train] 40 1 3dcccccd 3e000000
//! [optim] 40 3c23d70a
//! [rng] 9e3779b97f4a7c15 ...
//! [moment] trunk.w 61 64 crc=...
//! <m> / <v>
//! [crc] 0123456789abcdef
//! end
//! ```
//!
//! Every float is serialized as the hexadecimal of its bit pattern, so a
//! save → load → save round trip is byte-identical and a resumed run is
//! bitwise equal to an uninterrupted one. Each data-bearing section
//! carries an FNV-1a-32 checksum of its payload (`crc=`), and the whole
//! file is sealed by an FNV-1a-64 checksum on the `[crc]` line directly
//! before the `end` terminator — any truncation or byte mutation fails
//! the load with [`PersistError::Malformed`] instead of silently
//! restoring wrong weights. v1 checkpoints (no checksums, no training
//! state) remain loadable.
//!
//! [`save_checkpoint_to_file`] writes atomically (temp file + rename), so
//! a crash mid-write leaves the previous checkpoint intact.

use crate::model::{FusionModel, Modality, ModelConfig};
use mga_dae::{DaeConfig, TrainedDae};
use mga_gnn::{GnnConfig, UpdateKind};
use mga_nn::scaler::{GaussRankScaler, MinMaxScaler};
use mga_nn::Tensor;
use std::fmt::Write as _;
use std::str::FromStr;

/// Checkpointing failures.
#[derive(Debug)]
pub enum PersistError {
    Malformed(String),
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            PersistError::Io(e) => write!(f, "checkpoint I/O: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Optimizer + progress state saved alongside the weights so a run can
/// resume mid-training (see `FusionModel::try_fit`).
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Epochs completed.
    pub epoch: usize,
    /// Recovery retries consumed (guardrail rollbacks).
    pub retries: u32,
    /// AdamW step count.
    pub t: u64,
    /// Effective learning rate (after any recovery halvings).
    pub lr: f32,
    /// Best loss observed (guardrail divergence baseline).
    pub best_loss: f32,
    /// Loss of the last completed epoch.
    pub final_loss: f32,
    /// AdamW first/second moments, one entry per parameter, in the
    /// parameter set's insertion order: `(name, m, v)`.
    pub moments: Vec<(String, Tensor, Tensor)>,
    /// Training RNG state (xoshiro256**).
    pub rng: [u64; 4],
}

// --- FNV-1a checksums (dependency-free; a single byte substitution is
// guaranteed to change the hash because `h -> (h ^ b) * prime` is a
// bijection in `h`). ---

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn fnv32_update(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h = (h ^ b as u32).wrapping_mul(0x01000193);
    }
    h
}

fn crc_of_lines(lines: &[&str]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for l in lines {
        h = fnv32_update(h, l.as_bytes());
        h = fnv32_update(h, b"\n");
    }
    h
}

fn modality_name(m: Modality) -> &'static str {
    match m {
        Modality::Multimodal => "Multimodal",
        Modality::GraphOnly => "GraphOnly",
        Modality::VectorOnly => "VectorOnly",
        Modality::AuxOnly => "AuxOnly",
        Modality::EarlyFusion => "EarlyFusion",
    }
}

fn modality_from(s: &str) -> Result<Modality, PersistError> {
    Ok(match s {
        "Multimodal" => Modality::Multimodal,
        "GraphOnly" => Modality::GraphOnly,
        "VectorOnly" => Modality::VectorOnly,
        "AuxOnly" => Modality::AuxOnly,
        "EarlyFusion" => Modality::EarlyFusion,
        other => return Err(PersistError::Malformed(format!("modality {other}"))),
    })
}

fn update_name(u: UpdateKind) -> &'static str {
    match u {
        UpdateKind::Gru => "Gru",
        UpdateKind::SageConcat => "SageConcat",
        UpdateKind::Gcn => "Gcn",
        UpdateKind::Gat => "Gat",
    }
}

fn update_from(s: &str) -> Result<UpdateKind, PersistError> {
    Ok(match s {
        "Gru" => UpdateKind::Gru,
        "SageConcat" => UpdateKind::SageConcat,
        "Gcn" => UpdateKind::Gcn,
        "Gat" => UpdateKind::Gat,
        other => return Err(PersistError::Malformed(format!("update kind {other}"))),
    })
}

/// Bit-exact float line: hexadecimal bit patterns, space-separated.
fn floats_line(data: &[f32]) -> String {
    let mut s = String::with_capacity(data.len() * 9);
    for (i, v) in data.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let _ = write!(s, "{:08x}", v.to_bits());
    }
    s
}

fn parse_floats(line: &str) -> Result<Vec<f32>, PersistError> {
    line.split_whitespace()
        .map(|t| {
            u32::from_str_radix(t, 16)
                .map(f32::from_bits)
                .map_err(|_| PersistError::Malformed(format!("bad float token {t}")))
        })
        .collect()
}

/// Write a data-bearing section: header line extended with a `crc=` of
/// the payload lines, then the payload.
fn push_section(out: &mut String, header: &str, payload: &[String]) {
    let refs: Vec<&str> = payload.iter().map(|s| s.as_str()).collect();
    let _ = writeln!(out, "{header} crc={:08x}", crc_of_lines(&refs));
    for l in payload {
        out.push_str(l);
        out.push('\n');
    }
}

/// Strict lowercase-hex parse for checksum tokens. `from_str_radix`
/// alone also accepts uppercase digits and a leading `+`, which would
/// let some single-byte corruptions of a checksum line re-parse to the
/// stored value; the writer only ever emits lowercase.
fn parse_crc_hex(hex: &str, width: usize) -> Option<u64> {
    (hex.len() == width && hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
        .then(|| u64::from_str_radix(hex, 16).ok())
        .flatten()
}

/// Verify a section's `crc=` token against its payload lines. v1
/// sections carry no token and pass unchecked (the caller may still be
/// protected by the file-level checksum).
fn check_crc(tok: Option<&str>, payload: &[&str], what: &str) -> Result<(), PersistError> {
    let Some(tok) = tok else { return Ok(()) };
    let hex = tok
        .strip_prefix("crc=")
        .ok_or_else(|| PersistError::Malformed(format!("{what}: unexpected token {tok}")))?;
    let want = parse_crc_hex(hex, 8)
        .ok_or_else(|| PersistError::Malformed(format!("{what}: bad crc {hex}")))?
        as u32;
    if crc_of_lines(payload) != want {
        return Err(PersistError::Malformed(format!(
            "{what}: section checksum mismatch"
        )));
    }
    Ok(())
}

/// Serialize a trained model (weights + preprocessing only) to its text
/// checkpoint. Equivalent to [`save_checkpoint`] with no training state.
pub fn save_model(model: &FusionModel, vec_dim: usize, aux_dim: usize) -> String {
    save_checkpoint(model, vec_dim, aux_dim, None)
}

/// Serialize a model to the v2 checkpoint text, optionally with the
/// mid-training [`TrainState`] needed for exact resume.
pub fn save_checkpoint(
    model: &FusionModel,
    vec_dim: usize,
    aux_dim: usize,
    state: Option<&TrainState>,
) -> String {
    let mut out = String::new();
    let cfg = &model.cfg;
    out.push_str("mga-model v2\n");
    let _ = writeln!(out, "modality {}", modality_name(cfg.modality));
    let _ = writeln!(out, "use_aux {}", cfg.use_aux);
    let _ = writeln!(
        out,
        "gnn {} {} {} {}",
        cfg.gnn.dim,
        cfg.gnn.layers,
        update_name(cfg.gnn.update),
        cfg.gnn.homogeneous
    );
    let _ = writeln!(
        out,
        "dae {} {} {} {} {} {}",
        cfg.dae.input_dim,
        cfg.dae.hidden_dim,
        cfg.dae.code_dim,
        cfg.dae.swap_noise,
        cfg.dae.epochs,
        cfg.dae.lr
    );
    let _ = writeln!(out, "hidden {}", cfg.hidden);
    let _ = writeln!(out, "epochs {}", cfg.epochs);
    let _ = writeln!(out, "lr {}", cfg.lr);
    let _ = writeln!(out, "seed {}", cfg.seed);
    let _ = writeln!(
        out,
        "heads {}",
        model
            .head_sizes
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(out, "vec_dim {vec_dim}");
    let _ = writeln!(out, "aux_dim {aux_dim}");

    for (name, t) in model.ps.iter_named() {
        push_section(
            &mut out,
            &format!("[param] {name} {} {}", t.rows(), t.cols()),
            &[floats_line(t.data())],
        );
    }
    if let Some(dae) = &model.dae {
        for (name, t) in dae.params.iter_named() {
            push_section(
                &mut out,
                &format!("[dae_param] {name} {} {}", t.rows(), t.cols()),
                &[floats_line(t.data())],
            );
        }
        for (vals, scores) in dae.scaler.to_parts() {
            push_section(
                &mut out,
                &format!("[dae_gauss] {}", vals.len()),
                &[floats_line(vals), floats_line(scores)],
            );
        }
    }
    if let Some(s) = &model.raw_vec_scaler {
        for (vals, scores) in s.to_parts() {
            push_section(
                &mut out,
                &format!("[vec_gauss] {}", vals.len()),
                &[floats_line(vals), floats_line(scores)],
            );
        }
    }
    if let Some(s) = &model.aux_scaler {
        let (mins, maxs) = s.to_parts();
        push_section(
            &mut out,
            &format!("[aux_minmax] {}", mins.len()),
            &[floats_line(mins), floats_line(maxs)],
        );
    }
    if let Some(st) = state {
        let _ = writeln!(
            out,
            "[train] {} {} {:08x} {:08x}",
            st.epoch,
            st.retries,
            st.best_loss.to_bits(),
            st.final_loss.to_bits()
        );
        let _ = writeln!(out, "[optim] {} {:08x}", st.t, st.lr.to_bits());
        let _ = writeln!(
            out,
            "[rng] {:016x} {:016x} {:016x} {:016x}",
            st.rng[0], st.rng[1], st.rng[2], st.rng[3]
        );
        for (name, m, v) in &st.moments {
            push_section(
                &mut out,
                &format!("[moment] {name} {} {}", m.rows(), m.cols()),
                &[floats_line(m.data()), floats_line(v.data())],
            );
        }
    }
    let crc = fnv64(out.as_bytes());
    let _ = writeln!(out, "[crc] {crc:016x}");
    out.push_str("end\n");
    out
}

fn field<T: FromStr>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, PersistError> {
    tokens
        .next()
        .ok_or_else(|| PersistError::Malformed(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| PersistError::Malformed(format!("bad {what}")))
}

fn hex_f32(tokens: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<f32, PersistError> {
    let t = tokens
        .next()
        .ok_or_else(|| PersistError::Malformed(format!("missing {what}")))?;
    u32::from_str_radix(t, 16)
        .map(f32::from_bits)
        .map_err(|_| PersistError::Malformed(format!("bad {what}")))
}

fn hex_u64(tokens: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<u64, PersistError> {
    let t = tokens
        .next()
        .ok_or_else(|| PersistError::Malformed(format!("missing {what}")))?;
    u64::from_str_radix(t, 16).map_err(|_| PersistError::Malformed(format!("bad {what}")))
}

/// Verify the v2 file-level seal: the text must end with exactly
/// `[crc] <16 hex>\nend\n`, and the checksum must match every byte that
/// precedes the `[crc]` line. Catches truncation (the tail is gone) and
/// any byte mutation (the FNV-1a hash changes).
fn verify_file_crc(text: &str) -> Result<(), PersistError> {
    let body = text
        .strip_suffix("end\n")
        .ok_or_else(|| PersistError::Malformed("missing end terminator".into()))?;
    let wo_nl = body
        .strip_suffix('\n')
        .ok_or_else(|| PersistError::Malformed("missing [crc] line".into()))?;
    let start = wo_nl.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let crc_line = &wo_nl[start..];
    let hex = crc_line
        .strip_prefix("[crc] ")
        .ok_or_else(|| PersistError::Malformed("missing [crc] line".into()))?;
    let want = parse_crc_hex(hex, 16)
        .ok_or_else(|| PersistError::Malformed(format!("bad file crc `{hex}`")))?;
    let got = fnv64(&body.as_bytes()[..start]);
    if got != want {
        return Err(PersistError::Malformed(format!(
            "file checksum mismatch: stored {want:016x}, computed {got:016x}"
        )));
    }
    Ok(())
}

/// Restore a model from its text checkpoint (either version), dropping
/// any training state.
pub fn load_model(text: &str) -> Result<FusionModel, PersistError> {
    load_checkpoint(text).map(|(m, _)| m)
}

/// Restore a model plus, for v2 checkpoints saved mid-training, the
/// [`TrainState`] needed to resume exactly.
pub fn load_checkpoint(text: &str) -> Result<(FusionModel, Option<TrainState>), PersistError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    let v2 = match header {
        "mga-model v2" => true,
        "mga-model v1" => false,
        _ => return Err(PersistError::Malformed(format!("bad header `{header}`"))),
    };
    if v2 {
        verify_file_crc(text)?;
    }

    let mut modality = Modality::Multimodal;
    let mut use_aux = true;
    let mut gnn = GnnConfig::default();
    let mut dae = DaeConfig::default();
    let mut hidden = 64;
    let mut epochs = 0;
    let mut lr = 0.01f32;
    let mut seed = 0u64;
    let mut head_sizes: Vec<usize> = Vec::new();
    let mut vec_dim = 0usize;
    let mut aux_dim = 0usize;

    let mut params: Vec<(String, Tensor)> = Vec::new();
    let mut dae_params: Vec<(String, Tensor)> = Vec::new();
    let mut dae_gauss: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    let mut vec_gauss: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    let mut aux_minmax: Option<(Vec<f32>, Vec<f32>)> = None;

    let mut tr_epoch: Option<usize> = None;
    let mut tr_retries = 0u32;
    let mut tr_best = f32::INFINITY;
    let mut tr_final = f32::NAN;
    let mut opt_t = 0u64;
    let mut opt_lr = lr;
    let mut rng_state: Option<[u64; 4]> = None;
    let mut moments: Vec<(String, Tensor, Tensor)> = Vec::new();

    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "end" {
            break;
        }
        let mut toks = line.split_whitespace();
        match toks.next().unwrap() {
            "modality" => modality = modality_from(toks.next().unwrap_or(""))?,
            "use_aux" => use_aux = field(&mut toks, "use_aux")?,
            "gnn" => {
                gnn.dim = field(&mut toks, "gnn dim")?;
                gnn.layers = field(&mut toks, "gnn layers")?;
                gnn.update = update_from(toks.next().unwrap_or(""))?;
                gnn.homogeneous = toks.next().map(|t| t == "true").unwrap_or(false);
            }
            "dae" => {
                dae.input_dim = field(&mut toks, "dae input")?;
                dae.hidden_dim = field(&mut toks, "dae hidden")?;
                dae.code_dim = field(&mut toks, "dae code")?;
                dae.swap_noise = field(&mut toks, "dae noise")?;
                dae.epochs = field(&mut toks, "dae epochs")?;
                dae.lr = field(&mut toks, "dae lr")?;
            }
            "hidden" => hidden = field(&mut toks, "hidden")?,
            "epochs" => epochs = field(&mut toks, "epochs")?,
            "lr" => lr = field(&mut toks, "lr")?,
            "seed" => seed = field(&mut toks, "seed")?,
            "heads" => {
                head_sizes = toks
                    .map(|t| {
                        t.parse()
                            .map_err(|_| PersistError::Malformed("head".into()))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "vec_dim" => vec_dim = field(&mut toks, "vec_dim")?,
            "aux_dim" => aux_dim = field(&mut toks, "aux_dim")?,
            "[param]" | "[dae_param]" => {
                let kind = line.starts_with("[param]");
                let name: String = field(&mut toks, "param name")?;
                let rows: usize = field(&mut toks, "rows")?;
                let cols: usize = field(&mut toks, "cols")?;
                let raw = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing data".into()))?;
                check_crc(toks.next(), &[raw], &format!("param {name}"))?;
                let data = parse_floats(raw)?;
                if data.len() != rows * cols {
                    return Err(PersistError::Malformed(format!(
                        "param {name}: {} values for {rows}x{cols}",
                        data.len()
                    )));
                }
                let t = Tensor::from_vec(rows, cols, data);
                if kind {
                    params.push((name, t));
                } else {
                    dae_params.push((name, t));
                }
            }
            "[dae_gauss]" | "[vec_gauss]" => {
                let is_dae = line.starts_with("[dae_gauss]");
                let _len: usize = field(&mut toks, "gauss len")?;
                let raw_vals = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing gauss vals".into()))?;
                let raw_scores = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing gauss scores".into()))?;
                check_crc(toks.next(), &[raw_vals, raw_scores], "gauss")?;
                let vals = parse_floats(raw_vals)?;
                let scores = parse_floats(raw_scores)?;
                if is_dae {
                    dae_gauss.push((vals, scores));
                } else {
                    vec_gauss.push((vals, scores));
                }
            }
            "[aux_minmax]" => {
                let _len: usize = field(&mut toks, "minmax len")?;
                let raw_mins = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing mins".into()))?;
                let raw_maxs = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing maxs".into()))?;
                check_crc(toks.next(), &[raw_mins, raw_maxs], "aux_minmax")?;
                let mins = parse_floats(raw_mins)?;
                let maxs = parse_floats(raw_maxs)?;
                aux_minmax = Some((mins, maxs));
            }
            // Training-state sections and the file seal only exist in
            // v2; seeing one under a v1 header means the header itself
            // was corrupted (which would also bypass seal verification).
            "[train]" | "[optim]" | "[rng]" | "[moment]" | "[crc]" if !v2 => {
                return Err(PersistError::Malformed(format!(
                    "v2-only section {} in a v1 checkpoint",
                    line.split_whitespace().next().unwrap_or("")
                )));
            }
            "[train]" => {
                tr_epoch = Some(field(&mut toks, "train epoch")?);
                tr_retries = field(&mut toks, "train retries")?;
                tr_best = hex_f32(&mut toks, "train best_loss")?;
                tr_final = hex_f32(&mut toks, "train final_loss")?;
            }
            "[optim]" => {
                opt_t = field(&mut toks, "optim t")?;
                opt_lr = hex_f32(&mut toks, "optim lr")?;
            }
            "[rng]" => {
                let mut s = [0u64; 4];
                for slot in &mut s {
                    *slot = hex_u64(&mut toks, "rng state")?;
                }
                rng_state = Some(s);
            }
            "[moment]" => {
                let name: String = field(&mut toks, "moment name")?;
                let rows: usize = field(&mut toks, "rows")?;
                let cols: usize = field(&mut toks, "cols")?;
                let raw_m = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing moment m".into()))?;
                let raw_v = lines
                    .next()
                    .ok_or_else(|| PersistError::Malformed("missing moment v".into()))?;
                check_crc(toks.next(), &[raw_m, raw_v], &format!("moment {name}"))?;
                let m = parse_floats(raw_m)?;
                let v = parse_floats(raw_v)?;
                if m.len() != rows * cols || v.len() != rows * cols {
                    return Err(PersistError::Malformed(format!(
                        "moment {name}: wrong element count for {rows}x{cols}"
                    )));
                }
                moments.push((
                    name,
                    Tensor::from_vec(rows, cols, m),
                    Tensor::from_vec(rows, cols, v),
                ));
            }
            "[crc]" => {
                // File-level seal, verified before parsing began.
            }
            other => {
                return Err(PersistError::Malformed(format!("unknown section {other}")));
            }
        }
    }

    let cfg = ModelConfig {
        modality,
        use_aux,
        gnn,
        dae: dae.clone(),
        hidden,
        epochs,
        lr,
        seed,
    };
    let mut model = FusionModel::skeleton(cfg, &head_sizes, vec_dim, aux_dim);
    for (name, t) in params {
        model
            .ps
            .set_by_name(&name, t)
            .map_err(|e| PersistError::Malformed(format!("parameter {name}: {e}")))?;
    }
    if modality == Modality::Multimodal {
        if dae_gauss.is_empty() {
            return Err(PersistError::Malformed(
                "multimodal checkpoint without DAE".into(),
            ));
        }
        model.dae = Some(
            TrainedDae::from_parts(dae, dae_params, GaussRankScaler::from_parts(dae_gauss))
                .map_err(PersistError::Malformed)?,
        );
    }
    if !vec_gauss.is_empty() {
        model.raw_vec_scaler = Some(GaussRankScaler::from_parts(vec_gauss));
    }
    if let Some((mins, maxs)) = aux_minmax {
        model.aux_scaler = Some(MinMaxScaler::from_parts(mins, maxs));
    }
    let state = tr_epoch.map(|epoch| TrainState {
        epoch,
        retries: tr_retries,
        t: opt_t,
        lr: opt_lr,
        best_loss: tr_best,
        final_loss: tr_final,
        moments,
        rng: rng_state.unwrap_or([0; 4]),
    });
    if let Some(st) = &state {
        model.final_loss = st.final_loss;
    }
    Ok((model, state))
}

/// Restore from raw file bytes; non-UTF-8 content (e.g. bit-flipped
/// files) is a typed [`PersistError::Malformed`], not a panic.
pub fn load_checkpoint_bytes(
    bytes: &[u8],
) -> Result<(FusionModel, Option<TrainState>), PersistError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| PersistError::Malformed("checkpoint is not valid UTF-8".into()))?;
    load_checkpoint(text)
}

/// Save to a file path (atomic; no training state).
pub fn save_to_file(
    model: &FusionModel,
    vec_dim: usize,
    aux_dim: usize,
    path: &std::path::Path,
) -> Result<(), PersistError> {
    save_checkpoint_to_file(model, vec_dim, aux_dim, None, path)
}

/// Atomically save a checkpoint: serialize, write to a sibling temp file,
/// fsync, rename. A crash at any point leaves either the old checkpoint
/// or the new one — never a torn file. This is also the `ckpt` fault
/// injection site: with `MGA_FAULT=ckpt:truncate:…` or `ckpt:bitflip:…`
/// armed, the serialized bytes are corrupted before the write so loaders
/// can prove they reject damaged files.
pub fn save_checkpoint_to_file(
    model: &FusionModel,
    vec_dim: usize,
    aux_dim: usize,
    state: Option<&TrainState>,
    path: &std::path::Path,
) -> Result<(), PersistError> {
    let mut bytes = save_checkpoint(model, vec_dim, aux_dim, state).into_bytes();
    if mga_obs::fault::armed() {
        if let Some(shot) = mga_obs::fault::fire(mga_obs::fault::Site::Ckpt) {
            corrupt_bytes(&mut bytes, shot);
        }
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint");
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn corrupt_bytes(bytes: &mut Vec<u8>, shot: mga_obs::fault::Shot) {
    match shot.kind {
        mga_obs::fault::Kind::Truncate => {
            let cut = (shot.draw as usize) % bytes.len().max(1);
            bytes.truncate(cut);
        }
        mga_obs::fault::Kind::BitFlip if !bytes.is_empty() => {
            let pos = (shot.draw as usize) % bytes.len();
            let bit = ((shot.draw >> 56) % 8) as u8;
            bytes[pos] ^= 1 << bit;
        }
        _ => {}
    }
}

/// Load from a file path (model only).
pub fn load_from_file(path: &std::path::Path) -> Result<FusionModel, PersistError> {
    load_checkpoint_from_file(path).map(|(m, _)| m)
}

/// Load from a file path, with any saved training state.
pub fn load_checkpoint_from_file(
    path: &std::path::Path,
) -> Result<(FusionModel, Option<TrainState>), PersistError> {
    load_checkpoint_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::kfold_by_group;
    use crate::omp::OmpTask;
    use crate::OmpDataset;
    use mga_kernels::catalog::openmp_thread_dataset;
    use mga_sim::cpu::CpuSpec;
    use mga_sim::openmp::thread_space;

    fn trained(modality: Modality) -> (OmpDataset, OmpTask, FusionModel, Vec<usize>) {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(6).collect();
        let cpu = CpuSpec::comet_lake();
        let ds = OmpDataset::build(specs, vec![1e6, 1e8], thread_space(&cpu), cpu, 12, 4);
        let task = OmpTask::new(&ds);
        let folds = kfold_by_group(&ds.groups(), 3, 1);
        let cfg = ModelConfig {
            modality,
            use_aux: true,
            gnn: GnnConfig {
                dim: 10,
                layers: 1,
                update: UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 12,
                hidden_dim: 8,
                code_dim: 4,
                epochs: 10,
                ..DaeConfig::default()
            },
            hidden: 16,
            epochs: 10,
            lr: 0.02,
            seed: 2,
        };
        let data = task.train_data(&ds);
        let model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());
        (ds, task, model, folds[0].val.clone())
    }

    #[test]
    fn round_trip_preserves_predictions_multimodal() {
        let (ds, task, model, val) = trained(Modality::Multimodal);
        let data = task.train_data(&ds);
        let before = model.predict(&data, &val);
        let text = save_model(&model, 12, 5);
        let restored = load_model(&text).expect("load");
        let after = restored.predict(&data, &val);
        assert_eq!(before, after, "checkpoint changed predictions");
    }

    #[test]
    fn round_trip_preserves_predictions_vector_only() {
        let (ds, task, model, val) = trained(Modality::VectorOnly);
        let data = task.train_data(&ds);
        let before = model.predict(&data, &val);
        let text = save_model(&model, 12, 5);
        let restored = load_model(&text).expect("load");
        assert_eq!(before, restored.predict(&data, &val));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_model("not a checkpoint").is_err());
        assert!(load_model("mga-model v1\nbogus_section x\nend\n").is_err());
        // v2 without its seal is rejected before any parsing.
        assert!(matches!(
            load_model("mga-model v2\nmodality Multimodal\nend\n"),
            Err(PersistError::Malformed(_))
        ));
        // Non-UTF-8 bytes are a typed error.
        assert!(matches!(
            load_checkpoint_bytes(&[0x6d, 0x67, 0x61, 0xff, 0xfe]),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn v1_checkpoints_still_load() {
        // Strip the v2 integrity features from a fresh save to produce a
        // legacy v1 file: old header, no crc tokens, no [crc] seal.
        let (ds, task, model, val) = trained(Modality::VectorOnly);
        let data = task.train_data(&ds);
        let v2 = save_model(&model, 12, 5);
        let v1: String = v2
            .lines()
            .filter(|l| !l.starts_with("[crc] "))
            .map(|l| {
                let l = l.replace("mga-model v2", "mga-model v1");
                match l.find(" crc=") {
                    Some(i) => format!("{}\n", &l[..i]),
                    None => format!("{l}\n"),
                }
            })
            .collect();
        let restored = load_model(&v1).expect("v1 load");
        assert_eq!(model.predict(&data, &val), restored.predict(&data, &val));
    }

    #[test]
    fn save_load_save_is_a_fixpoint() {
        let (_, _, model, _) = trained(Modality::Multimodal);
        let state = TrainState {
            epoch: 7,
            retries: 1,
            t: 7,
            lr: 0.005,
            best_loss: 0.25,
            final_loss: 0.3,
            moments: model
                .ps
                .iter_named()
                .map(|(n, t)| {
                    (
                        n.to_string(),
                        Tensor::full(t.rows(), t.cols(), 0.125),
                        Tensor::full(t.rows(), t.cols(), 0.5),
                    )
                })
                .collect(),
            rng: [1, 2, 3, 4],
        };
        let text = save_checkpoint(&model, 12, 5, Some(&state));
        let (restored, rstate) = load_checkpoint(&text).expect("load");
        let rstate = rstate.expect("training state survived");
        assert_eq!(rstate.epoch, 7);
        assert_eq!(rstate.retries, 1);
        assert_eq!(rstate.t, 7);
        assert_eq!(rstate.lr, 0.005);
        assert_eq!(rstate.rng, [1, 2, 3, 4]);
        assert_eq!(rstate.moments.len(), state.moments.len());
        let again = save_checkpoint(&restored, 12, 5, Some(&rstate));
        assert_eq!(text, again, "save→load→save must be byte-identical");
    }

    #[test]
    fn corruption_is_detected() {
        let (_, _, model, _) = trained(Modality::VectorOnly);
        let text = save_model(&model, 12, 5);
        // Flip one payload character.
        let pos = text.find("[param]").unwrap() + 40;
        let mut bytes = text.clone().into_bytes();
        bytes[pos] ^= 0x01;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(
            matches!(load_model(&flipped), Err(PersistError::Malformed(_))),
            "bit flip must be caught"
        );
        // Truncate mid-file.
        let cut = &text[..text.len() / 2];
        assert!(matches!(load_model(cut), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn file_round_trip() {
        let (ds, task, model, val) = trained(Modality::GraphOnly);
        let data = task.train_data(&ds);
        let dir = std::env::temp_dir().join("mga_persist_test.ckpt");
        save_to_file(&model, 12, 5, &dir).unwrap();
        let restored = load_from_file(&dir).unwrap();
        assert_eq!(model.predict(&data, &val), restored.predict(&data, &val));
        let _ = std::fs::remove_file(&dir);
    }
}
