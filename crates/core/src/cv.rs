//! Cross-validation splitters matching the paper's protocols.
//!
//! * §4.1.3: 5-fold CV where folds partition the *loops* (all inputs of a
//!   loop stay together) — [`kfold_by_group`];
//! * §4.1.3 "Varying Input Sizes": loops 5-folded *and* 20 % of the input
//!   sizes held out — [`holdout_indices`] combined with the group folds;
//! * §4.1.4 / §4.1.5: leave-one-application-out — [`leave_one_group_out`];
//! * §4.2: 10-fold *stratified* CV on labels — [`stratified_kfold`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/validation split over sample indices.
#[derive(Debug, Clone)]
pub struct Fold {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
}

/// K folds partitioning the distinct `groups` values; a sample lands in
/// the validation set of the fold owning its group.
pub fn kfold_by_group(groups: &[usize], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "need at least two folds");
    let mut distinct: Vec<usize> = {
        let mut d = groups.to_vec();
        d.sort_unstable();
        d.dedup();
        d
    };
    let mut rng = StdRng::seed_from_u64(seed);
    distinct.shuffle(&mut rng);
    let mut folds = vec![
        Fold {
            train: Vec::new(),
            val: Vec::new()
        };
        k
    ];
    // Assign groups round-robin to folds.
    let mut owner = std::collections::HashMap::new();
    for (i, g) in distinct.iter().enumerate() {
        owner.insert(*g, i % k);
    }
    for (idx, g) in groups.iter().enumerate() {
        let f = owner[g];
        for (fi, fold) in folds.iter_mut().enumerate() {
            if fi == f {
                fold.val.push(idx);
            } else {
                fold.train.push(idx);
            }
        }
    }
    folds
}

/// Leave-one-group-out: one fold per distinct group.
pub fn leave_one_group_out(groups: &[usize]) -> Vec<Fold> {
    let mut distinct: Vec<usize> = {
        let mut d = groups.to_vec();
        d.sort_unstable();
        d.dedup();
        d
    };
    distinct.sort_unstable();
    distinct
        .into_iter()
        .map(|g| {
            let mut fold = Fold {
                train: Vec::new(),
                val: Vec::new(),
            };
            for (idx, gi) in groups.iter().enumerate() {
                if *gi == g {
                    fold.val.push(idx);
                } else {
                    fold.train.push(idx);
                }
            }
            fold
        })
        .collect()
}

/// Stratified k-fold on labels: each fold's validation set preserves the
/// label distribution.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &l) in labels.iter().enumerate() {
        by_label.entry(l).or_default().push(i);
    }
    // Round-robin each label's (shuffled) samples across folds.
    let mut fold_of = vec![0usize; labels.len()];
    for (_, mut idxs) in by_label {
        idxs.shuffle(&mut rng);
        for (j, i) in idxs.into_iter().enumerate() {
            fold_of[i] = j % k;
        }
    }
    (0..k)
        .map(|f| {
            let mut fold = Fold {
                train: Vec::new(),
                val: Vec::new(),
            };
            for (i, &fi) in fold_of.iter().enumerate() {
                if fi == f {
                    fold.val.push(i);
                } else {
                    fold.train.push(i);
                }
            }
            fold
        })
        .collect()
}

/// Evaluate every fold, fanning the folds out across the shared worker
/// pool (`mga_nn::pool`); returns the results in fold order.
///
/// Determinism: `eval(fold_index, fold)` must derive any randomness from
/// its arguments (per-fold seeding), never from shared mutable state.
/// Results are stored by fold index, so both the order and — with
/// per-fold seeds — the content of the output are identical to the
/// sequential `folds.iter().map(...)` loop for any `MGA_THREADS`,
/// including 1 (which forces the fully sequential path). Nested
/// parallelism is fine: the per-fold model training reuses the same pool
/// for its matmul/scatter kernels.
pub fn run_folds<T, F>(folds: &[Fold], eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &Fold) -> T + Sync,
{
    run_folds_timed(folds, eval)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// Like [`run_folds`], additionally returning each fold's wall time in
/// seconds (for run manifests). The timing is taken around the fold's own
/// `eval` call, so fold-parallel runs report genuine per-fold durations,
/// not queue time.
pub fn run_folds_timed<T, F>(folds: &[Fold], eval: F) -> Vec<(T, f64)>
where
    T: Send,
    F: Fn(usize, &Fold) -> T + Sync,
{
    mga_obs::span!("cv.run_folds");
    let fold_counter = mga_obs::metrics::counter("cv.folds");
    let mut out: Vec<Option<(T, f64)>> = (0..folds.len()).map(|_| None).collect();
    let slots = mga_nn::pool::SendPtr::new(out.as_mut_ptr());
    mga_nn::pool::parallel_for(folds.len(), |fi| {
        let started = std::time::Instant::now();
        let r = eval(fi, &folds[fi]);
        fold_counter.inc();
        // Each fold owns slot `fi` exclusively.
        unsafe { *slots.get().add(fi) = Some((r, started.elapsed().as_secs_f64())) };
    });
    out.into_iter()
        .map(|r| r.expect("every fold evaluates"))
        .collect()
}

/// A deterministic holdout of `frac` of `n` indices (e.g. the paper's
/// 20 % of input sizes set aside in §4.1.3's generalization experiment).
pub fn holdout_indices(n: usize, frac: f64, seed: u64) -> Vec<usize> {
    let mut idxs: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idxs.shuffle(&mut rng);
    let take = ((n as f64 * frac).round() as usize).clamp(1, n.saturating_sub(1).max(1));
    let mut held: Vec<usize> = idxs.into_iter().take(take).collect();
    held.sort_unstable();
    held
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfold_partitions_groups() {
        // 10 groups, 3 samples each.
        let groups: Vec<usize> = (0..30).map(|i| i / 3).collect();
        let folds = kfold_by_group(&groups, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut val_union: Vec<usize> = Vec::new();
        for f in &folds {
            assert_eq!(f.train.len() + f.val.len(), 30);
            // Groups never straddle train/val.
            for &v in &f.val {
                assert!(
                    !f.train.iter().any(|&t| groups[t] == groups[v]),
                    "group leaked between train and val"
                );
            }
            val_union.extend(&f.val);
        }
        val_union.sort_unstable();
        assert_eq!(
            val_union,
            (0..30).collect::<Vec<_>>(),
            "folds must cover all"
        );
    }

    #[test]
    fn kfold_is_seed_deterministic() {
        let groups: Vec<usize> = (0..20).map(|i| i / 2).collect();
        let a = kfold_by_group(&groups, 4, 7);
        let b = kfold_by_group(&groups, 4, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.val, y.val);
        }
        let c = kfold_by_group(&groups, 4, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.val != y.val));
    }

    #[test]
    fn logo_gives_one_fold_per_group() {
        let groups = vec![0, 0, 1, 2, 2, 2];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[0].val, vec![0, 1]);
        assert_eq!(folds[1].val, vec![2]);
        assert_eq!(folds[2].val, vec![3, 4, 5]);
        assert_eq!(folds[2].train, vec![0, 1, 2]);
    }

    #[test]
    fn stratified_preserves_label_ratio() {
        // 80 of class 0, 20 of class 1.
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 80)).collect();
        let folds = stratified_kfold(&labels, 10, 3);
        assert_eq!(folds.len(), 10);
        for f in &folds {
            let ones = f.val.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(f.val.len(), 10);
            assert_eq!(ones, 2, "stratification broken: {ones} of 10");
        }
    }

    #[test]
    fn stratified_handles_tiny_minority_class() {
        // 3 positives across 5 folds: each positive lands in a distinct
        // fold's validation set, nothing is lost.
        let labels: Vec<usize> = (0..50).map(|i| usize::from(i >= 47)).collect();
        let folds = stratified_kfold(&labels, 5, 9);
        let mut positives_seen = 0;
        for f in &folds {
            let p = f.val.iter().filter(|&&i| labels[i] == 1).count();
            assert!(p <= 1, "minority class bunched: {p}");
            positives_seen += p;
            assert_eq!(f.train.len() + f.val.len(), 50);
        }
        assert_eq!(positives_seen, 3);
    }

    #[test]
    fn run_folds_matches_sequential_order_and_content() {
        let groups: Vec<usize> = (0..40).map(|i| i / 4).collect();
        let folds = kfold_by_group(&groups, 5, 21);
        // A fold-seeded computation: deterministic given (fi, fold).
        let eval = |fi: usize, fold: &Fold| -> (usize, u64) {
            let mut rng = StdRng::seed_from_u64(100 + fi as u64);
            let mut acc = 0u64;
            for &v in &fold.val {
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(v as u64)
                    .wrapping_add(crate::cv::tests::next(&mut rng));
            }
            (fi, acc)
        };
        let sequential: Vec<(usize, u64)> = folds
            .iter()
            .enumerate()
            .map(|(fi, f)| eval(fi, f))
            .collect();
        let parallel = run_folds(&folds, eval);
        assert_eq!(parallel, sequential);
    }

    fn next(rng: &mut StdRng) -> u64 {
        use rand::RngCore;
        rng.next_u64()
    }

    #[test]
    fn holdout_fraction() {
        let h = holdout_indices(30, 0.2, 11);
        assert_eq!(h.len(), 6);
        assert!(h.iter().all(|&i| i < 30));
        let h2 = holdout_indices(30, 0.2, 11);
        assert_eq!(h, h2);
    }
}
