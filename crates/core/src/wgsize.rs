//! Work-group-size tuning for OpenCL kernels — the paper's §7 "expand
//! our work to GPUs" direction, built on the same multimodal pipeline.
//!
//! For each (kernel, transfer size) the GPU execution model is swept over
//! the work-group candidates; the model learns to predict the best one
//! from the two static modalities plus the transfer size, and is
//! evaluated on unseen kernels against the device-default work-group
//! (the common practice this tuning replaces) and the oracle.

use crate::dataset::encode_kernels;
use crate::model::TrainData;
use mga_graph::{build_module_graph, ProGraph};
use mga_kernels::spec::KernelSpec;
use mga_sim::cpu::CpuSpec;
use mga_sim::gpu::{run_mapping, GpuSpec};
use mga_vec::SeedEmbeddings;

/// The candidate work-group sizes.
pub const WG_CANDIDATES: [u32; 5] = [32, 64, 128, 256, 512];

/// One (kernel, transfer) tuning sample.
#[derive(Debug, Clone)]
pub struct WgSample {
    pub kernel: usize,
    pub transfer_bytes: f64,
    /// GPU runtime per candidate (aligned with [`WG_CANDIDATES`]).
    pub gpu_times: [f64; 5],
    /// Index of the best candidate.
    pub best: usize,
}

/// The work-group tuning dataset for one device.
pub struct WgDataset {
    pub specs: Vec<KernelSpec>,
    pub graphs: Vec<ProGraph>,
    pub vectors: Vec<Vec<f32>>,
    pub samples: Vec<WgSample>,
    pub embeddings: SeedEmbeddings,
    pub gpu: GpuSpec,
}

impl WgDataset {
    /// Sweep every kernel × transfer class over the candidates.
    pub fn build(specs: Vec<KernelSpec>, gpu: GpuSpec, vec_dim: usize, seed: u64) -> WgDataset {
        let cpu = CpuSpec::i7_3820();
        let graphs: Vec<ProGraph> = specs
            .iter()
            .map(|s| build_module_graph(&s.module))
            .collect();
        let (embeddings, vectors) = encode_kernels(&specs, vec_dim, seed);
        let transfer_classes = [
            512.0 * 1024.0,
            8.0 * 1024.0 * 1024.0,
            128.0 * 1024.0 * 1024.0,
        ];
        let mut samples = Vec::new();
        for (ki, spec) in specs.iter().enumerate() {
            for &tb in &transfer_classes {
                let mut gpu_times = [0.0f64; 5];
                for (c, &wg) in WG_CANDIDATES.iter().enumerate() {
                    gpu_times[c] = run_mapping(spec, tb, wg, &cpu, &gpu).gpu_time;
                }
                let best = gpu_times
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                samples.push(WgSample {
                    kernel: ki,
                    transfer_bytes: tb,
                    gpu_times,
                    best,
                });
            }
        }
        WgDataset {
            specs,
            graphs,
            vectors,
            samples,
            embeddings,
            gpu,
        }
    }

    pub fn groups(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.kernel).collect()
    }

    /// Index of the device-default candidate (the GPU's preferred size).
    pub fn default_candidate(&self) -> usize {
        WG_CANDIDATES
            .iter()
            .position(|&w| w == self.gpu.preferred_wg)
            .unwrap_or(3)
    }

    /// Speedup of candidate `c` over the device default for a sample.
    pub fn speedup_over_default(&self, s: &WgSample, c: usize) -> f64 {
        s.gpu_times[self.default_candidate()] / s.gpu_times[c]
    }
}

/// The task view (aux: log transfer size).
pub struct WgTask {
    pub sample_kernel: Vec<usize>,
    pub aux: Vec<Vec<f32>>,
    pub labels: Vec<Vec<usize>>,
}

impl WgTask {
    pub fn new(ds: &WgDataset) -> WgTask {
        WgTask {
            sample_kernel: ds.samples.iter().map(|s| s.kernel).collect(),
            aux: ds
                .samples
                .iter()
                .map(|s| vec![(s.transfer_bytes.max(1.0)).log2() as f32])
                .collect(),
            labels: vec![ds.samples.iter().map(|s| s.best).collect()],
        }
    }

    pub fn train_data<'a>(&'a self, ds: &'a WgDataset) -> TrainData<'a> {
        TrainData {
            graphs: &ds.graphs,
            vectors: &ds.vectors,
            sample_kernel: &self.sample_kernel,
            aux: &self.aux,
            labels: &self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::kfold_by_group;
    use crate::metrics::geomean;
    use crate::model::{FusionModel, Modality, ModelConfig};
    use mga_dae::DaeConfig;
    use mga_gnn::GnnConfig;
    use mga_kernels::catalog::opencl_catalog;

    #[test]
    fn dataset_has_varied_labels_and_consistent_speedups() {
        let specs: Vec<_> = opencl_catalog().into_iter().step_by(4).collect();
        let ds = WgDataset::build(specs, GpuSpec::tahiti_7970(), 16, 3);
        let mut label_set = std::collections::HashSet::new();
        for s in &ds.samples {
            label_set.insert(s.best);
            // Best candidate's speedup over default is ≥ 1.
            assert!(ds.speedup_over_default(s, s.best) >= 1.0 - 1e-12);
            // Oracle is the argmin.
            let min = s.gpu_times.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(s.gpu_times[s.best], min);
        }
        assert!(label_set.len() >= 3, "labels collapsed: {label_set:?}");
    }

    #[test]
    fn model_tunes_work_groups_on_unseen_kernels() {
        let specs: Vec<_> = opencl_catalog().into_iter().step_by(3).collect();
        let ds = WgDataset::build(specs, GpuSpec::tahiti_7970(), 16, 5);
        let task = WgTask::new(&ds);
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let cfg = ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 2,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 12,
                code_dim: 6,
                epochs: 25,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 40,
            lr: 0.02,
            seed: 2,
        };
        let model = FusionModel::fit(cfg, &data, &folds[0].train, &[WG_CANDIDATES.len()]);
        let preds = model.predict(&data, &folds[0].val);
        let mut speedups = Vec::new();
        let mut oracle = Vec::new();
        for (j, &i) in folds[0].val.iter().enumerate() {
            let s = &ds.samples[i];
            speedups.push(ds.speedup_over_default(s, preds[0][j]));
            oracle.push(ds.speedup_over_default(s, s.best));
        }
        let g = geomean(&speedups);
        let o = geomean(&oracle);
        assert!(o >= 1.0);
        assert!(
            g > 0.9 * o || g >= 1.0,
            "wg tuning on unseen kernels too weak: {g:.3} vs oracle {o:.3}"
        );
    }
}
