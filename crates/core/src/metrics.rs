//! Evaluation metrics: accuracy, macro-F1, geometric means and speedups.

/// Classification accuracy.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    hits as f64 / pred.len() as f64
}

/// Macro-averaged F1 over `num_classes` classes (classes absent from both
/// prediction and truth are skipped, as scikit-learn does with
/// `zero_division` handling).
pub fn macro_f1(pred: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mut f1_sum = 0.0;
    let mut counted = 0;
    for c in 0..num_classes {
        let tp = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p == c && **t == c)
            .count() as f64;
        let fp = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p == c && **t != c)
            .count() as f64;
        let fune = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p != c && **t == c)
            .count() as f64;
        if tp + fp + fune == 0.0 {
            continue;
        }
        let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let rec = if tp + fune > 0.0 {
            tp / (tp + fune)
        } else {
            0.0
        };
        let f1 = if prec + rec > 0.0 {
            2.0 * prec * rec / (prec + rec)
        } else {
            0.0
        };
        f1_sum += f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        f1_sum / counted as f64
    }
}

/// Geometric mean of strictly positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Speedup of a chosen configuration over the default:
/// `runtime_default / runtime_chosen`.
pub fn speedup(default_runtime: f64, chosen_runtime: f64) -> f64 {
    default_runtime / chosen_runtime
}

/// A (tool speedup, oracle speedup) pair for normalized reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPair {
    pub achieved: f64,
    pub oracle: f64,
}

impl SpeedupPair {
    /// The paper's "normalized speedup": achieved / oracle (≤ ~1).
    pub fn normalized(&self) -> f64 {
        self.achieved / self.oracle
    }
}

/// Geometric-mean summary of many speedup pairs.
pub fn summarize(pairs: &[SpeedupPair]) -> (f64, f64, f64) {
    let ach: Vec<f64> = pairs.iter().map(|p| p.achieved).collect();
    let ora: Vec<f64> = pairs.iter().map(|p| p.oracle).collect();
    let g_ach = geomean(&ach);
    let g_ora = geomean(&ora);
    (g_ach, g_ora, g_ach / g_ora)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        let y = vec![0, 1, 2, 0, 1, 2];
        assert!((macro_f1(&y, &y, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_worst_is_zero() {
        let pred = vec![0, 0, 0];
        let truth = vec![1, 1, 1];
        assert_eq!(macro_f1(&pred, &truth, 2), 0.0);
    }

    #[test]
    fn macro_f1_balances_classes() {
        // Majority-class guessing must score worse on macro-F1 than on
        // accuracy for imbalanced data.
        let truth = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = vec![0; 10];
        let acc = accuracy(&pred, &truth);
        let f1 = macro_f1(&pred, &truth, 2);
        assert!(acc > 0.85);
        assert!(f1 < acc);
    }

    #[test]
    fn macro_f1_known_three_class_value() {
        // truth:  0 0 1 1 2 2
        // pred:   0 1 1 2 2 2
        // class0: tp1 fp0 fn1 → P=1, R=.5, F1=2/3
        // class1: tp1 fp1 fn1 → P=.5, R=.5, F1=.5
        // class2: tp2 fp1 fn0 → P=2/3, R=1, F1=.8
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![0, 1, 1, 2, 2, 2];
        let f1 = macro_f1(&pred, &truth, 3);
        let want = (2.0 / 3.0 + 0.5 + 0.8) / 3.0;
        assert!((f1 - want).abs() < 1e-12, "{f1} vs {want}");
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn speedups_and_normalization() {
        let p = SpeedupPair {
            achieved: 3.4,
            oracle: 3.62,
        };
        assert!((p.normalized() - 0.939).abs() < 1e-3);
        let (a, o, n) = summarize(&[p, p]);
        assert!((a - 3.4).abs() < 1e-9);
        assert!((o - 3.62).abs() < 1e-9);
        assert!((n - p.normalized()).abs() < 1e-9);
    }
}
