//! Online hybrid tuning — the paper's "future work" (§7): "We aim to
//! incorporate transfer and reinforcement learning in future efforts for
//! developing an online tuner with customizable search spaces."
//!
//! [`OnlineTuner`] starts from the trained MGA model's prediction and
//! refines it with a handful of *real* evaluations: a best-first local
//! search over single-dimension neighbors (threads / schedule / chunk),
//! accepting moves greedily. With the model prior it converges in a few
//! evaluations to configurations neither the pure model (no feedback)
//! nor a cold-started search (no prior) reaches at the same budget.

use crate::dataset::{OmpDataset, OmpSample};
use crate::model::{FusionModel, TrainData};
use crate::omp::ConfigCodec;
use mga_sim::openmp::OmpConfig;

/// Result of one online-tuning session for a (loop, input) pair.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// Configuration the model predicted before any evaluation.
    pub model_config: usize,
    /// Configuration after online refinement.
    pub refined_config: usize,
    /// Real evaluations spent.
    pub evals: usize,
}

/// Online hybrid tuner: model prior + greedy local refinement.
pub struct OnlineTuner<'a> {
    pub model: &'a FusionModel,
    pub codec: &'a ConfigCodec,
    /// Maximum real evaluations to spend per sample.
    pub budget: usize,
}

impl<'a> OnlineTuner<'a> {
    pub fn new(model: &'a FusionModel, codec: &'a ConfigCodec, budget: usize) -> OnlineTuner<'a> {
        OnlineTuner {
            model,
            codec,
            budget,
        }
    }

    /// Indices of configs differing from `idx` in exactly one dimension,
    /// adjacent in that dimension's value order.
    fn neighbors(space: &[OmpConfig], idx: usize) -> Vec<usize> {
        let me = space[idx];
        let mut out = Vec::new();
        for (j, c) in space.iter().enumerate() {
            if j == idx {
                continue;
            }
            let same = [
                c.threads == me.threads,
                c.schedule == me.schedule,
                c.chunk == me.chunk,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            if same == 2 {
                out.push(j);
            }
        }
        out
    }

    /// Tune one sample: predict, then refine with real feedback from
    /// `eval` (which returns the runtime of a config index). When tuning
    /// many samples against the same model, [`evaluate_online`] is
    /// cheaper: it prepares the whole batch once and calls
    /// [`OnlineTuner::tune_from`] with precomputed starting points.
    pub fn tune(
        &self,
        data: &TrainData<'_>,
        sample_idx: usize,
        space: &[OmpConfig],
        eval: impl FnMut(usize) -> f64,
    ) -> OnlineResult {
        let preds = self.model.predict(data, &[sample_idx]);
        let heads: Vec<usize> = preds.iter().map(|p| p[0]).collect();
        let start = self.codec.decode(&heads);
        self.tune_from(start, space, eval)
    }

    /// Refine from an already-predicted starting configuration.
    pub fn tune_from(
        &self,
        start: usize,
        space: &[OmpConfig],
        mut eval: impl FnMut(usize) -> f64,
    ) -> OnlineResult {
        let mut evals = 0usize;
        let mut best = (start, eval(start));
        evals += 1;
        let mut tried = vec![false; space.len()];
        tried[start] = true;

        // Greedy best-first: evaluate untried neighbors of the incumbent,
        // move when one improves, stop at budget or local optimum.
        'outer: loop {
            let nbrs = Self::neighbors(space, best.0);
            for j in nbrs {
                if tried[j] || evals >= self.budget {
                    continue;
                }
                tried[j] = true;
                let t = eval(j);
                evals += 1;
                if t < best.1 {
                    best = (j, t);
                    continue 'outer; // restart around the new incumbent
                }
            }
            // No untried neighbor improved (or budget exhausted).
            break;
        }
        OnlineResult {
            model_config: start,
            refined_config: best.0,
            evals,
        }
    }
}

/// Convenience: run the online tuner over a set of dataset samples,
/// returning (model-only, refined) speedup pairs.
///
/// The model pass is batched: one [`FusionModel::prepare`] /
/// [`FusionModel::predict_prepared`] over all samples replaces the
/// per-sample prepare-predict that `tune` would run, so the feature
/// pipeline (graph batching, DAE encoding, scaling) executes once.
pub fn evaluate_online(
    ds: &OmpDataset,
    data: &TrainData<'_>,
    model: &FusionModel,
    codec: &ConfigCodec,
    sample_indices: &[usize],
    budget: usize,
) -> Vec<(f64, f64, usize)> {
    let tuner = OnlineTuner::new(model, codec, budget);
    let prep = model.prepare(data, sample_indices);
    let preds = model.predict_prepared(&prep);
    sample_indices
        .iter()
        .enumerate()
        .map(|(j, &i)| {
            let s: &OmpSample = &ds.samples[i];
            let heads: Vec<usize> = preds.iter().map(|p| p[j]).collect();
            let start = codec.decode(&heads);
            let r = tuner.tune_from(start, &ds.space, |cfg| s.runtimes[cfg]);
            (
                ds.achieved_speedup(s, r.model_config),
                ds.achieved_speedup(s, r.refined_config),
                r.evals,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::kfold_by_group;
    use crate::model::{Modality, ModelConfig};
    use crate::omp::OmpTask;
    use mga_dae::DaeConfig;
    use mga_gnn::GnnConfig;
    use mga_kernels::catalog::openmp_thread_dataset;
    use mga_sim::cpu::CpuSpec;
    use mga_sim::openmp::thread_space;

    fn setup() -> (OmpDataset, OmpTask) {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
        let cpu = CpuSpec::comet_lake();
        let sizes = vec![1e5, 1e7, 3e8];
        let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 3);
        let task = OmpTask::new(&ds);
        (ds, task)
    }

    fn quick_cfg() -> ModelConfig {
        ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 15,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 20,
            lr: 0.02,
            seed: 5,
        }
    }

    #[test]
    fn refinement_never_hurts_and_respects_budget() {
        let (ds, task) = setup();
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let model = FusionModel::fit(
            quick_cfg(),
            &data,
            &folds[0].train,
            &task.codec.head_sizes(),
        );
        let results = evaluate_online(&ds, &data, &model, &task.codec, &folds[0].val, 5);
        assert_eq!(results.len(), folds[0].val.len());
        for (model_sp, refined_sp, evals) in results {
            assert!(
                refined_sp >= model_sp - 1e-12,
                "online refinement made things worse: {model_sp} -> {refined_sp}"
            );
            assert!(evals <= 5);
            assert!(evals >= 1);
        }
    }

    #[test]
    fn refinement_reaches_oracle_with_full_budget() {
        let (ds, task) = setup();
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let model = FusionModel::fit(
            quick_cfg(),
            &data,
            &folds[0].train,
            &task.codec.head_sizes(),
        );
        // Budget covering the whole (1-D) thread space: greedy walk must
        // find the global optimum of the unimodal-ish runtime curve, or at
        // least match the model start; verify it attains the oracle often.
        let results = evaluate_online(&ds, &data, &model, &task.codec, &folds[0].val, 8);
        let mut oracle_hits = 0;
        for ((_, refined_sp, _), &i) in results.iter().zip(&folds[0].val) {
            let s = &ds.samples[i];
            if (refined_sp - ds.oracle_speedup(s)).abs() < 1e-9 {
                oracle_hits += 1;
            }
        }
        assert!(
            oracle_hits * 2 >= results.len(),
            "online tuner reached the oracle on only {oracle_hits}/{} samples",
            results.len()
        );
    }

    #[test]
    fn neighbors_are_single_dimension_moves() {
        let space = mga_sim::openmp::large_space();
        let nbrs = OnlineTuner::neighbors(&space, 0);
        assert!(!nbrs.is_empty());
        for j in nbrs {
            let a = space[0];
            let b = space[j];
            let diffs = [
                a.threads != b.threads,
                a.schedule != b.schedule,
                a.chunk != b.chunk,
            ]
            .iter()
            .filter(|&&d| d)
            .count();
            assert_eq!(diffs, 1);
        }
    }
}
