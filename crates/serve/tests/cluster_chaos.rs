//! Cluster chaos suite: the three promises of `mga_serve::cluster`,
//! held under injected failure.
//!
//! 1. Every accepted request is answered — shard crashes evacuate and
//!    reroute, never drop.
//! 2. Every refusal is typed — queue-full, deadline, shard-down,
//!    unknown-kernel/head all come back as [`ServeError`] variants, and
//!    sheds/redirects land in the admission flight ring with
//!    [`Disposition`] tags.
//! 3. Everything replays — a failure scenario (kill shard i at tick t;
//!    probabilistic MGA_FAULT crash/stall/misdirect scripts) re-run from
//!    scratch produces a bitwise-identical response checksum.
//!
//! Plus the routing property the cluster's cache locality rests on: a
//! consistent-hash ring moves only ~K/(N+1) of K keys when a shard is
//! added (proptest), and hot swaps install at an exact batch boundary
//! with validation-gated rollback.
//!
//! Fault state (`mga_obs::fault`) is process-global, so every test in
//! this binary takes one shared lock — armed specs must never leak into
//! a concurrently running cluster.

use std::sync::{Mutex, MutexGuard, OnceLock};

use mga_core::cv::kfold_by_group;
use mga_core::dataset::OmpDataset;
use mga_core::model::{FusionModel, Modality, ModelConfig, TrainData};
use mga_core::omp::OmpTask;
use mga_core::persist;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_obs::fault;
use mga_serve::{
    load_candidate, Cluster, ClusterConfig, DataPlane, Disposition, Health, Request, Response,
    Router, ServeConfig, ServeError, SwapError,
};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;
use proptest::prelude::*;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct Ctx {
    ds: OmpDataset,
    task: OmpTask,
    /// The serving model (v1) and a same-shape retrain (v2) — the hot
    /// swap candidate.
    model: FusionModel,
    model_v2: FusionModel,
    /// A differently-shaped model (narrower trunk) the swap gate must
    /// reject.
    model_misfit: FusionModel,
    /// Per-sample reference classes under v1 / v2.
    expected: Vec<Vec<usize>>,
    expected_v2: Vec<Vec<usize>>,
}

fn fit(c: &ModelConfig, task: &OmpTask, ds: &OmpDataset) -> FusionModel {
    let data = task.train_data(ds);
    let folds = kfold_by_group(&ds.groups(), 4, 2);
    FusionModel::fit(c.clone(), &data, &folds[0].train, &task.codec.head_sizes())
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
        let cpu = CpuSpec::comet_lake();
        let ds = OmpDataset::build(specs, vec![1e5, 1e7, 3e8], thread_space(&cpu), cpu, 16, 3);
        let task = OmpTask::new(&ds);
        let cfg = ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 15,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 20,
            lr: 0.02,
            seed: 5,
        };
        let model = fit(&cfg, &task, &ds);
        let model_v2 = fit(
            &ModelConfig {
                seed: 9,
                epochs: 24,
                ..cfg.clone()
            },
            &task,
            &ds,
        );
        let model_misfit = fit(
            &ModelConfig {
                hidden: 20,
                epochs: 2,
                ..cfg.clone()
            },
            &task,
            &ds,
        );
        let data = task.train_data(&ds);
        let classes_of = |m: &FusionModel| -> Vec<Vec<usize>> {
            (0..ds.samples.len())
                .map(|i| m.predict(&data, &[i]).iter().map(|p| p[0]).collect())
                .collect()
        };
        let expected = classes_of(&model);
        let expected_v2 = classes_of(&model_v2);
        Ctx {
            ds,
            task,
            model,
            model_v2,
            model_misfit,
            expected,
            expected_v2,
        }
    })
}

fn train_data(c: &'static Ctx) -> TrainData<'static> {
    c.task.train_data(&c.ds)
}

fn request(data: &TrainData<'_>, id: u64, i: usize) -> Request {
    Request {
        id,
        kernel: data.sample_kernel[i],
        aux: data.aux[i].clone(),
    }
}

fn cluster_cfg(shards: usize, queue_capacity: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        queue_capacity,
        serve: ServeConfig {
            max_batch: 4,
            max_wait_ticks: 2,
            cache_capacity: 16,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn fnv(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Outcome of one scripted chaos run.
struct RunResult {
    checksum: u64,
    accepted: u64,
    answered: u64,
    shed: u64,
    live_shards: usize,
}

/// Drive a fixed submit/tick script through a fresh 4-shard cluster on
/// the given data plane, optionally killing one shard at a given tick,
/// and fold every response (in drain order) into an FNV checksum. Each
/// response is also checked against the v1 sequential reference —
/// rerouting must change *where* a request is served, never *what* it
/// answers.
fn run_script(c: &'static Ctx, kill: Option<(usize, u64)>, plane: DataPlane) -> RunResult {
    let data = train_data(c);
    let n = c.ds.samples.len();
    let mut cfg = cluster_cfg(4, 16);
    cfg.data_plane = plane;
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cfg);
    let mut out: Vec<Response> = Vec::new();
    let mut shed = 0u64;
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut check = |out: &mut Vec<Response>| {
        for r in out.drain(..) {
            let sample = (r.id as usize) % n;
            assert_eq!(
                r.classes, c.expected[sample],
                "response {} diverged from the sequential reference",
                r.id
            );
            fnv(&mut checksum, r.id);
            for &cl in &r.classes {
                fnv(&mut checksum, cl as u64);
            }
            fnv(&mut checksum, r.enqueued_tick);
            fnv(&mut checksum, r.completed_tick);
        }
    };
    let steps = 2 * n;
    for step in 0..steps {
        let i = step % n;
        match cluster.submit(request(&data, step as u64, i), None) {
            Ok(_) => {}
            Err(_) => shed += 1,
        }
        if step % 3 == 2 {
            if let Some((shard, at)) = kill {
                if cluster.now() + 1 == at {
                    cluster.kill_shard(shard);
                }
            }
            cluster.tick();
            cluster.drain(&mut out);
            check(&mut out);
        }
    }
    cluster.flush();
    cluster.drain(&mut out);
    check(&mut out);
    let live_shards = (0..cluster.shards())
        .filter(|&s| cluster.health(s) != Health::Down)
        .count();
    RunResult {
        checksum,
        accepted: cluster.accepted_total(),
        answered: cluster.answered_total(),
        shed,
        live_shards,
    }
}

/// Kill shard 1 at tick 4 mid-stream: nothing accepted is lost, every
/// response matches the no-failure reference classes, and replaying the
/// identical script gives a bitwise-identical checksum.
#[test]
fn kill_shard_reroutes_without_losing_a_request_and_replays_bitwise() {
    let _g = lock();
    let baseline = run_script(ctx(), None, DataPlane::Inline);
    assert_eq!(
        baseline.accepted, baseline.answered,
        "no-failure run answers everything"
    );
    assert_eq!(
        baseline.shed, 0,
        "no-failure run sheds nothing at capacity 16"
    );

    let a = run_script(ctx(), Some((1, 4)), DataPlane::Inline);
    let b = run_script(ctx(), Some((1, 4)), DataPlane::Inline);
    assert_eq!(
        a.checksum, b.checksum,
        "chaos replay must be bitwise identical"
    );
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.live_shards, 3, "exactly one shard was killed");
    assert_eq!(
        a.accepted, a.answered,
        "every accepted request is answered despite the crash"
    );
    assert_ne!(
        a.checksum, baseline.checksum,
        "the kill visibly changed scheduling (ticks differ), yet answers stayed correct"
    );
}

/// Probabilistic MGA_FAULT scripts (crash, stall, misdirect) replay
/// bitwise and never lose an accepted request; the corrupt-swap site
/// rejects a candidate checkpoint with a typed error and serving state
/// is untouched. One test function: fault state is process-global.
#[test]
fn fault_injected_scenarios_replay_and_never_lose_requests() {
    let _g = lock();
    let c = ctx();

    // shard:crash — low probability so survivors remain; shard:stall —
    // freezes dispatch windows; route:misdirect — wrong-shard admissions
    // (correctness unaffected: every shard serves the full catalog).
    for spec in [
        "shard:crash:0.004:3",
        "shard:stall:0.05:11",
        "route:misdirect:0.3:13",
    ] {
        let run = |spec: &str| {
            fault::set_spec(spec).expect("valid spec");
            let r = run_script(c, None, DataPlane::Inline);
            fault::clear();
            r
        };
        let a = run(spec);
        let b = run(spec);
        assert_eq!(
            a.checksum, b.checksum,
            "{spec}: replay must be bitwise identical"
        );
        assert!(a.live_shards >= 1, "{spec}: scenario must leave a survivor");
        assert_eq!(
            a.accepted, a.answered,
            "{spec}: every accepted request is answered"
        );
    }

    // Misdirect must actually misdirect: redirects recorded and counted.
    let before = mga_obs::metrics::counter("serve.redirect_total").get();
    fault::set_spec("route:misdirect:1.0:7").expect("valid spec");
    let data = train_data(c);
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(4, 16));
    for i in 0..8usize {
        cluster
            .submit(request(&data, i as u64, i % c.ds.samples.len()), None)
            .expect("admitted despite misdirect");
    }
    fault::clear();
    assert!(
        mga_obs::metrics::counter("serve.redirect_total").get() >= before + 8,
        "every misdirected admission counts as a redirect"
    );
    let redirected = cluster
        .admission_flight()
        .iter()
        .filter(|r| r.disposition == Disposition::Redirected)
        .count();
    assert_eq!(redirected, 8, "admission flight records each misdirect");
    cluster.flush();
    cluster.drain(&mut Vec::new());
    assert_eq!(cluster.accepted_total(), cluster.answered_total());

    // swap:corrupt — a bit-flipped candidate checkpoint is a typed load
    // rejection; with the fault cleared the same file loads fine.
    let path = std::env::temp_dir().join(format!("mga_chaos_swap_{}.ckpt", std::process::id()));
    let aux_dim = data.aux[0].len();
    persist::save_checkpoint_to_file(&c.model_v2, 16, aux_dim, None, &path).expect("clean save");
    fault::set_spec("swap:corrupt:1.0:5").expect("valid spec");
    let fired_before = mga_obs::metrics::counter("fault.fired.swap").get();
    match load_candidate(&path) {
        Err(SwapError::Load(e)) => drop(e),
        Err(other) => panic!("corrupt candidate must be a load rejection, got {other}"),
        Ok(_) => panic!("corrupt candidate must not load"),
    }
    assert_eq!(
        mga_obs::metrics::counter("fault.fired.swap").get(),
        fired_before + 1,
        "the swap fault site fired"
    );
    fault::clear();
    let candidate = load_candidate(&path).expect("clean candidate loads");
    std::fs::remove_file(&path).ok();
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(2, 16));
    cluster
        .swap(0, &candidate)
        .expect("validated candidate installs");
    assert_eq!(
        cluster.engine(0).plan_epoch(),
        1,
        "swap installed on an idle shard"
    );
}

/// Hot swap on a loaded shard: queued requests finish on the old plan,
/// post-swap admissions on the new plan, the install lands exactly at
/// the drain boundary, and a rejected candidate (shape mismatch, bad
/// shard index) changes nothing.
#[test]
fn hot_swap_is_zero_drop_and_rolls_back_on_rejection() {
    let _g = lock();
    let c = ctx();
    let data = train_data(c);
    let n = c.ds.samples.len();
    // One shard: every kernel routes to it, so the swap boundary is the
    // whole queue.
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(1, 64));
    for i in 0..6usize {
        cluster
            .submit(request(&data, i as u64, i % n), None)
            .expect("admit");
    }
    assert_eq!(cluster.queue_depth(0), 6);

    // Rejected candidates first: wrong shape, wrong shard. No effect.
    match cluster.swap(0, &c.model_misfit) {
        Err(SwapError::Shape { field, .. }) => assert_eq!(field, "hidden"),
        other => panic!("misfit candidate must fail the shape gate, got {other:?}"),
    }
    match cluster.swap(9, &c.model_v2) {
        Err(SwapError::NoSuchShard {
            shard: 9,
            shards: 1,
        }) => {}
        other => panic!("bad shard index must be typed, got {other:?}"),
    }
    assert_eq!(
        cluster.engine(0).plan_epoch(),
        0,
        "rejections change nothing"
    );
    assert!(!cluster.engine(0).swap_pending());

    // Stage the real candidate: the 6 queued requests still belong to
    // the old plan; 4 more admissions arrive behind the boundary.
    cluster
        .swap(0, &c.model_v2)
        .expect("valid candidate stages");
    assert!(
        cluster.engine(0).swap_pending(),
        "install waits for the backlog"
    );
    for i in 6..10usize {
        cluster
            .submit(request(&data, i as u64, i % n), None)
            .expect("admit");
    }
    cluster.flush();
    let mut out = Vec::new();
    cluster.drain(&mut out);
    assert_eq!(out.len(), 10, "zero-drop: all 10 requests answered");
    assert_eq!(cluster.engine(0).plan_epoch(), 1, "exactly one install");
    assert!(!cluster.engine(0).swap_pending());
    out.sort_by_key(|r| r.id);
    for r in &out {
        let sample = (r.id as usize) % n;
        let (reference, plan) = if r.id < 6 {
            (&c.expected[sample], "old")
        } else {
            (&c.expected_v2[sample], "new")
        };
        assert_eq!(
            &r.classes, reference,
            "request {} must be served by the {} plan",
            r.id, plan
        );
    }
}

/// Overload and malformed requests shed at the door with typed errors,
/// matching dispositions in the admission flight ring, and the shed
/// counter grows. Accepted work is still fully answered.
#[test]
fn typed_sheds_cover_queue_full_deadline_shard_down_and_unknowns() {
    let _g = lock();
    let c = ctx();
    let data = train_data(c);
    let n = c.ds.samples.len();
    let shed_before = mga_obs::metrics::counter("serve.shed_total").get();

    // Queue-full: 2 shards × capacity 2 admits exactly 4 without a tick
    // (redirects soak the overflow), then typed QueueFull.
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(2, 2));
    let mut admitted = 0;
    let mut queue_full = 0;
    for i in 0..6usize {
        match cluster.submit(request(&data, i as u64, i % n), None) {
            Ok(_) => admitted += 1,
            Err(ServeError::QueueFull {
                depth, capacity, ..
            }) => {
                assert_eq!((depth, capacity), (2, 2));
                queue_full += 1;
            }
            Err(other) => panic!("expected QueueFull, got {other}"),
        }
    }
    assert_eq!((admitted, queue_full), (4, 2));
    cluster.flush();
    cluster.drain(&mut Vec::new());
    assert_eq!(cluster.accepted_total(), cluster.answered_total());

    // Deadline: an empty partial batch waits max_wait_ticks — a deadline
    // of "now" is unmeetable; "now + 10" is fine.
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(2, 16));
    match cluster.submit(request(&data, 0, 0), Some(cluster.now())) {
        Err(ServeError::DeadlineExceeded {
            deadline_tick: 0,
            estimated_tick,
        }) => assert!(estimated_tick > 0),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    cluster
        .submit(request(&data, 1, 0), Some(cluster.now() + 10))
        .expect("slack deadline admits");

    // Shard-down: a fully-dead cluster sheds with the owner named.
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(1, 16));
    cluster.kill_shard(0);
    assert_eq!(cluster.health(0), Health::Down);
    match cluster.submit(request(&data, 0, 0), None) {
        Err(ServeError::ShardDown { shard: 0 }) => {}
        other => panic!("expected ShardDown, got {other:?}"),
    }
    let sheds: Vec<Disposition> = cluster
        .admission_flight()
        .iter()
        .map(|r| r.disposition)
        .collect();
    assert_eq!(sheds, vec![Disposition::ShedShardDown]);

    // Unknown kernel (cluster and engine) and unknown task head.
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(2, 16));
    let bad = Request {
        id: 0,
        kernel: data.graphs.len(),
        aux: data.aux[0].clone(),
    };
    match cluster.submit(bad, None) {
        Err(ServeError::UnknownKernel { kernel, catalog }) => {
            assert_eq!(kernel, catalog);
        }
        other => panic!("expected UnknownKernel, got {other:?}"),
    }
    let nh = cluster.engine(0).plan().num_heads();
    let mut wrong = vec![0usize; nh + 1];
    match cluster
        .engine_mut(0)
        .serve_one(data.sample_kernel[0], &data.aux[0], &mut wrong)
    {
        Err(ServeError::UnknownTaskHead { head, num_heads }) => {
            assert_eq!((head, num_heads), (nh + 1, nh));
        }
        other => panic!("expected UnknownTaskHead, got {other:?}"),
    }
    match cluster
        .engine_mut(0)
        .serve_one_head(data.sample_kernel[0], &data.aux[0], nh)
    {
        Err(ServeError::UnknownTaskHead { head, num_heads }) => {
            assert_eq!((head, num_heads), (nh, nh));
        }
        other => panic!("expected UnknownTaskHead, got {other:?}"),
    }
    let class = cluster
        .engine_mut(0)
        .serve_one_head(data.sample_kernel[0], &data.aux[0], 0)
        .expect("valid head serves");
    assert_eq!(class, c.expected[0][0]);

    assert!(
        mga_obs::metrics::counter("serve.shed_total").get() >= shed_before + 4,
        "sheds are counted"
    );
}

/// Health machinery: stalls degrade (and stretch deadline estimates),
/// recovery returns to healthy, crashes stay down, and the per-shard
/// gauges publish.
#[test]
fn stalls_degrade_then_recover_and_gauges_publish() {
    let _g = lock();
    let c = ctx();
    let data = train_data(c);
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cluster_cfg(2, 16));
    cluster.stall_shard(0, 2);
    cluster.submit(request(&data, 0, 0), None).ok();
    cluster.tick();
    assert_eq!(
        cluster.health(0),
        Health::Degraded,
        "stalled shard degrades"
    );
    assert_eq!(cluster.health(1), Health::Healthy);
    cluster.tick();
    cluster.tick();
    assert_eq!(cluster.health(0), Health::Healthy, "stall expires");
    cluster.kill_shard(1);
    cluster.publish_metrics();
    assert_eq!(
        mga_obs::metrics::gauge("serve.shard.1.health").get(),
        2.0,
        "down shard publishes health=2"
    );
    assert_eq!(mga_obs::metrics::gauge("serve.cluster.shards").get(), 2.0);
    cluster.flush();
    cluster.drain(&mut Vec::new());
    assert_eq!(cluster.accepted_total(), cluster.answered_total());
}

/// The worker data plane serves bitwise-identical bytes to the inline
/// plane: same script, same kills, same armed fault specs — same
/// checksum over (id, classes, enqueued_tick, completed_tick) in drain
/// order. This is the central determinism claim of the persistent-worker
/// rework: run-ahead changes *when* work happens on the wall clock,
/// never *what* the engines compute on the logical clock.
#[test]
fn worker_plane_replays_inline_bitwise() {
    let _g = lock();
    let c = ctx();

    // Clean run and kill-at-tick runs.
    for kill in [None, Some((1usize, 4u64)), Some((0, 7))] {
        let inline = run_script(c, kill, DataPlane::Inline);
        let workers = run_script(c, kill, DataPlane::Workers);
        assert_eq!(
            inline.checksum, workers.checksum,
            "kill={kill:?}: worker plane diverged from inline"
        );
        assert_eq!(inline.accepted, workers.accepted);
        assert_eq!(inline.shed, workers.shed);
        assert_eq!(
            workers.accepted, workers.answered,
            "kill={kill:?}: worker plane lost an accepted request"
        );
    }

    // Armed fault scripts: crash, stall, misdirect. The fault draw
    // sequence is caller-side on both planes, so a spec replays to the
    // same (shard, tick) hits and the same served bytes.
    for spec in [
        "shard:crash:0.004:3",
        "shard:stall:0.05:11",
        "route:misdirect:0.3:13",
    ] {
        let run = |plane: DataPlane| {
            fault::set_spec(spec).expect("valid spec");
            let r = run_script(c, None, plane);
            fault::clear();
            r
        };
        let inline = run(DataPlane::Inline);
        let workers = run(DataPlane::Workers);
        assert_eq!(
            inline.checksum, workers.checksum,
            "{spec}: worker plane diverged from inline"
        );
        assert_eq!(inline.live_shards, workers.live_shards, "{spec}");
        assert_eq!(
            workers.accepted, workers.answered,
            "{spec}: worker plane lost an accepted request"
        );
    }
}

/// Hot swap under load on the worker plane: the staged plan installs at
/// the same batch boundary as inline (backlog on the old plan, new
/// admissions on the new), and the full response stream matches inline
/// bitwise.
#[test]
fn worker_plane_swap_under_load_matches_inline() {
    let _g = lock();
    let c = ctx();
    let data = train_data(c);
    let n = c.ds.samples.len();
    let run = |plane: DataPlane| -> (u64, usize) {
        let mut cfg = cluster_cfg(1, 64);
        cfg.data_plane = plane;
        let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cfg);
        for i in 0..6usize {
            cluster
                .submit(request(&data, i as u64, i % n), None)
                .expect("admit");
        }
        cluster.swap(0, &c.model_v2).expect("candidate stages");
        for i in 6..10usize {
            cluster
                .submit(request(&data, i as u64, i % n), None)
                .expect("admit");
        }
        // A few ticks of concurrent dispatch before the final flush, so
        // the worker actually runs ahead across the swap boundary.
        cluster.tick();
        cluster.tick();
        cluster.flush();
        let mut out = Vec::new();
        cluster.drain(&mut out);
        let mut checksum = 0xcbf2_9ce4_8422_2325u64;
        for r in &out {
            let sample = (r.id as usize) % n;
            let reference = if r.id < 6 {
                &c.expected[sample]
            } else {
                &c.expected_v2[sample]
            };
            assert_eq!(
                &r.classes, reference,
                "request {} crossed the swap boundary",
                r.id
            );
            fnv(&mut checksum, r.id);
            for &cl in &r.classes {
                fnv(&mut checksum, cl as u64);
            }
            fnv(&mut checksum, r.enqueued_tick);
            fnv(&mut checksum, r.completed_tick);
        }
        (checksum, out.len())
    };
    let (inline_sum, inline_n) = run(DataPlane::Inline);
    let (worker_sum, worker_n) = run(DataPlane::Workers);
    assert_eq!(inline_n, 10, "zero-drop on inline");
    assert_eq!(worker_n, 10, "zero-drop on workers");
    assert_eq!(
        inline_sum, worker_sum,
        "swap under load must serve identical bytes on both planes"
    );
}

/// Worker-plane plumbing preserves the engine's zero-alloc steady state:
/// aux rows ride the preallocated intake slab and responses move through
/// a fixed ring, so after warmup the shard engines allocate nothing.
/// Worker gauges publish sane values.
#[test]
fn worker_plane_steady_state_allocates_nothing_and_gauges_publish() {
    let _g = lock();
    let c = ctx();
    let data = train_data(c);
    let n = c.ds.samples.len();
    let mut cfg = cluster_cfg(2, 16);
    cfg.data_plane = DataPlane::Workers;
    let mut cluster = Cluster::new(&c.model, data.graphs, data.vectors, cfg);
    assert_eq!(cluster.data_plane(), DataPlane::Workers);
    // Warmup: every kernel through once so caches fill and scratch
    // high-water marks are reached.
    for pass in 0..3u64 {
        for i in 0..n {
            cluster
                .submit(request(&data, pass * n as u64 + i as u64, i), None)
                .expect("admit");
            if i % 4 == 3 {
                cluster.tick();
            }
        }
        cluster.flush();
        cluster.drain(&mut Vec::new());
    }
    // Steady state: nothing past the prewarm may touch the allocator
    // inside the engines.
    let baseline: Vec<u64> = (0..cluster.shards())
        .map(|s| cluster.engine(s).steady_alloc_bytes())
        .collect();
    for i in 0..2 * n {
        cluster
            .submit(request(&data, 1_000_000 + i as u64, i % n), None)
            .expect("admit");
        if i % 4 == 3 {
            cluster.tick();
        }
    }
    cluster.flush();
    cluster.drain(&mut Vec::new());
    for (s, &base) in baseline.iter().enumerate() {
        assert_eq!(
            cluster.engine(s).steady_alloc_bytes(),
            base,
            "shard {s} allocated scratch in the steady state on the worker plane"
        );
    }
    cluster.publish_metrics();
    assert_eq!(
        mga_obs::metrics::gauge("serve.cluster.data_plane").get(),
        1.0,
        "worker plane publishes its identity"
    );
    for s in 0..cluster.shards() {
        let name: &'static str = Box::leak(format!("serve.shard.{s}.worker.cmds").into_boxed_str());
        let cmds = mga_obs::metrics::gauge(name).get();
        assert!(cmds > 0.0, "shard {s} worker processed no commands");
    }
    assert_eq!(cluster.accepted_total(), cluster.answered_total());
}

/// Environment matrix: the chaos script's checksum is invariant across
/// `MGA_THREADS` (pool size is latched per process, so each combination
/// runs as a child process) and `MGA_SERVE_PLANE` steering an
/// `Auto`-configured cluster. One kill-at-tick scenario with a stall
/// fault armed — scheduling pressure from every direction, same bytes.
#[test]
fn chaos_checksum_invariant_across_threads_and_planes() {
    const DUMP: &str = "MGA_CLUSTER_CHAOS_DUMP";
    let compute = || {
        let _g = lock();
        fault::set_spec("shard:stall:0.05:11").expect("valid spec");
        let r = run_script(ctx(), Some((1, 4)), DataPlane::Auto);
        fault::clear();
        (r.checksum, r.accepted, r.shed)
    };
    if let Ok(path) = std::env::var(DUMP) {
        // Child: record and exit.
        let (sum, accepted, shed) = compute();
        std::fs::write(path, format!("{sum} {accepted} {shed}")).expect("write chaos dump");
        return;
    }
    let reference = compute();
    let exe = std::env::current_exe().expect("test binary path");
    for plane in ["inline", "workers"] {
        for threads in ["1", "4"] {
            let dump = std::env::temp_dir().join(format!(
                "mga_cluster_chaos_{}_{plane}_{threads}.txt",
                std::process::id()
            ));
            let status = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "chaos_checksum_invariant_across_threads_and_planes",
                    "--nocapture",
                ])
                .env("MGA_SERVE_PLANE", plane)
                .env("MGA_THREADS", threads)
                .env(DUMP, &dump)
                .status()
                .expect("spawn chaos child");
            assert!(
                status.success(),
                "MGA_SERVE_PLANE={plane} MGA_THREADS={threads} child run failed"
            );
            let text = std::fs::read_to_string(&dump).expect("read chaos dump");
            let _ = std::fs::remove_file(&dump);
            let parts: Vec<u64> = text
                .split_whitespace()
                .map(|p| p.parse().unwrap())
                .collect();
            assert_eq!(
                (parts[0], parts[1], parts[2]),
                reference,
                "MGA_SERVE_PLANE={plane} MGA_THREADS={threads} diverged bitwise from this process"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Consistent-hash stability: growing the ring from N to N+1 shards
    /// moves only ~K/(N+1) keys (within 2.2×), and every unmoved key
    /// keeps its exact shard — the property that makes scale-ups cheap
    /// for the embedding caches.
    #[test]
    fn ring_growth_moves_about_k_over_n_keys(
        shards in 1usize..8,
        keys in 128usize..768,
        salt in 0usize..1000,
    ) {
        let a = Router::new(shards, 64);
        let b = Router::new(shards + 1, 64);
        let moved = (0..keys)
            .filter(|&k| a.route(k + salt) != b.route(k + salt))
            .count();
        let expected = keys / (shards + 1);
        prop_assert!(
            moved <= (expected * 22).div_ceil(10) + 8,
            "adding shard {} moved {moved} of {keys} keys (expected ~{expected})",
            shards + 1
        );
        prop_assert!(moved > 0, "a new shard must take over some keys");
        // Removal is the mirror image: shrinking back moves the same keys.
        let back = (0..keys)
            .filter(|&k| b.route(k + salt) != a.route(k + salt))
            .count();
        prop_assert_eq!(moved, back);
    }
}
