//! Serving observability contracts: telemetry must observe without
//! perturbing. These tests hold the flight recorder, latency histograms
//! and drift monitors to the three promises `DESIGN.md` makes — bitwise
//! neutrality (no served byte changes with telemetry on/off), zero
//! steady-state allocation with the recorder always on, and
//! deterministic drift triggers (exact tick, replayable).

use std::sync::{Mutex, MutexGuard, OnceLock};

use mga_core::cv::kfold_by_group;
use mga_core::dataset::OmpDataset;
use mga_core::model::{FusionModel, Modality, ModelConfig, TrainData};
use mga_core::omp::OmpTask;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_obs::drift::{DriftConfig, DriftKind};
use mga_obs::metrics;
use mga_serve::{Engine, FlightRecorder, Request, Response, ServeConfig};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Ctx {
    ds: OmpDataset,
    task: OmpTask,
    model: FusionModel,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
        let cpu = CpuSpec::comet_lake();
        let sizes = vec![1e5, 1e7];
        let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 3);
        let task = OmpTask::new(&ds);
        let cfg = ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 10,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 10,
                ..DaeConfig::default()
            },
            hidden: 20,
            epochs: 12,
            lr: 0.02,
            seed: 11,
        };
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());
        Ctx { ds, task, model }
    })
}

fn train_data(c: &'static Ctx) -> TrainData<'static> {
    c.task.train_data(&c.ds)
}

/// Engine telemetry writes process-global metrics (gauges, histogram
/// counts); tests that assert on those must not interleave with other
/// engine-running tests in this binary.
fn engine_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn request(data: &TrainData<'_>, i: usize) -> Request {
    Request {
        id: i as u64,
        kernel: data.sample_kernel[i],
        aux: data.aux[i].clone(),
    }
}

/// FNV-1a over every observable byte of a response stream.
fn checksum(responses: &[Response]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in responses {
        eat(r.id);
        eat(r.enqueued_tick);
        eat(r.completed_tick);
        for &c in &r.classes {
            eat(c as u64);
        }
    }
    h
}

/// Serve a seeded submit/tick script and return the responses in id
/// order.
fn run_script(engine: &mut Engine<'_>, data: &TrainData<'_>, seed: u64) -> Vec<Response> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.sample_kernel.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        engine.submit(request(data, i)).expect("admit");
        if rng.gen_bool(0.4) {
            engine.tick();
        }
        engine.drain(&mut out);
    }
    for _ in 0..8 {
        engine.tick();
    }
    engine.flush();
    engine.drain(&mut out);
    out.sort_by_key(|r| r.id);
    out
}

/// Telemetry on vs off: identical batches, identical ticks, identical
/// classes — the recorder, histograms and drift monitors observe the
/// serving path without perturbing a single byte of it.
#[test]
fn telemetry_is_bitwise_neutral() {
    let _g = engine_lock();
    let c = ctx();
    let data = train_data(c);
    let mut sums = Vec::new();
    for telemetry in [true, false] {
        let cfg = ServeConfig {
            max_batch: 5,
            max_wait_ticks: 2,
            cache_capacity: 4, // force evictions/misses under telemetry too
            telemetry,
            ..ServeConfig::default()
        };
        let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
        let responses = run_script(&mut engine, &data, 0xabc);
        assert_eq!(responses.len(), data.sample_kernel.len());
        sums.push(checksum(&responses));
        // The fast path too: same classes either mode.
        let nh = engine.plan().num_heads();
        let mut cls = vec![0usize; nh];
        let mut fast = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..data.sample_kernel.len() {
            engine
                .serve_one(data.sample_kernel[i], &data.aux[i], &mut cls)
                .expect("serve");
            for &cl in &cls {
                fast ^= cl as u64;
                fast = fast.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        sums.push(fast);
    }
    assert_eq!(
        sums[0], sums[2],
        "batched responses must be bitwise identical with telemetry on/off"
    );
    assert_eq!(
        sums[1], sums[3],
        "serve_one classes must be bitwise identical with telemetry on/off"
    );
}

/// The flight recorder captures every served request — ids, batch
/// sizes, per-head classes agreeing with the responses — while the
/// steady state still allocates nothing.
#[test]
fn flight_records_match_responses_and_allocate_nothing() {
    let _g = engine_lock();
    let c = ctx();
    let data = train_data(c);
    let n = data.sample_kernel.len();
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_ticks: 1,
        flight_capacity: 2 * n, // big enough: nothing overwritten
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
    let e2e_before = metrics::log_histogram("serve.lat.e2e").snapshot();
    let responses = run_script(&mut engine, &data, 7);
    assert_eq!(
        engine.steady_alloc_bytes(),
        0,
        "recorder + histograms must not break the zero-alloc steady state"
    );
    assert_eq!(engine.flight().total(), n as u64);
    assert_eq!(engine.flight().len(), n);
    let nh = engine.plan().num_heads();
    for rec in engine.flight().iter() {
        let resp = &responses[rec.id as usize];
        assert_eq!(rec.num_heads as usize, nh);
        assert!(rec.batch >= 1 && rec.batch as usize <= 4);
        assert!(rec.served_tick >= rec.submit_tick);
        assert_eq!(
            rec.queue_ticks as u64,
            rec.served_tick - rec.submit_tick,
            "queue ticks must be the submit→served gap"
        );
        assert_eq!(rec.submit_tick, resp.enqueued_tick);
        assert_eq!(rec.served_tick, resp.completed_tick);
        let classes: Vec<usize> = rec.classes[..nh].iter().map(|&c| c as usize).collect();
        assert_eq!(classes, resp.classes, "record {} classes", rec.id);
        assert!((0.5..=1.0).contains(&rec.confidence));
    }
    // The engine-side e2e histogram saw exactly the served requests.
    let e2e = metrics::log_histogram("serve.lat.e2e")
        .snapshot()
        .diff(&e2e_before);
    assert_eq!(e2e.count, n as u64);
    assert!(e2e.percentile(50.0) > 0, "latencies were actually measured");
}

/// The queue-depth gauge tracks submissions and drains on flush — the
/// signal a load-shedding layer would watch.
#[test]
fn queue_depth_gauge_follows_the_queue() {
    let _g = engine_lock();
    let c = ctx();
    let data = train_data(c);
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, ServeConfig::default());
    let read = || {
        metrics::snapshot()
            .into_iter()
            .find(|(n, _)| *n == "serve.queue_depth")
            .and_then(|(_, v)| match v {
                metrics::MetricValue::Gauge(g) => Some(g),
                _ => None,
            })
            .expect("gauge registered")
    };
    for i in 0..3 {
        engine.submit(request(&data, i)).expect("admit");
        assert_eq!(read(), (i + 1) as f64, "gauge updates on submit");
    }
    engine.flush();
    assert_eq!(read(), 0.0, "gauge drains on flush");
    assert_eq!(engine.queue_depth(), 0);
}

/// A scripted new-kernel storm fires the drift detector at an exactly
/// predictable tick: one request per tick, every kernel fresh, window of
/// 2 ticks, warmup of 1 window → the EWMA breaches on the boundary of
/// window 2, tick 4. Replaying the script reproduces the event
/// tick-for-tick.
#[test]
fn drift_replay_fires_at_exact_tick() {
    let _g = engine_lock();
    let c = ctx();
    let data = train_data(c);
    let kernels = data.graphs.len();
    assert!(kernels >= 6, "need distinct kernels for the storm");
    let run = || {
        let cfg = ServeConfig {
            max_batch: 8,
            max_wait_ticks: 1,
            drift: DriftConfig {
                window_ticks: 2,
                alpha: 1.0,
                warmup_windows: 1,
                max_new_kernel_rate: 0.5,
                max_cache_miss_rate: 2.0, // disabled: rates never exceed 2
                min_confidence: 0.0,      // disabled
            },
            ..ServeConfig::default()
        };
        let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
        // One brand-new kernel per tick: sample index i picked so its
        // kernel id is i (catalog order), guaranteeing first-sight.
        for k in 0..6usize.min(kernels) {
            let i = data.sample_kernel.iter().position(|&sk| sk == k).unwrap();
            engine.submit(request(&data, i)).expect("admit");
            engine.tick();
        }
        engine.drift_events().to_vec()
    };
    let events = run();
    assert_eq!(events.len(), 1, "exactly one trigger: {events:?}");
    assert_eq!(events[0].kind, DriftKind::NewKernelRate);
    assert_eq!(events[0].tick, 4, "window 2 boundary (armed) is tick 4");
    assert!((events[0].value - 1.0).abs() < 1e-12, "every request new");
    // Determinism: the same script fires the same event at the same
    // tick.
    let replay = run();
    assert_eq!(replay.len(), 1);
    assert_eq!(replay[0].tick, events[0].tick);
    assert_eq!(replay[0].value, events[0].value);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring wraparound: after any push sequence the recorder holds the
    /// last `min(n, capacity)` records, oldest first, and `total` counts
    /// everything ever pushed.
    #[test]
    fn flight_ring_wraparound(cap in 0usize..33, n in 0usize..200) {
        let mut fr = FlightRecorder::new(cap);
        for id in 0..n as u64 {
            fr.push(mga_serve::FlightRecord { id, ..Default::default() });
        }
        prop_assert_eq!(fr.total(), n as u64);
        prop_assert_eq!(fr.len(), n.min(cap));
        let ids: Vec<u64> = fr.iter().map(|r| r.id).collect();
        let expect: Vec<u64> =
            (n.saturating_sub(n.min(cap)) as u64..n as u64).collect();
        prop_assert_eq!(ids, expect);
    }
}
