//! Accuracy parity of the quantized inference plans.
//!
//! Quantized plans (bf16 / int8 weights) are approximate by
//! construction, so their contract is *statistical*, not bitwise: on the
//! CV folds of a real trained model they must (a) agree with the f32
//! plan's argmax on every head of every sample — the same gate
//! `serve_bench` enforces before a quantized record ships — and (b) keep
//! the softmax probability error of the final head and the trunk hidden
//! activations within a small bound, so near-ties are the only place a
//! disagreement could ever come from.

use std::sync::OnceLock;

use mga_core::cv::kfold_by_group;
use mga_core::dataset::OmpDataset;
use mga_core::model::{FusionModel, Modality, ModelConfig, TrainData};
use mga_core::omp::OmpTask;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_serve::{InferencePlan, Precision};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;

struct Ctx {
    ds: OmpDataset,
    task: OmpTask,
    model: FusionModel,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
        let cpu = CpuSpec::comet_lake();
        let sizes = vec![1e5, 1e7, 3e8];
        let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 3);
        let task = OmpTask::new(&ds);
        let cfg = ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 15,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 20,
            lr: 0.02,
            seed: 5,
        };
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());
        Ctx { ds, task, model }
    })
}

fn softmax(row: &[f32]) -> Vec<f32> {
    let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = row.iter().map(|&v| (v - mx).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Run every dataset sample through a plan compiled at `precision` and
/// the f32 reference, returning the worst-case head disagreement count,
/// final-head softmax probability error and trunk activation error.
fn compare(precision: Precision) -> (usize, f32, f32) {
    let c = ctx();
    let data: TrainData<'_> = c.task.train_data(&c.ds);
    let p32 = InferencePlan::compile_with(&c.model, Precision::F32);
    let pq = InferencePlan::compile_with(&c.model, precision);
    assert_eq!(pq.precision(), precision);
    assert!(
        pq.weight_bytes() < p32.weight_bytes(),
        "quantized plan should pack weights smaller"
    );

    let (in_dim, sd, nh) = (p32.in_dim(), p32.static_dim(), p32.num_heads());
    let mut x = vec![0.0f32; in_dim];
    let mut h32 = vec![0.0f32; p32.hidden()];
    let mut hq = vec![0.0f32; p32.hidden()];
    let mut lg32 = vec![0.0f32; p32.max_classes()];
    let mut lgq = vec![0.0f32; p32.max_classes()];
    let mut cls32 = vec![0usize; nh];
    let mut clsq = vec![0usize; nh];
    let last_nc = *p32.head_sizes().last().expect("at least one head");

    let (mut disagreements, mut max_prob_err, mut max_hidden_err) = (0usize, 0.0f32, 0.0f32);
    for i in 0..c.ds.samples.len() {
        let kernel = data.sample_kernel[i];
        let emb = c
            .model
            .static_embedding(&data.graphs[kernel], &data.vectors[kernel]);
        x[..sd].copy_from_slice(&emb);
        p32.scale_aux_into(&mut x[sd..], &data.aux[i]);
        p32.forward_into(&x, 1, &mut h32, &mut lg32, &mut cls32);
        pq.forward_into(&x, 1, &mut hq, &mut lgq, &mut clsq);
        disagreements += cls32.iter().zip(&clsq).filter(|(a, b)| a != b).count();
        // The logits scratch holds the *last* head after forward_into.
        for (p, q) in softmax(&lg32[..last_nc])
            .iter()
            .zip(&softmax(&lgq[..last_nc]))
        {
            max_prob_err = max_prob_err.max((p - q).abs());
        }
        for (a, b) in h32.iter().zip(&hq) {
            max_hidden_err = max_hidden_err.max((a - b).abs());
        }
    }
    (disagreements, max_prob_err, max_hidden_err)
}

#[test]
fn bf16_plan_matches_f32_argmax_with_bounded_probability_error() {
    let (disagreements, prob_err, hidden_err) = compare(Precision::Bf16);
    assert_eq!(
        disagreements, 0,
        "bf16 plan flipped an argmax the parity gate must catch"
    );
    assert!(prob_err < 0.02, "bf16 softmax error {prob_err} too large");
    assert!(hidden_err < 0.05, "bf16 trunk error {hidden_err} too large");
}

#[test]
fn int8_plan_matches_f32_argmax_with_bounded_probability_error() {
    let (disagreements, prob_err, hidden_err) = compare(Precision::Int8);
    assert_eq!(
        disagreements, 0,
        "int8 plan flipped an argmax the parity gate must catch"
    );
    assert!(prob_err < 0.08, "int8 softmax error {prob_err} too large");
    assert!(hidden_err < 0.15, "int8 trunk error {hidden_err} too large");
}
