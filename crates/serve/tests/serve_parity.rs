//! Serving parity: the engine's predictions must be **bitwise identical**
//! to `FusionModel::predict`, for any request ordering, micro-batch
//! size, wait policy, cache state (cold / warmed / evicting) and thread
//! count. The guarantees are structural — shared matmul/bias kernels,
//! row-stable batching, one argmax comparator — and these tests pin
//! them end to end on a real trained model.

use std::sync::OnceLock;

use mga_core::cv::kfold_by_group;
use mga_core::dataset::OmpDataset;
use mga_core::model::{FusionModel, Modality, ModelConfig, TrainData};
use mga_core::omp::OmpTask;
use mga_dae::DaeConfig;
use mga_gnn::GnnConfig;
use mga_kernels::catalog::openmp_thread_dataset;
use mga_serve::{Engine, Request, Response, ServeConfig};
use mga_sim::cpu::CpuSpec;
use mga_sim::openmp::thread_space;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Ctx {
    ds: OmpDataset,
    task: OmpTask,
    model: FusionModel,
    /// `expected[i]` = per-head classes of `model.predict(&data, &[i])` —
    /// the sequential single-sample reference every serving path must hit.
    expected: Vec<Vec<usize>>,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let specs: Vec<_> = openmp_thread_dataset().into_iter().step_by(4).collect();
        let cpu = CpuSpec::comet_lake();
        let sizes = vec![1e5, 1e7, 3e8];
        let ds = OmpDataset::build(specs, sizes, thread_space(&cpu), cpu, 16, 3);
        let task = OmpTask::new(&ds);
        let cfg = ModelConfig {
            modality: Modality::Multimodal,
            use_aux: true,
            gnn: GnnConfig {
                dim: 12,
                layers: 1,
                update: mga_gnn::UpdateKind::Gru,
                homogeneous: false,
            },
            dae: DaeConfig {
                input_dim: 16,
                hidden_dim: 10,
                code_dim: 5,
                epochs: 15,
                ..DaeConfig::default()
            },
            hidden: 24,
            epochs: 20,
            lr: 0.02,
            seed: 5,
        };
        let data = task.train_data(&ds);
        let folds = kfold_by_group(&ds.groups(), 4, 2);
        let model = FusionModel::fit(cfg, &data, &folds[0].train, &task.codec.head_sizes());
        let expected: Vec<Vec<usize>> = (0..ds.samples.len())
            .map(|i| model.predict(&data, &[i]).iter().map(|p| p[0]).collect())
            .collect();
        Ctx {
            ds,
            task,
            model,
            expected,
        }
    })
}

fn train_data(c: &'static Ctx) -> TrainData<'static> {
    c.task.train_data(&c.ds)
}

fn request(data: &TrainData<'_>, i: usize) -> Request {
    Request {
        id: i as u64,
        kernel: data.sample_kernel[i],
        aux: data.aux[i].clone(),
    }
}

/// Run `idx` through the engine with a submit/tick interleave driven by
/// `rng`, returning responses sorted back into `idx` order by id.
fn serve_all(
    engine: &mut Engine<'_>,
    data: &TrainData<'_>,
    idx: &[usize],
    rng: &mut StdRng,
) -> Vec<Response> {
    let mut out = Vec::with_capacity(idx.len());
    for &i in idx {
        engine.submit(request(data, i)).expect("admit");
        if rng.gen_bool(0.4) {
            engine.tick();
        }
        engine.drain(&mut out);
    }
    for _ in 0..8 {
        engine.tick();
    }
    engine.flush();
    engine.drain(&mut out);
    out.sort_by_key(|r| r.id);
    out
}

/// Cold engine, single-request fast path: every sample's classes match
/// the sequential predict reference.
#[test]
fn serve_one_matches_sequential_predict() {
    let c = ctx();
    let data = train_data(c);
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, ServeConfig::default());
    let nh = engine.plan().num_heads();
    let mut cls = vec![0usize; nh];
    for i in 0..c.ds.samples.len() {
        engine
            .serve_one(data.sample_kernel[i], &data.aux[i], &mut cls)
            .expect("serve");
        assert_eq!(cls, c.expected[i], "sample {i} diverged on serve_one");
    }
}

/// Cold engine, batched loop: micro-batched requests match the
/// sequential reference, every request is answered exactly once, and
/// batching actually happened.
#[test]
fn batched_engine_matches_sequential_predict() {
    let c = ctx();
    let data = train_data(c);
    let cfg = ServeConfig {
        max_batch: 5,
        max_wait_ticks: 2,
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
    let idx: Vec<usize> = (0..c.ds.samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let responses = serve_all(&mut engine, &data, &idx, &mut rng);
    assert_eq!(responses.len(), idx.len(), "every request answered once");
    for (r, &i) in responses.iter().zip(&idx) {
        assert_eq!(r.id, i as u64);
        assert_eq!(r.classes, c.expected[i], "sample {i} diverged when batched");
        assert!(r.completed_tick >= r.enqueued_tick);
    }
}

/// Warming from a training `PreparedBatch` must not change a single
/// prediction, and warmed kernels must be served from cache.
#[test]
fn warm_cache_is_bitwise_identical_to_cold() {
    let c = ctx();
    let data = train_data(c);
    let idx: Vec<usize> = (0..c.ds.samples.len()).collect();
    let prep = c.model.prepare(&data, &idx);

    let mut warm = Engine::new(&c.model, data.graphs, data.vectors, ServeConfig::default());
    let inserted = warm.warm(&prep);
    assert_eq!(
        inserted,
        prep.kernels().len(),
        "all distinct kernels should warm"
    );

    let nh = warm.plan().num_heads();
    let mut cls = vec![0usize; nh];
    for &i in &idx {
        warm.serve_one(data.sample_kernel[i], &data.aux[i], &mut cls)
            .expect("serve");
        assert_eq!(cls, c.expected[i], "sample {i} diverged on warm cache");
    }
    let (hits, misses, _) = warm.cache().stats();
    assert_eq!(hits, idx.len() as u64, "warmed kernels must all hit");
    assert_eq!(misses, 0, "no slow-path compute after a full warm");
}

/// A kernel absent from the warmed set (the paper's unseen-kernel
/// scenario) takes the slow path once — computing and caching its
/// embedding — and still predicts identically.
#[test]
fn unseen_kernel_slow_path_matches_and_caches() {
    let c = ctx();
    let data = train_data(c);
    // Warm from samples of every kernel except the held-out one.
    let held_out_kernel = data.sample_kernel[0];
    let warm_idx: Vec<usize> = (0..c.ds.samples.len())
        .filter(|&i| data.sample_kernel[i] != held_out_kernel)
        .collect();
    assert!(!warm_idx.is_empty());
    let prep = c.model.prepare(&data, &warm_idx);

    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, ServeConfig::default());
    engine.warm(&prep);
    assert!(engine.cache().peek(held_out_kernel).is_none());

    let nh = engine.plan().num_heads();
    let mut cls = vec![0usize; nh];
    engine
        .serve_one(held_out_kernel, &data.aux[0], &mut cls)
        .expect("serve");
    assert_eq!(cls, c.expected[0], "unseen kernel diverged on slow path");
    let (_, misses, _) = engine.cache().stats();
    assert_eq!(misses, 1, "exactly one slow-path compute");

    engine
        .serve_one(held_out_kernel, &data.aux[0], &mut cls)
        .expect("serve");
    assert_eq!(cls, c.expected[0]);
    let (hits, misses, _) = engine.cache().stats();
    assert_eq!((hits, misses), (1, 1), "second request must hit the cache");
}

/// A cache far smaller than the kernel set thrashes (every lookup
/// recomputes under LRU) yet stays bitwise-correct.
#[test]
fn evicting_cache_stays_correct() {
    let c = ctx();
    let data = train_data(c);
    let cfg = ServeConfig {
        max_batch: 3,
        max_wait_ticks: 1,
        cache_capacity: 2,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
    let idx: Vec<usize> = (0..c.ds.samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(11);
    let responses = serve_all(&mut engine, &data, &idx, &mut rng);
    for (r, &i) in responses.iter().zip(&idx) {
        assert_eq!(
            r.classes, c.expected[i],
            "sample {i} diverged under eviction"
        );
    }
    let (_, _, evictions) = engine.cache().stats();
    assert!(evictions > 0, "a 2-slot cache over many kernels must evict");
}

/// The logical-tick batching policy is deterministic: a full batch goes
/// out on the next tick, a partial batch waits exactly `max_wait_ticks`.
#[test]
fn batching_policy_is_tick_deterministic() {
    let c = ctx();
    let data = train_data(c);
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_ticks: 3,
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);

    // Partial batch: 2 requests at tick 0 wait until tick 3.
    engine.submit(request(&data, 0)).expect("admit");
    engine.submit(request(&data, 1)).expect("admit");
    assert_eq!(engine.tick(), 0, "tick 1: still waiting");
    assert_eq!(engine.tick(), 0, "tick 2: still waiting");
    assert_eq!(engine.tick(), 2, "tick 3: wait policy fires");
    assert_eq!(engine.queue_depth(), 0);

    // Full batch: 4 requests dispatch on the very next tick.
    for i in 0..4 {
        engine.submit(request(&data, i)).expect("admit");
    }
    assert_eq!(engine.tick(), 4, "full batch dispatches immediately");
}

/// After the first batch warms the scratch size classes, serving
/// allocates nothing: the arena recycles every buffer and recycled
/// responses cover the output side.
#[test]
fn steady_state_serving_allocates_zero_arena_bytes() {
    let c = ctx();
    let data = train_data(c);
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_ticks: 1,
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
    let idx: Vec<usize> = (0..c.ds.samples.len()).collect();
    let prep = c.model.prepare(&data, &idx);
    engine.warm(&prep);

    let mut out = Vec::new();
    for round in 0..6 {
        for i in 0..4usize {
            engine
                .submit(request(&data, (round * 4 + i) % idx.len()))
                .expect("admit");
        }
        engine.tick();
        engine.flush();
        engine.drain(&mut out);
        for r in out.drain(..) {
            engine.recycle(r);
        }
    }
    assert_eq!(
        engine.steady_alloc_bytes(),
        0,
        "steady-state serving must not touch the allocator for scratch"
    );
    assert!(
        engine.arena_reuse() > 0,
        "scratch must cycle through the arena"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any request ordering, any micro-batch size, any wait policy, warm
    /// or cold cache: responses are bitwise-identical to the sequential
    /// per-sample predict.
    #[test]
    fn randomized_serving_matches_predict(
        seed in 0u64..1000,
        max_batch in 1usize..7,
        max_wait_ticks in 0u64..4,
        warm_sel in 0u64..2,
    ) {
        let warm_first = warm_sel == 1;
        let c = ctx();
        let data = train_data(c);
        let cfg = ServeConfig { max_batch, max_wait_ticks, cache_capacity: 8, ..ServeConfig::default() };
        let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..c.ds.samples.len()).collect();
        // Fisher–Yates with the seeded rng: a deterministic shuffle.
        for j in (1..idx.len()).rev() {
            idx.swap(j, rng.gen_range(0..=j));
        }
        idx.truncate(24.min(idx.len()));

        if warm_first {
            let prep = c.model.prepare(&data, &idx);
            engine.warm(&prep);
        }
        let responses = serve_all(&mut engine, &data, &idx, &mut rng);
        prop_assert_eq!(responses.len(), idx.len());
        for r in &responses {
            let i = r.id as usize;
            prop_assert_eq!(
                &r.classes,
                &c.expected[i],
                "sample {} diverged (batch {}, wait {}, warm {})",
                i, max_batch, max_wait_ticks, warm_first
            );
        }
    }
}

/// Serving checksum battery for the cross-thread-count parity check:
/// warm + cold engines over shuffled requests, folded into FNV sums.
fn battery() -> Vec<u64> {
    let c = ctx();
    let data = train_data(c);
    let mut sums = Vec::new();
    let mut push = |classes: &[usize]| {
        let mut h = 0xcbf29ce484222325u64;
        for &x in classes {
            h = (h ^ (x as u64)).wrapping_mul(0x100000001b3);
        }
        sums.push(h);
    };
    for (seed, warm) in [(1u64, false), (2, true)] {
        let cfg = ServeConfig {
            max_batch: 5,
            max_wait_ticks: 2,
            cache_capacity: 16,
            ..ServeConfig::default()
        };
        let mut engine = Engine::new(&c.model, data.graphs, data.vectors, cfg);
        let idx: Vec<usize> = (0..c.ds.samples.len()).collect();
        if warm {
            let prep = c.model.prepare(&data, &idx);
            engine.warm(&prep);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let responses = serve_all(&mut engine, &data, &idx, &mut rng);
        for r in &responses {
            push(&r.classes);
        }
    }
    // The reference itself is part of the checksum, so the training
    // forward pass is covered by the same cross-thread comparison.
    for e in &c.expected {
        push(e);
    }
    sums
}

/// The whole serving stack is bitwise-invariant across thread counts:
/// re-run the battery in child processes under `MGA_THREADS=1` and `=4`
/// (the pool reads the variable once per process) and compare checksums.
#[test]
fn serving_is_bitwise_identical_across_thread_counts() {
    const DUMP: &str = "MGA_SERVE_PARITY_DUMP";
    let sums = battery();
    if let Ok(path) = std::env::var(DUMP) {
        let text: Vec<String> = sums.iter().map(|s| s.to_string()).collect();
        std::fs::write(path, text.join("\n")).expect("write serve parity dump");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "4"] {
        let dump = std::env::temp_dir().join(format!(
            "mga_serve_parity_{}_{threads}.txt",
            std::process::id()
        ));
        let status = std::process::Command::new(&exe)
            .args([
                "--exact",
                "serving_is_bitwise_identical_across_thread_counts",
                "--nocapture",
            ])
            .env("MGA_THREADS", threads)
            .env(DUMP, &dump)
            .status()
            .expect("spawn thread-count child");
        assert!(status.success(), "MGA_THREADS={threads} child run failed");
        let text = std::fs::read_to_string(&dump).expect("read serve parity dump");
        let _ = std::fs::remove_file(&dump);
        let child_sums: Vec<u64> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(
            sums, child_sums,
            "default and MGA_THREADS={threads} serving runs disagree bitwise"
        );
    }
}
