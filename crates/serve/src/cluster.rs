//! The sharded serving cluster: N engines, one door.
//!
//! A single [`Engine`] saturates around one core's worth of trunk
//! matmuls; production traffic needs more, and it needs the overload
//! story a lone queue cannot tell. The cluster wraps `shards`
//! independent engines — each with its own [`crate::InferencePlan`],
//! [`crate::EmbeddingCache`] and bounded intake queue — behind a
//! consistent-hash [`Router`] keyed by kernel id, with three promises:
//!
//! 1. **Every accepted request is answered.** Admission
//!    ([`crate::admission`]) is the only gate: once `submit` returns
//!    `Ok`, the request is served — if its shard crashes first, the
//!    evacuated queue reroutes to surviving shards (overflowing into a
//!    retry buffer when they're momentarily full) rather than dropping.
//! 2. **Every refusal is typed.** Overload sheds at the door with a
//!    [`ServeError`] naming the reason (queue full, deadline unmeetable,
//!    shard down) — never a panic, never a silent drop. Sheds and
//!    redirects land in the cluster's own admission [`FlightRecorder`]
//!    with a [`Disposition`] tag, alongside `serve.shed_total` /
//!    `serve.redirect_total` / `serve.reroute_total` counters.
//! 3. **Everything replays.** Routing, admission, health transitions,
//!    swap install points and fault injection all run on the cluster's
//!    logical tick with zero wall-clock or RNG reads — the chaos suite
//!    (`tests/cluster_chaos.rs`) replays whole failure scenarios and
//!    checksums bitwise-identical responses.
//!
//! Shard dispatch runs on one of two data planes ([`DataPlane`]):
//!
//! * **Inline** — the caller thread drives every engine itself (serial,
//!   or fork-join on the worker pool per tick). Zero threads, zero
//!   rings; right for single-core boxes and small clusters.
//! * **Workers** — one *persistent* thread per shard, fed by lock-free
//!   SPSC command rings (`crate::worker`): submits, ticks and flushes
//!   stream to each shard, responses stream back, and shards run ahead
//!   independently between synchronization epochs (drain, evacuation,
//!   swap, metrics) instead of barriering every tick. Admission reads a
//!   caller-side queue mirror driven by the same
//!   [`crate::engine::dispatch_due`] policy the engines run, so every
//!   decision — and every served byte — is bitwise identical to the
//!   inline plane. `serve_bench` records the 1→8 scaling curve.
//!
//! `DataPlane::Auto` (the default) picks workers when both the machine
//! (pool threads > 1) and the cluster (shards > 1) can use them; the
//! `MGA_SERVE_PLANE` environment variable (`inline` / `workers`)
//! overrides the auto choice without touching code.
//!
//! Failure machinery rides the existing `MGA_FAULT` sites: `shard:crash`
//! kills a shard at a tick boundary (queue evacuated, health `Down`),
//! `shard:stall` freezes its dispatch for [`ClusterConfig::stall_ticks`]
//! (health `Degraded`, admission estimates stretch accordingly),
//! `route:misdirect` sends an admission to the wrong shard (recorded as
//! a redirect — correctness is unaffected because every shard serves
//! the full catalog), and `swap:corrupt` flips a bit in a hot-swap
//! candidate checkpoint so [`load_candidate`] must reject it.
//!
//! Hot swap is zero-drop by construction: [`Cluster::swap`] validates a
//! candidate (shape gate, finite-probe health check) *before* staging it
//! on the shard's engine; the engine then drains its pre-swap backlog on
//! the old plan and installs the new one at the exact batch boundary
//! ([`Engine::swap_plan`]). A candidate that fails to load or probe is a
//! typed [`SwapError`] and the shard's serving state is untouched —
//! rollback is the absence of any change.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::Ordering;

use mga_core::model::FusionModel;
use mga_core::persist::{self, PersistError};
use mga_graph::ProGraph;
use mga_obs::fault::{self, Kind, Site};
use mga_obs::metrics::{self, Counter, Gauge};

use crate::admission::{self, Decision, ShardView, ShedReason};
use crate::engine::{Engine, Request, Response, ServeConfig};
use crate::error::{ServeError, SwapError};
use crate::flight::{Disposition, FlightRecord, FlightRecorder};
use crate::plan::InferencePlan;
use crate::router::{Router, DEFAULT_VNODES};
use crate::worker::ShardChannel;

/// Shard health, as admission sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Healthy,
    /// Still serving, but impaired: mid-stall, or the shard's drift
    /// monitor fired on the last tick. Admission still routes here
    /// (deadline estimates absorb the stall); operators get the signal.
    Degraded,
    /// Crashed. Takes no traffic; its keys fail over on the ring.
    Down,
}

impl Health {
    /// Stable lower-snake tag for dashboards.
    pub fn tag(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Down => "down",
        }
    }

    fn gauge_value(&self) -> f64 {
        match self {
            Health::Healthy => 0.0,
            Health::Degraded => 1.0,
            Health::Down => 2.0,
        }
    }
}

/// Which data plane drives shard dispatch (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlane {
    /// Pick at construction: [`DataPlane::Workers`] when the pool has
    /// more than one thread *and* the cluster more than one shard,
    /// otherwise [`DataPlane::Inline`]. The `MGA_SERVE_PLANE`
    /// environment variable (`inline` / `workers`) overrides the auto
    /// choice; an explicit config setting beats both.
    Auto,
    /// Caller-thread dispatch (fork-join on the pool per tick).
    Inline,
    /// Persistent per-shard worker threads fed by SPSC command rings.
    Workers,
}

/// Cluster shape and per-shard policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of engine shards.
    pub shards: usize,
    /// Virtual ring points per shard (routing granularity).
    pub vnodes: usize,
    /// Per-shard bounded intake depth — the backpressure knob. Unlike a
    /// standalone engine, the cluster always runs bounded.
    pub queue_capacity: usize,
    /// How many ticks a `shard:stall` fault freezes dispatch.
    pub stall_ticks: u64,
    /// Shard dispatch plane. [`DataPlane::Auto`] (the default) resolves
    /// from the machine; both planes serve bitwise-identical bytes.
    pub data_plane: DataPlane,
    /// Per-shard engine policy (batching, cache, telemetry). Its
    /// `queue_capacity` is overridden by the cluster's.
    pub serve: ServeConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 4,
            vnodes: DEFAULT_VNODES,
            queue_capacity: 64,
            stall_ticks: 3,
            data_plane: DataPlane::Auto,
            serve: ServeConfig::default(),
        }
    }
}

/// Resolve the configured plane against the environment and machine. An
/// explicit config choice wins; `MGA_SERVE_PLANE` steers `Auto` (so a
/// test pinning a plane in config is immune to a suite-wide override);
/// an unsteered `Auto` takes workers only when they can actually help.
fn resolve_plane(configured: DataPlane, shards: usize) -> DataPlane {
    let plane = match configured {
        DataPlane::Auto => match std::env::var("MGA_SERVE_PLANE")
            .ok()
            .as_deref()
            .map(str::trim)
        {
            Some("inline") | Some("0") => DataPlane::Inline,
            Some("workers") | Some("worker") | Some("1") => DataPlane::Workers,
            _ => DataPlane::Auto,
        },
        explicit => explicit,
    };
    match plane {
        DataPlane::Auto => {
            if shards > 1 && mga_nn::pool::num_threads() > 1 {
                DataPlane::Workers
            } else {
                DataPlane::Inline
            }
        }
        resolved => resolved,
    }
}

/// Intake-ring slots per shard worker: enough run-ahead to cover the
/// queue plus tick markers, bounded so slab memory stays modest.
fn ring_capacity(queue_capacity: usize) -> usize {
    queue_capacity.saturating_mul(2).clamp(64, 8192)
}

/// Interned per-shard gauges. Metric names are `&'static str`, so shard
/// names are leaked once at construction — a few bytes per shard, cold
/// path only.
struct ShardMetrics {
    queue_depth: &'static Gauge,
    health: &'static Gauge,
    plan_epoch: &'static Gauge,
    /// Worker-plane gauges (0 when inline): busy fraction since spawn,
    /// intake-ring occupancy at publish time, commands processed.
    worker_utilization: &'static Gauge,
    ring_occupancy: &'static Gauge,
    worker_cmds: &'static Gauge,
}

impl ShardMetrics {
    fn new(shard: usize) -> ShardMetrics {
        let name = |suffix: &str| -> &'static str {
            Box::leak(format!("serve.shard.{shard}.{suffix}").into_boxed_str())
        };
        ShardMetrics {
            queue_depth: metrics::gauge(name("queue_depth")),
            health: metrics::gauge(name("health")),
            plan_epoch: metrics::gauge(name("plan_epoch")),
            worker_utilization: metrics::gauge(name("worker.utilization")),
            ring_occupancy: metrics::gauge(name("worker.ring_occupancy")),
            worker_cmds: metrics::gauge(name("worker.cmds")),
        }
    }
}

struct Shard<'a> {
    /// Worker-plane command channel (`None` on the inline plane).
    /// Declared before `engine`: the channel's `Drop` joins the worker
    /// thread, which holds a raw pointer to `engine` — field drop order
    /// is the safety argument.
    channel: Option<ShardChannel>,
    engine: Engine<'a>,
    health: Health,
    /// Ticks dispatch stays frozen (injected stall).
    stall_remaining: u64,
    /// Drift-event count at the last health refresh; growth marks the
    /// shard `Degraded` for a tick. Inline reads the engine directly;
    /// the worker plane reads the worker's published count (the health
    /// signal is observational, so an eventually-consistent view is
    /// fine — admission never keys off drift health).
    drift_seen: usize,
    m: ShardMetrics,
}

/// A cluster of [`Engine`] shards behind consistent-hash admission.
pub struct Cluster<'a> {
    shards: Vec<Shard<'a>>,
    router: Router,
    /// Precomputed kernel → owner shard (the ring walk's first hop),
    /// replacing a per-submit binary search over the vnode ring.
    route_table: Vec<u32>,
    /// Resolved at construction: [`DataPlane::Inline`] or
    /// [`DataPlane::Workers`], never `Auto`.
    plane: DataPlane,
    cfg: ClusterConfig,
    graphs: &'a [ProGraph],
    vectors: &'a [Vec<f32>],
    tick: u64,
    /// Accepted-but-unplaceable requests (every live shard full at
    /// reroute time); retried at the start of each tick. Never dropped.
    overflow: VecDeque<Request>,
    /// Admission-side flight ring: sheds, redirects and reroutes (served
    /// requests are recorded by their shard's engine).
    flight: FlightRecorder,
    shed_total: &'static Counter,
    redirect_total: &'static Counter,
    reroute_total: &'static Counter,
    accepted: u64,
    answered: u64,
    /// Scratch for admission views / candidate order / evacuations.
    views: Vec<ShardView>,
    cand: Vec<usize>,
    cand_seen: Vec<bool>,
    evac: Vec<Request>,
}

impl<'a> Cluster<'a> {
    /// Build `cfg.shards` engines over a shared catalog. Each shard
    /// compiles its own plan and owns its own cache and queue.
    pub fn new(
        model: &'a FusionModel,
        graphs: &'a [ProGraph],
        vectors: &'a [Vec<f32>],
        cfg: ClusterConfig,
    ) -> Cluster<'a> {
        assert!(cfg.shards > 0, "cluster needs at least one shard");
        assert!(
            cfg.queue_capacity > 0,
            "cluster queues must be bounded but nonzero"
        );
        let mut ecfg = cfg.serve.clone();
        ecfg.queue_capacity = cfg.queue_capacity;
        let plane = resolve_plane(cfg.data_plane, cfg.shards);
        let mut shards: Vec<Shard<'a>> = (0..cfg.shards)
            .map(|i| Shard {
                engine: Engine::new(model, graphs, vectors, ecfg.clone()),
                health: Health::Healthy,
                stall_remaining: 0,
                drift_seen: 0,
                channel: None,
                m: ShardMetrics::new(i),
            })
            .collect();
        if plane == DataPlane::Workers {
            // Workers hold raw engine pointers: the engines live in the
            // `shards` Vec's heap buffer, which never reallocates (the
            // Vec is never grown) and outlives every worker — each
            // `ShardChannel`'s `Drop` joins its worker before the
            // engine field it points at is freed (see `Shard`'s field
            // order). Moving the Vec into the Cluster below moves only
            // its header.
            let plan = shards[0].engine.plan();
            let aux_dim = plan.in_dim() - plan.static_dim();
            let cap = ring_capacity(cfg.queue_capacity);
            for (i, s) in shards.iter_mut().enumerate() {
                let engine: *mut Engine<'a> = &mut s.engine;
                s.channel = Some(ShardChannel::spawn(engine, aux_dim, cap, ecfg.telemetry, i));
            }
        }
        let router = Router::new(cfg.shards, cfg.vnodes);
        let route_table = (0..graphs.len()).map(|k| router.route(k) as u32).collect();
        Cluster {
            shards,
            router,
            route_table,
            plane,
            graphs,
            vectors,
            tick: 0,
            overflow: VecDeque::new(),
            flight: FlightRecorder::new(if cfg.serve.telemetry {
                cfg.serve.flight_capacity
            } else {
                0
            }),
            shed_total: metrics::counter("serve.shed_total"),
            redirect_total: metrics::counter("serve.redirect_total"),
            reroute_total: metrics::counter("serve.reroute_total"),
            accepted: 0,
            answered: 0,
            views: Vec::with_capacity(cfg.shards),
            cand: Vec::with_capacity(cfg.shards),
            cand_seen: vec![false; cfg.shards],
            evac: Vec::new(),
            cfg,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current cluster tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// The routing ring.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The resolved dispatch plane ([`DataPlane::Inline`] or
    /// [`DataPlane::Workers`], never `Auto`).
    pub fn data_plane(&self) -> DataPlane {
        self.plane
    }

    /// A shard's engine (plan, cache, flight ring). On the worker plane
    /// this is a synchronization epoch: the shard's command stream is
    /// quiesced first, and the borrow keeps new commands out until it
    /// ends.
    pub fn engine(&self, shard: usize) -> &Engine<'a> {
        let s = &self.shards[shard];
        if let Some(ch) = &s.channel {
            ch.quiesce();
        }
        &s.engine
    }

    /// A shard's engine, mutably (cache warming, direct inspection).
    /// Worker plane: quiesces first, same epoch rules as
    /// [`Cluster::engine`]. Callers must not grow or drain the engine's
    /// queue through this handle on the worker plane — the caller-side
    /// queue mirror would diverge (serve-path mutation belongs to
    /// [`Cluster::submit`] / [`Cluster::tick`]).
    pub fn engine_mut(&mut self, shard: usize) -> &mut Engine<'a> {
        let s = &mut self.shards[shard];
        if let Some(ch) = &s.channel {
            ch.quiesce();
        }
        &mut s.engine
    }

    /// A shard's health.
    pub fn health(&self, shard: usize) -> Health {
        self.shards[shard].health
    }

    /// A shard's queued-but-unserved depth, as admission sees it (the
    /// caller-side mirror on the worker plane — exact, no sync needed).
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.depth(shard)
    }

    /// Queue depth from the plane-appropriate source.
    fn depth(&self, shard: usize) -> usize {
        let s = &self.shards[shard];
        match &s.channel {
            Some(ch) => ch.mirror.depth(),
            None => s.engine.queue_depth(),
        }
    }

    /// Accepted-but-unplaced requests waiting for queue room.
    pub fn overflow_depth(&self) -> usize {
        self.overflow.len()
    }

    /// Requests accepted (admits + redirects) since construction.
    pub fn accepted_total(&self) -> u64 {
        self.accepted
    }

    /// Responses handed to [`Cluster::drain`] since construction. After
    /// a final [`Cluster::flush`] + drain this equals
    /// [`Cluster::accepted_total`] — the zero-loss invariant the chaos
    /// suite asserts.
    pub fn answered_total(&self) -> u64 {
        self.answered
    }

    /// The admission flight ring (sheds, redirects, reroutes).
    pub fn admission_flight(&self) -> &FlightRecorder {
        &self.flight
    }

    fn refresh_views(&mut self) {
        let mut views = std::mem::take(&mut self.views);
        views.clear();
        for i in 0..self.shards.len() {
            let s = &self.shards[i];
            views.push(ShardView {
                depth: self.depth(i),
                capacity: self.cfg.queue_capacity,
                down: s.health == Health::Down,
                stall_remaining: s.stall_remaining,
            });
        }
        self.views = views;
    }

    /// Fill `self.cand` with the failover order for `kernel`, starting
    /// at `owner` then following the ring walk (deduplicated).
    fn build_candidates(&mut self, kernel: usize, owner: usize) {
        self.cand.clear();
        self.cand_seen.fill(false);
        self.cand.push(owner);
        self.cand_seen[owner] = true;
        let cand = &mut self.cand;
        let seen = &mut self.cand_seen;
        self.router.walk(kernel, |s| {
            if !seen[s] {
                seen[s] = true;
                cand.push(s);
            }
        });
    }

    fn note_disposition(&mut self, id: u64, kernel: usize, disposition: Disposition) {
        self.flight.push(FlightRecord {
            id,
            kernel: kernel as u32,
            submit_tick: self.tick,
            served_tick: self.tick,
            disposition,
            ..FlightRecord::default()
        });
    }

    /// Admit one request at the current tick. Returns the shard it was
    /// enqueued on, or the typed refusal. `deadline_tick` (absolute
    /// cluster tick) arms deadline-aware shedding: if no candidate shard
    /// can finish by then under the queue-depth estimate, the request is
    /// refused *now* rather than queued to miss.
    pub fn submit(
        &mut self,
        req: Request,
        deadline_tick: Option<u64>,
    ) -> Result<usize, ServeError> {
        let id = req.id;
        let kernel = req.kernel;
        self.admit_request(id, kernel, deadline_tick, &[], Some(req))
    }

    /// [`Cluster::submit`] from borrowed parts — no [`Request`] built,
    /// no `Vec<f32>` allocated on any plane: inline shards copy the aux
    /// row into a recycled engine buffer ([`Engine::submit_slice`]),
    /// worker shards write it into the shard's intake slab. This is the
    /// zero-allocation intake path for drivers that own their request
    /// stream (benchmarks, replay harnesses, network frontends).
    pub fn submit_ref(
        &mut self,
        id: u64,
        kernel: usize,
        aux: &[f32],
        deadline_tick: Option<u64>,
    ) -> Result<usize, ServeError> {
        self.admit_request(id, kernel, deadline_tick, aux, None)
    }

    /// Shared admission core. `owned` carries the caller's `Request` on
    /// the owned path (its aux is used); the borrowed path passes `aux`.
    fn admit_request(
        &mut self,
        id: u64,
        kernel: usize,
        deadline_tick: Option<u64>,
        aux: &[f32],
        owned: Option<Request>,
    ) -> Result<usize, ServeError> {
        if kernel >= self.graphs.len() {
            return Err(ServeError::UnknownKernel {
                kernel,
                catalog: self.graphs.len(),
            });
        }
        let n = self.shards.len();
        let hash_owner = self.route_table[kernel] as usize;
        let mut owner = hash_owner;
        if fault::armed() {
            if let Some(shot) = fault::fire(Site::Route) {
                if shot.kind == Kind::Misdirect && n > 1 {
                    owner = (owner + 1 + (shot.draw as usize % (n - 1))) % n;
                }
            }
        }
        // Fast path: the owner is live, has room and meets the deadline
        // — [`admission::decide`] would admit on its first candidate, so
        // skip building the full view snapshot and the ring walk. This
        // is the steady-state door; the slow path below is byte-for-byte
        // the same decision when the owner can't take it.
        {
            let depth = self.depth(owner);
            let s = &self.shards[owner];
            if s.health != Health::Down && depth < self.cfg.queue_capacity {
                let deadline_ok = match deadline_tick {
                    None => true,
                    Some(d) => {
                        admission::estimated_completion_tick(
                            self.tick,
                            depth,
                            self.cfg.serve.max_batch,
                            self.cfg.serve.max_wait_ticks,
                            s.stall_remaining,
                        ) <= d
                    }
                };
                if deadline_ok {
                    self.enqueue_on(owner, id, kernel, aux, owned);
                    self.accepted += 1;
                    if owner != hash_owner {
                        self.redirect_total.inc();
                        self.note_disposition(id, kernel, Disposition::Redirected);
                    }
                    return Ok(owner);
                }
            }
        }
        self.refresh_views();
        self.build_candidates(kernel, owner);
        let decision = admission::decide(
            owner,
            self.cand.iter().copied(),
            &self.views,
            self.tick,
            deadline_tick,
            self.cfg.serve.max_batch,
            self.cfg.serve.max_wait_ticks,
        );
        match decision {
            Decision::Admit { shard } | Decision::Redirect { to: shard, .. } => {
                self.enqueue_on(shard, id, kernel, aux, owned);
                self.accepted += 1;
                if shard != hash_owner {
                    self.redirect_total.inc();
                    self.note_disposition(id, kernel, Disposition::Redirected);
                }
                Ok(shard)
            }
            Decision::Shed { shard, reason } => {
                self.shed_total.inc();
                let disposition = match reason {
                    ShedReason::QueueFull { .. } => Disposition::ShedQueueFull,
                    ShedReason::Deadline { .. } => Disposition::ShedDeadline,
                    ShedReason::ShardDown => Disposition::ShedShardDown,
                };
                self.note_disposition(id, kernel, disposition);
                Err(reason.to_error(shard))
            }
        }
    }

    /// Enqueue an accepted request on `shard`, whichever plane drives
    /// it. Room and kernel were checked by admission.
    fn enqueue_on(
        &mut self,
        shard: usize,
        id: u64,
        kernel: usize,
        aux: &[f32],
        owned: Option<Request>,
    ) {
        let s = &mut self.shards[shard];
        match &mut s.channel {
            Some(ch) => {
                let aux = owned.as_ref().map_or(aux, |r| r.aux.as_slice());
                ch.submit(id, kernel, aux);
            }
            None => match owned {
                Some(req) => s.engine.submit(req),
                None => s.engine.submit_slice(id, kernel, aux),
            }
            .expect("admission checked kernel and room"),
        }
    }

    /// Place an already-accepted request on any live shard with room
    /// (ring order from its kernel). Used for crash evacuation and
    /// overflow retry — admission (capacity/deadline shedding) does NOT
    /// rerun: acceptance already happened and must be honored. Returns
    /// the request when nowhere can take it right now.
    fn try_place(&mut self, req: Request) -> Option<Request> {
        self.build_candidates(req.kernel, self.route_table[req.kernel] as usize);
        for i in 0..self.cand.len() {
            let shard = self.cand[i];
            if self.shards[shard].health == Health::Down
                || self.depth(shard) >= self.cfg.queue_capacity
            {
                continue;
            }
            let id = req.id;
            let kernel = req.kernel;
            self.enqueue_on(shard, id, kernel, &[], Some(req));
            self.reroute_total.inc();
            self.note_disposition(id, kernel, Disposition::Rerouted);
            return None;
        }
        Some(req)
    }

    fn retry_overflow(&mut self) {
        for _ in 0..self.overflow.len() {
            let req = self.overflow.pop_front().expect("len checked");
            if let Some(back) = self.try_place(req) {
                self.overflow.push_back(back);
            }
        }
        metrics::gauge("serve.cluster.overflow_depth").set(self.overflow.len() as f64);
    }

    /// Kill a shard: health `Down`, queue evacuated and rerouted to
    /// survivors (overflow buffer when all are full). The `shard:crash`
    /// fault lands here; tests call it directly as a chaos hook. Nothing
    /// accepted is lost.
    pub fn kill_shard(&mut self, shard: usize) {
        if self.shards[shard].health == Health::Down {
            return;
        }
        self.shards[shard].health = Health::Down;
        metrics::counter("serve.shard_down_total").inc();
        let mut evac = std::mem::take(&mut self.evac);
        evac.clear();
        {
            // Evacuation is a synchronization epoch on the worker plane:
            // stop the command stream, then read the engine's queue
            // directly (the mirror resets alongside it).
            let s = &mut self.shards[shard];
            if let Some(ch) = &mut s.channel {
                ch.quiesce();
                ch.mirror.evacuate();
            }
            s.engine.evacuate(&mut evac);
        }
        for req in evac.drain(..) {
            if let Some(back) = self.try_place(req) {
                self.overflow.push_back(back);
            }
        }
        self.evac = evac;
    }

    /// Freeze a shard's dispatch for `ticks` cluster ticks (the
    /// `shard:stall` fault / chaos hook). Queued requests wait; health
    /// reads `Degraded`; admission's deadline estimates include the
    /// remaining stall.
    pub fn stall_shard(&mut self, shard: usize, ticks: u64) {
        if self.shards[shard].health == Health::Down {
            return;
        }
        self.shards[shard].stall_remaining = self.shards[shard].stall_remaining.max(ticks);
    }

    /// Advance the cluster one logical tick: fire shard faults, retry
    /// the overflow buffer, dispatch every live unstalled shard (on the
    /// worker pool when it helps), then refresh health. Returns the
    /// number of requests completed this tick.
    pub fn tick(&mut self) -> usize {
        self.tick += 1;
        if fault::armed() {
            // One deterministic fault check per shard per tick, in shard
            // order, so a given spec always hits the same (shard, tick).
            for i in 0..self.shards.len() {
                if let Some(shot) = fault::fire(Site::Shard) {
                    if self.shards[i].health != Health::Down {
                        match shot.kind {
                            Kind::Crash => self.kill_shard(i),
                            Kind::Stall => self.stall_shard(i, self.cfg.stall_ticks),
                            _ => {}
                        }
                    }
                }
            }
        }
        self.retry_overflow();
        let done = self.dispatch_live();
        for s in &mut self.shards {
            if s.health == Health::Down {
                continue;
            }
            if s.stall_remaining > 0 {
                s.stall_remaining -= 1;
            }
            let drift_len = match &s.channel {
                Some(ch) => ch.shared.drift_len.load(Ordering::Relaxed),
                None => s.engine.drift_events().len(),
            };
            let drifted = drift_len > s.drift_seen;
            s.drift_seen = drift_len;
            s.health = if s.stall_remaining > 0 || drifted {
                Health::Degraded
            } else {
                Health::Healthy
            };
        }
        done
    }

    /// Tick every live, unstalled engine.
    ///
    /// Worker plane: push one `Tick` command per live shard and return
    /// the mirror's completion count — the caller never waits for the
    /// engines, which run ahead independently until the next
    /// synchronization epoch. Inline plane: drive the engines here
    /// (fork-join on the worker pool when it helps). Both planes tick
    /// the same shards in the same states, so served bytes match.
    fn dispatch_live(&mut self) -> usize {
        if self.plane == DataPlane::Workers {
            let cfg = &self.cfg.serve;
            let mut done = 0;
            for s in &mut self.shards {
                if s.health == Health::Down || s.stall_remaining > 0 {
                    continue;
                }
                done += s.channel.as_mut().expect("workers plane").tick(cfg);
            }
            return done;
        }
        let live: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.health != Health::Down && s.stall_remaining == 0)
            .map(|(i, _)| i)
            .collect();
        let mut done = vec![0usize; live.len()];
        if live.len() > 1 && mga_nn::pool::num_threads() > 1 {
            let shards = mga_nn::pool::SendPtr::new(self.shards.as_mut_ptr());
            let counts = mga_nn::pool::SendPtr::new(done.as_mut_ptr());
            let live_ref = &live;
            mga_nn::pool::parallel_for(live.len(), |i| {
                let idx = live_ref[i];
                // Safety: `live` holds distinct indices, so each task
                // touches a disjoint Shard and a disjoint count slot.
                unsafe {
                    let shard = &mut *shards.get().add(idx);
                    *counts.get().add(i) = shard.engine.tick();
                }
            });
        } else {
            for (slot, &idx) in live.iter().enumerate() {
                done[slot] = self.shards[idx].engine.tick();
            }
        }
        done.iter().sum()
    }

    /// Drain completed responses from every shard, in shard order, into
    /// `out`. Returns how many were moved. On the worker plane this is a
    /// synchronization epoch: each shard's command stream quiesces, its
    /// response ring empties first (oldest completions), then whatever
    /// the ring could not hold comes straight off the engine — so the
    /// per-shard order is exactly the inline plane's completion order.
    pub fn drain(&mut self, out: &mut Vec<Response>) -> usize {
        let mut n = 0;
        for s in &mut self.shards {
            if let Some(ch) = &mut s.channel {
                ch.quiesce();
                while let Some(r) = ch.responses.try_pop() {
                    out.push(r);
                    n += 1;
                }
                n += s.engine.drain(out);
                debug_assert_eq!(
                    s.engine.queue_depth(),
                    ch.mirror.depth(),
                    "queue mirror must track the engine exactly"
                );
            } else {
                n += s.engine.drain(out);
            }
        }
        self.answered += n as u64;
        n
    }

    /// End-of-run: clear stalls, then alternate overflow retries and
    /// full shard flushes until nothing admitted remains queued. Only an
    /// all-shards-down cluster can leave overflow behind (and then only
    /// because there is no engine left to serve it).
    pub fn flush(&mut self) -> usize {
        for s in &mut self.shards {
            s.stall_remaining = 0;
        }
        let mut done = 0;
        loop {
            let overflow_before = self.overflow.len();
            self.retry_overflow();
            let mut moved = 0;
            let cfg = &self.cfg.serve;
            for s in &mut self.shards {
                if s.health != Health::Down {
                    moved += match &mut s.channel {
                        Some(ch) => ch.flush(cfg),
                        None => s.engine.flush(),
                    };
                }
            }
            done += moved;
            if self.overflow.is_empty() && (0..self.shards.len()).all(|i| self.depth(i) == 0) {
                break;
            }
            if moved == 0 && self.overflow.len() == overflow_before {
                break;
            }
        }
        done
    }

    /// Hot-swap `shard`'s plan to `candidate`, zero-drop: the request it
    /// is serving and everything already queued finish on the old plan;
    /// admissions from this call on are served by the new one (install
    /// happens at the exact micro-batch boundary — see
    /// [`Engine::swap_plan`]). The candidate is validated *first*:
    ///
    /// * shape gate — input width, static split, hidden width and head
    ///   layout must match the serving plan (the shard's traffic must
    ///   remain servable);
    /// * health probe — the candidate plan runs end-to-end on a probe
    ///   kernel from the catalog; non-finite activations or an
    ///   out-of-range class decision reject it.
    ///
    /// Any failure is a typed [`SwapError`] and the shard keeps serving
    /// its current plan untouched — rollback is instant because nothing
    /// was changed.
    pub fn swap(&mut self, shard: usize, candidate: &'a FusionModel) -> Result<(), SwapError> {
        let n = self.shards.len();
        if shard >= n {
            return Err(SwapError::NoSuchShard { shard, shards: n });
        }
        // Worker plane: a swap is a synchronization epoch. Quiesce before
        // reading the serving plan — an in-flight tick could install a
        // previously staged plan under us otherwise. No commands are
        // issued between here and the install below, so the engine stays
        // quiesced through the whole validation.
        if let Some(ch) = &self.shards[shard].channel {
            ch.quiesce();
        }
        let current = self.shards[shard].engine.plan();
        let plan = InferencePlan::compile_with(candidate, current.precision());
        let gate = [
            ("in_dim", current.in_dim(), plan.in_dim()),
            ("static_dim", current.static_dim(), plan.static_dim()),
            ("hidden", current.hidden(), plan.hidden()),
            ("num_heads", current.num_heads(), plan.num_heads()),
        ];
        for (field, expected, got) in gate {
            if expected != got {
                return Err(SwapError::Shape {
                    field,
                    expected,
                    got,
                });
            }
        }
        for (hi, (&expected, &got)) in current
            .head_sizes()
            .iter()
            .zip(plan.head_sizes())
            .enumerate()
        {
            if expected != got {
                let _ = hi;
                return Err(SwapError::Shape {
                    field: "head_sizes",
                    expected,
                    got,
                });
            }
        }
        // Health probe: candidate embedding + zero aux through the
        // candidate plan; all activations must be finite and every head
        // must decide an in-range class.
        let emb = candidate.static_embedding(&self.graphs[0], &self.vectors[0]);
        if emb.len() != plan.static_dim() || emb.iter().any(|v| !v.is_finite()) {
            return Err(SwapError::Probe {
                detail: "non-finite or mis-sized probe embedding".into(),
            });
        }
        let mut x = vec![0.0f32; plan.in_dim()];
        x[..emb.len()].copy_from_slice(&emb);
        let zero_aux = vec![0.0f32; plan.in_dim() - plan.static_dim()];
        plan.scale_aux_into(&mut x[plan.static_dim()..], &zero_aux);
        let mut h = vec![0.0f32; plan.hidden()];
        let mut lg = vec![0.0f32; plan.max_classes()];
        let mut cls = vec![0usize; plan.num_heads()];
        plan.trunk_into(&x, 1, &mut h);
        plan.heads_into(&h, 1, &mut lg, &mut cls, None);
        if h.iter().any(|v| !v.is_finite()) {
            return Err(SwapError::Probe {
                detail: "non-finite trunk activations on probe input".into(),
            });
        }
        if cls.iter().zip(plan.head_sizes()).any(|(&c, &sz)| c >= sz) {
            return Err(SwapError::Probe {
                detail: "out-of-range class decision on probe input".into(),
            });
        }
        let s = &mut self.shards[shard];
        if let Some(ch) = &mut s.channel {
            // Mirror the swap clamp: until the pre-swap backlog drains,
            // each micro-batch is capped at the old plan's pending count
            // ([`Engine::swap_plan`] does the same on the engine side).
            ch.mirror.stage_swap();
        }
        s.engine.swap_plan(plan, candidate);
        Ok(())
    }

    /// Publish cluster gauges: per-shard `serve.shard.<i>.queue_depth` /
    /// `.health` (0 healthy / 1 degraded / 2 down) / `.plan_epoch`, plus
    /// `serve.cluster.shards`, `serve.cluster.overflow_depth` and
    /// `serve.cluster.data_plane` (0 inline / 1 workers). Worker shards
    /// also publish `.worker.utilization` (busy fraction since spawn),
    /// `.worker.ring_occupancy` and `.worker.cmds`; a metrics pass is a
    /// synchronization epoch there (quiesce, then read the engine).
    pub fn publish_metrics(&self) {
        for s in &self.shards {
            if let Some(ch) = &s.channel {
                ch.quiesce();
                s.m.queue_depth.set(ch.mirror.depth() as f64);
                let cmds = ch.shared.cmds.load(Ordering::Relaxed);
                s.m.worker_cmds.set(cmds as f64);
                s.m.ring_occupancy.set(ch.occupancy() as f64);
                let busy = ch.shared.busy_ns.load(Ordering::Relaxed);
                let start = ch.shared.start_ns.load(Ordering::Relaxed);
                let elapsed = mga_obs::clock::now_ns().saturating_sub(start);
                let util = if elapsed > 0 {
                    (busy as f64 / elapsed as f64).min(1.0)
                } else {
                    0.0
                };
                s.m.worker_utilization.set(util);
            } else {
                s.m.queue_depth.set(s.engine.queue_depth() as f64);
            }
            s.m.health.set(s.health.gauge_value());
            s.m.plan_epoch.set(s.engine.plan_epoch() as f64);
        }
        metrics::gauge("serve.cluster.shards").set(self.shards.len() as f64);
        metrics::gauge("serve.cluster.overflow_depth").set(self.overflow.len() as f64);
        metrics::gauge("serve.cluster.data_plane").set(match self.plane {
            DataPlane::Workers => 1.0,
            _ => 0.0,
        });
    }

    /// Write the admission flight ring (sheds/redirects/reroutes) as
    /// JSONL, oldest first.
    pub fn dump_admission_flight(&self, w: &mut impl Write) -> io::Result<()> {
        self.flight.dump(w)
    }
}

// Cluster deliberately has no `Drop` impl: one would force every
// borrow a caller hands it (e.g. a hot-swap candidate model declared
// after the cluster) to strictly outlive the cluster's drop point.
// Worker shutdown lives in [`ShardChannel`]'s `Drop` instead, which is
// lifetime-free; `Shard` declares the channel before the engine so the
// worker is joined before the engine it points at is freed.

/// Load a hot-swap candidate checkpoint from disk. This is the
/// `swap:corrupt` fault site: with it armed, a bit of the just-read
/// bytes is flipped before parsing, and the CRC-sealed loader must
/// reject the file with a typed error — proving a corrupt push can never
/// reach [`Cluster::swap`], let alone a serving plan.
pub fn load_candidate(path: &Path) -> Result<FusionModel, SwapError> {
    let mut bytes = std::fs::read(path).map_err(PersistError::from)?;
    if fault::armed() {
        if let Some(shot) = fault::fire(Site::Swap) {
            if shot.kind == Kind::Corrupt && !bytes.is_empty() {
                let pos = (shot.draw as usize) % bytes.len();
                let bit = ((shot.draw >> 56) % 8) as u8;
                bytes[pos] ^= 1 << bit;
            }
        }
    }
    let (model, _state) = persist::load_checkpoint_bytes(&bytes)?;
    Ok(model)
}
