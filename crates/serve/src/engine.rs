//! The batched serving loop.

use std::collections::VecDeque;
use std::io::{self, Write};

use mga_core::model::{FusionModel, PreparedBatch};
use mga_graph::ProGraph;
use mga_nn::arena::Arena;
use mga_obs::drift::{DriftConfig, DriftEvent, DriftMonitor, TickStats};
use mga_obs::hist::LogHistogram;
use mga_obs::metrics::{Counter, Gauge};
use mga_obs::{clock, metrics};

use crate::cache::EmbeddingCache;
use crate::error::ServeError;
use crate::flight::{drift_event_to_json, FlightRecord, FlightRecorder, MAX_FLIGHT_HEADS};
use crate::plan::{InferencePlan, Precision};

/// Batching policy for the serving loop. Time is *logical*: the engine
/// never reads a wall clock on a **decision** path, so a given
/// submit/tick script always forms the same micro-batches — batching
/// decisions are replayable in tests and across machines. (With
/// telemetry on, the engine does read a cheap wall clock to *measure*
/// stage latencies; readings are observation-only and never feed
/// control flow.)
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dispatch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Dispatch a partial batch once its oldest request has waited this
    /// many ticks (0 = dispatch on the next tick).
    pub max_wait_ticks: u64,
    /// Static-embedding cache capacity (distinct kernels resident).
    pub cache_capacity: usize,
    /// Bounded intake: requests beyond this queue depth are refused with
    /// a typed [`ServeError::QueueFull`] instead of queueing without
    /// limit. `usize::MAX` (the default) keeps the standalone engine
    /// unbounded; the cluster always sets a real bound.
    pub queue_capacity: usize,
    /// Weight precision the plan is compiled at. Quantized precisions
    /// are approximate — gate them on argmax parity before serving.
    pub precision: Precision,
    /// Record per-request flight records, stage latency histograms and
    /// drift signals (default on; the recorder is allocation-free, so
    /// production leaves this enabled). Turning it off changes **no**
    /// served byte — `tests/serve_observability.rs` holds the engine to
    /// that.
    pub telemetry: bool,
    /// Flight-recorder ring capacity (last N requests; 0 disables the
    /// ring while keeping histograms and drift monitors).
    pub flight_capacity: usize,
    /// Drift-monitor tuning (windows, EWMA weight, thresholds).
    pub drift: DriftConfig,
    /// SLO-aware adaptive batching: when `Some(slo)`, a partial batch is
    /// cut early ([`BatchMode::SloCut`]) the moment the admission-style
    /// completion estimate for the front request overshoots
    /// `enqueued + slo` ticks — shallow queues stop paying the full
    /// `max_wait_ticks` for batching that is not coming, deep queues
    /// still batch up to `max_batch` for GEMM efficiency. The policy is
    /// deterministic in logical ticks (never wall-clock); `None` (the
    /// default) keeps the fixed wait-timer policy bit-for-bit.
    pub adaptive_slo_ticks: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 8,
            max_wait_ticks: 2,
            cache_capacity: 64,
            queue_capacity: usize::MAX,
            precision: Precision::F32,
            telemetry: true,
            flight_capacity: 4096,
            drift: DriftConfig::default(),
            adaptive_slo_ticks: None,
        }
    }
}

/// Why a micro-batch was cut when it was. Carried on flight records and
/// the `serve.batch.mode.*` counters so tail-latency regressions can be
/// attributed to a batching decision, not guessed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// The queue reached `max_batch` — dispatched at full width.
    Full,
    /// The oldest request aged out (`max_wait_ticks`).
    WaitTimer,
    /// Adaptive policy: waiting out the timer would blow the SLO, so the
    /// partial batch went now.
    SloCut,
    /// Forced dispatch outside the tick policy (`flush`, shutdown, or a
    /// staged swap draining via a synchronous call).
    Flush,
}

impl BatchMode {
    pub fn tag(self) -> &'static str {
        match self {
            BatchMode::Full => "full",
            BatchMode::WaitTimer => "wait",
            BatchMode::SloCut => "slo_cut",
            BatchMode::Flush => "flush",
        }
    }
}

/// The batching policy, as a pure function of queue state and logical
/// time: should a batch dispatch *now*, and why. This is the single
/// source of truth shared by [`Engine::tick`] and the cluster's
/// caller-side queue mirror (worker data plane) — both must form the
/// exact same batches for replays to stay bitwise identical, so neither
/// reimplements it.
///
/// `front_enqueued` is the enqueue tick of the oldest queued request
/// (`None` when the queue is empty).
#[inline]
pub fn dispatch_due(
    len: usize,
    front_enqueued: Option<u64>,
    now: u64,
    cfg: &ServeConfig,
) -> Option<BatchMode> {
    if len >= cfg.max_batch {
        return Some(BatchMode::Full);
    }
    let enq = front_enqueued?;
    // `now > enq` in both timer arms: a request never dispatches inside
    // its own submit tick except as part of a full batch.
    if now > enq && now - enq >= cfg.max_wait_ticks {
        return Some(BatchMode::WaitTimer);
    }
    if let Some(slo) = cfg.adaptive_slo_ticks {
        if now > enq {
            // Mirror the admission layer's completion estimate for this
            // queue state: a partial batch that keeps waiting lands at
            // the wait-timer horizon. If that already overshoots the
            // front request's SLO budget, cut the batch now.
            let eta = crate::admission::estimated_completion_tick(
                now,
                len,
                cfg.max_batch,
                cfg.max_wait_ticks,
                0,
            );
            if eta > enq + slo {
                return Some(BatchMode::SloCut);
            }
        }
    }
    None
}

/// One inference request: which kernel, and its dynamic (auxiliary)
/// feature row as measured for this input.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: u64,
    /// Kernel id — index into the engine's graph/vector catalog and the
    /// embedding-cache key.
    pub kernel: usize,
    /// Raw dynamic features; scaled (or imputed) by the plan.
    pub aux: Vec<f32>,
}

/// A completed request: the predicted class per head, plus the logical
/// ticks bounding its time in the engine (queue wait + service, in
/// ticks, is `completed_tick - enqueued_tick`).
#[derive(Debug, Clone)]
pub struct Response {
    pub id: u64,
    pub classes: Vec<usize>,
    pub enqueued_tick: u64,
    pub completed_tick: u64,
}

struct Pending {
    req: Request,
    enqueued_tick: u64,
    /// Wall nanoseconds at submit ([`clock::now_ns`]); 0 when telemetry
    /// is off. Measurement only — dispatch decisions never read it.
    submit_ns: u64,
}

/// Interned handles to every metric the per-request paths touch —
/// latency histograms, throughput counters, the queue-depth gauge.
/// Resolved once at engine construction so the hot path never takes the
/// registry lock (a mutex + map lookup per call would dwarf the work
/// being measured). Histogram values are nanoseconds.
struct HotMetrics {
    queue_wait: &'static LogHistogram,
    cache: &'static LogHistogram,
    scale: &'static LogHistogram,
    trunk: &'static LogHistogram,
    heads: &'static LogHistogram,
    e2e: &'static LogHistogram,
    requests: &'static Counter,
    batches: &'static Counter,
    batched_requests: &'static Counter,
    queue_depth: &'static Gauge,
    /// Chosen micro-batch widths (fixed-bucket; widths are small ints).
    batch_size: &'static metrics::Histogram,
    /// One counter per [`BatchMode`], indexed by discriminant.
    batch_mode: [&'static Counter; 4],
}

impl HotMetrics {
    fn new() -> HotMetrics {
        HotMetrics {
            queue_wait: metrics::log_histogram("serve.lat.queue_wait"),
            cache: metrics::log_histogram("serve.lat.cache_lookup"),
            scale: metrics::log_histogram("serve.lat.scale_aux"),
            trunk: metrics::log_histogram("serve.lat.trunk"),
            heads: metrics::log_histogram("serve.lat.heads"),
            e2e: metrics::log_histogram("serve.lat.e2e"),
            requests: metrics::counter("serve.requests"),
            batches: metrics::counter("serve.batches"),
            batched_requests: metrics::counter("serve.batched_requests"),
            queue_depth: metrics::gauge("serve.queue_depth"),
            batch_size: metrics::histogram(
                "serve.batch.size",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            batch_mode: [
                metrics::counter("serve.batch.mode.full"),
                metrics::counter("serve.batch.mode.wait"),
                metrics::counter("serve.batch.mode.slo_cut"),
                metrics::counter("serve.batch.mode.flush"),
            ],
        }
    }

    #[inline]
    fn note_batch(&self, b: usize, mode: BatchMode) {
        self.batches.inc();
        self.batched_requests.add(b as u64);
        self.batch_size.observe(b as f64);
        self.batch_mode[mode as usize].inc();
    }
}

/// Fast algebraic squash of a decision margin into (0, 1):
/// `0.5 + 0.5·m/(1+|m|)`. Monotonic in the margin, 0.5 at zero margin,
/// ~1 for large margins — the shape the confidence drift detector
/// needs, without the `exp` a true sigmoid would spend on every
/// request. Margins are ≥ 0 (top-1 − top-2), so the result lives in
/// [0.5, 1).
#[inline]
fn margin_confidence(m: f32) -> f32 {
    0.5 + 0.5 * (m / (1.0 + m.abs()))
}

/// The serving engine: a frozen [`InferencePlan`], the per-kernel
/// [`EmbeddingCache`], and a deterministic micro-batching queue.
///
/// The hot path is allocation-free in the steady state: scratch matrices
/// cycle through an [`Arena`] (always sized for `max_batch`, so the
/// size classes never change), responses are recycled via
/// [`Engine::recycle`], and the cache's storage is fixed at
/// construction. Kernels unseen at compile time take a slow path that
/// computes their static embedding on first use and caches it — the
/// paper's unseen-kernel scenario (Fig. 6) costs one GNN+DAE pass, then
/// serves at cached speed.
///
/// With telemetry on (the default) the engine additionally maintains,
/// still without allocating:
///
/// * a [`FlightRecorder`] ring of the last `flight_capacity` requests;
/// * log₂ latency histograms per stage (`serve.lat.queue_wait`,
///   `.cache_lookup`, `.scale_aux`, `.trunk`, `.heads`, `.e2e`) in the
///   process metrics registry;
/// * a [`DriftMonitor`] fed once per logical tick, whose events land in
///   a pre-allocated buffer ([`Engine::drift_events`]) and the
///   `drift.events*` counters.
///
/// Telemetry is observation-only: every served byte is bitwise
/// identical with it on or off.
/// A plan staged by [`Engine::swap_plan`], waiting for the pre-swap
/// queue to drain before it installs.
struct StagedSwap<'a> {
    plan: InferencePlan,
    model: &'a FusionModel,
}

pub struct Engine<'a> {
    plan: InferencePlan,
    cache: EmbeddingCache,
    model: &'a FusionModel,
    /// Hot-swap staging: `staged` is the next plan, `old_pending` how
    /// many queued requests must still be served by the *current* plan
    /// before it installs. Zero-drop by construction: nothing is ever
    /// removed from the queue except by serving or [`Engine::evacuate`].
    staged: Option<StagedSwap<'a>>,
    old_pending: usize,
    /// Installed-plan generation (bumps once per completed swap).
    plan_epoch: u64,
    graphs: &'a [ProGraph],
    vectors: &'a [Vec<f32>],
    cfg: ServeConfig,
    tick: u64,
    queue: VecDeque<Pending>,
    completed: VecDeque<Response>,
    spare: Vec<Response>,
    /// Recycled aux buffers for [`Engine::submit_slice`] — the borrowed
    /// intake path reuses these instead of allocating a `Vec<f32>` per
    /// request, keeping cluster steady-state intake allocation-free.
    spare_aux: Vec<Vec<f32>>,
    arena: Arena,
    /// Reusable class-decision buffer (`max_batch × num_heads`).
    cls: Vec<usize>,
    /// Reusable per-head decision margins (`max_batch × num_heads`).
    margins: Vec<f32>,
    /// Per-row cache-hit flags for the batch being dispatched.
    hits: Vec<bool>,
    /// Which catalog kernels have been served at least once (new-kernel
    /// drift signal).
    seen: Vec<bool>,
    flight: FlightRecorder,
    lat: HotMetrics,
    drift: DriftMonitor,
    /// Drift events buffered for [`Engine::drift_events`] / the flight
    /// dump; pre-allocated, overflow is counted in `drift_dropped`.
    drift_events: Vec<DriftEvent>,
    drift_dropped: u64,
    /// Telemetry accumulated since the last tick, fed to the drift
    /// monitor.
    stats: TickStats,
    /// Arena bytes after construction prewarm; anything above this was
    /// allocated post-warmup and is reported as `serve.steady_alloc_bytes`.
    alloc_baseline: u64,
}

impl<'a> Engine<'a> {
    /// Compile `model` into a plan and set up the serving state.
    /// `graphs` and `vectors` are the kernel catalog the slow path
    /// consults for cache misses (indexed by `Request::kernel`).
    pub fn new(
        model: &'a FusionModel,
        graphs: &'a [ProGraph],
        vectors: &'a [Vec<f32>],
        cfg: ServeConfig,
    ) -> Engine<'a> {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let plan = InferencePlan::compile_with(model, cfg.precision);
        assert!(
            plan.num_heads() <= MAX_FLIGHT_HEADS,
            "flight records hold at most {MAX_FLIGHT_HEADS} heads"
        );
        let cache = EmbeddingCache::new(cfg.cache_capacity, plan.static_dim());
        let mut arena = Arena::new();
        // Prewarm every scratch size class (single-request and batch)
        // so the first dispatch already runs on recycled buffers and the
        // post-baseline allocation count stays at zero. Each path's
        // three buffers are taken *simultaneously* — sizes can collide
        // (e.g. `hidden == max_classes` makes the batch h and logits
        // buffers share a class), and a colliding class needs as many
        // free buffers as the path holds at once.
        let b = cfg.max_batch;
        for trio in [
            [b * plan.in_dim(), b * plan.hidden(), b * plan.max_classes()],
            [plan.in_dim(), plan.hidden(), plan.max_classes()],
        ] {
            let bufs = trio.map(|len| arena.take(len));
            for buf in bufs {
                arena.give(buf);
            }
        }
        let alloc_baseline = arena.alloc_bytes();
        let reserve = 4 * b + 64;
        let cls = vec![0usize; b * plan.num_heads()];
        let margins = vec![0.0f32; b * plan.num_heads()];
        if cfg.telemetry {
            // Pay the one-time clock calibration here, not inside the
            // first measured request.
            clock::init();
        }
        Engine {
            flight: FlightRecorder::new(if cfg.telemetry {
                cfg.flight_capacity
            } else {
                0
            }),
            lat: HotMetrics::new(),
            drift: DriftMonitor::new(cfg.drift.clone()),
            drift_events: Vec::with_capacity(256),
            drift_dropped: 0,
            stats: TickStats::default(),
            plan,
            cache,
            model,
            staged: None,
            old_pending: 0,
            plan_epoch: 0,
            graphs,
            vectors,
            cfg,
            tick: 0,
            queue: VecDeque::with_capacity(reserve),
            completed: VecDeque::with_capacity(reserve),
            spare: Vec::with_capacity(reserve),
            spare_aux: Vec::with_capacity(reserve),
            arena,
            cls,
            margins,
            hits: vec![false; b],
            seen: vec![false; graphs.len()],
            alloc_baseline,
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The static-embedding cache (read-only; mutate via [`Engine::warm`]
    /// or by serving).
    pub fn cache(&self) -> &EmbeddingCache {
        &self.cache
    }

    /// Current logical tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Requests queued but not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The flight recorder (last `flight_capacity` served requests).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Drift events fired so far (up to the buffer's capacity; see
    /// [`Engine::drift_events_dropped`]).
    pub fn drift_events(&self) -> &[DriftEvent] {
        &self.drift_events
    }

    /// Events dropped because the drift buffer was full (they still
    /// bumped the `drift.events*` counters).
    pub fn drift_events_dropped(&self) -> u64 {
        self.drift_dropped
    }

    /// The drift monitor (for EWMA / breach inspection).
    pub fn drift(&self) -> &DriftMonitor {
        &self.drift
    }

    /// Warm the cache from a training-side [`PreparedBatch`]; see
    /// [`EmbeddingCache::warm`].
    pub fn warm(&mut self, prep: &PreparedBatch) -> usize {
        self.cache.warm(self.model, prep)
    }

    /// Enqueue a request at the current tick. Typed refusals, never a
    /// panic: an out-of-catalog kernel is [`ServeError::UnknownKernel`]
    /// (it would have no graph to compute an embedding from) and a full
    /// bounded queue is [`ServeError::QueueFull`] (the `shard` field is
    /// 0 for a standalone engine; the cluster does its own admission
    /// with real shard ids before this point).
    pub fn submit(&mut self, req: Request) -> Result<(), ServeError> {
        self.admit(req.id, req.kernel, &[], Some(req))
    }

    /// [`Engine::submit`] from borrowed parts — no `Request` built, no
    /// `Vec<f32>` allocated: the aux row is copied into a recycled
    /// buffer from the engine's spare pool. This is the cluster data
    /// plane's intake path; it queues exactly what
    /// `submit(Request { id, kernel, aux: aux.to_vec() })` would.
    pub fn submit_slice(&mut self, id: u64, kernel: usize, aux: &[f32]) -> Result<(), ServeError> {
        self.admit(id, kernel, aux, None)
    }

    fn admit(
        &mut self,
        id: u64,
        kernel: usize,
        aux: &[f32],
        owned: Option<Request>,
    ) -> Result<(), ServeError> {
        if kernel >= self.graphs.len() {
            return Err(ServeError::UnknownKernel {
                kernel,
                catalog: self.graphs.len(),
            });
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            return Err(ServeError::QueueFull {
                shard: 0,
                depth: self.queue.len(),
                capacity: self.cfg.queue_capacity,
            });
        }
        self.lat.requests.inc();
        let submit_ns = if self.cfg.telemetry {
            clock::now_ns()
        } else {
            0
        };
        let req = owned.unwrap_or_else(|| {
            let mut buf = self.spare_aux.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(aux);
            Request {
                id,
                kernel,
                aux: buf,
            }
        });
        self.queue.push_back(Pending {
            req,
            enqueued_tick: self.tick,
            submit_ns,
        });
        self.lat.queue_depth.set(self.queue.len() as f64);
        Ok(())
    }

    /// Stage a hot plan swap. The engine keeps answering: every request
    /// queued *before* this call is served by the current plan, every
    /// later admission by `plan` — the install happens mid-dispatch the
    /// moment the pre-swap backlog hits zero, so not a single request is
    /// dropped or re-queued. `model` is the plan's source model (the
    /// slow embedding path must match the plan's weights); the embedding
    /// cache is cleared at install because the new model's GNN/DAE make
    /// cached rows stale. Shape compatibility is the caller's contract
    /// (`Cluster::swap` validates it; standalone callers get debug
    /// asserts).
    pub fn swap_plan(&mut self, plan: InferencePlan, model: &'a FusionModel) {
        debug_assert_eq!(plan.in_dim(), self.plan.in_dim(), "swap changes in_dim");
        debug_assert_eq!(plan.hidden(), self.plan.hidden(), "swap changes hidden");
        debug_assert_eq!(
            plan.head_sizes(),
            self.plan.head_sizes(),
            "swap changes head layout"
        );
        metrics::counter("serve.swap.staged").inc();
        self.old_pending = self.queue.len();
        self.staged = Some(StagedSwap { plan, model });
        if self.old_pending == 0 {
            self.install_staged();
        }
    }

    fn install_staged(&mut self) {
        if let Some(s) = self.staged.take() {
            self.plan = s.plan;
            self.model = s.model;
            self.cache.clear();
            self.plan_epoch += 1;
            metrics::counter("serve.swap.installed").inc();
        }
    }

    /// Whether a staged swap is still draining the pre-swap queue.
    pub fn swap_pending(&self) -> bool {
        self.staged.is_some()
    }

    /// Completed swaps (installed-plan generation).
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch
    }

    /// Pull every queued (not yet dispatched) request back out, oldest
    /// first — the shard-death path: a crashed shard's accepted-but-
    /// unserved requests are evacuated and re-admitted elsewhere instead
    /// of being lost. Returns how many were moved. Any staged swap
    /// installs immediately (its drain barrier is gone).
    pub fn evacuate(&mut self, out: &mut Vec<Request>) -> usize {
        let n = self.queue.len();
        out.extend(self.queue.drain(..).map(|p| p.req));
        self.lat.queue_depth.set(0.0);
        self.old_pending = 0;
        self.install_staged();
        n
    }

    /// Advance logical time by one tick and dispatch every micro-batch
    /// the policy allows: full batches immediately, partial batches once
    /// their oldest request has waited `max_wait_ticks`. Returns the
    /// number of requests completed this tick ([`Engine::drain`] them).
    pub fn tick(&mut self) -> usize {
        self.tick += 1;
        let mut done = 0;
        while let Some(mode) = self.due() {
            done += self.dispatch(mode);
        }
        self.lat.queue_depth.set(self.queue.len() as f64);
        if self.cfg.telemetry {
            let stats = std::mem::take(&mut self.stats);
            let events = &mut self.drift_events;
            let dropped = &mut self.drift_dropped;
            self.drift.on_tick(self.tick, &stats, &mut |e| {
                if events.len() < events.capacity() {
                    events.push(e);
                } else {
                    *dropped += 1;
                }
            });
        }
        done
    }

    /// [`dispatch_due`] over the engine's own queue state.
    fn due(&self) -> Option<BatchMode> {
        dispatch_due(
            self.queue.len(),
            self.queue.front().map(|p| p.enqueued_tick),
            self.tick,
            &self.cfg,
        )
    }

    /// Dispatch everything still queued, regardless of wait policy
    /// (shutdown / end-of-stream). Does not advance the tick.
    pub fn flush(&mut self) -> usize {
        let mut done = 0;
        while !self.queue.is_empty() {
            done += self.dispatch(BatchMode::Flush);
        }
        self.lat.queue_depth.set(0.0);
        done
    }

    /// Pop the oldest completed response, if any — the worker data
    /// plane's response-ring feed ([`Engine::drain`] moves everything at
    /// once instead).
    pub fn pop_completed(&mut self) -> Option<Response> {
        self.completed.pop_front()
    }

    /// Move completed responses (in completion order) into `out`;
    /// returns how many were moved.
    pub fn drain(&mut self, out: &mut Vec<Response>) -> usize {
        let n = self.completed.len();
        out.extend(self.completed.drain(..));
        n
    }

    /// Return a finished [`Response`] so its buffers are reused instead
    /// of reallocated — keeps the steady state allocation-free.
    pub fn recycle(&mut self, resp: Response) {
        if self.spare.len() < self.spare.capacity() {
            self.spare.push(resp);
        }
    }

    /// Ensure `kernel`'s static embedding is resident, taking the slow
    /// path (full GNN + DAE + scaler pass on the catalog entry) on a
    /// miss. Returns whether the lookup hit.
    fn ensure_static(&mut self, kernel: usize) -> bool {
        if self.cache.lookup(kernel).is_some() {
            return true;
        }
        let emb = self
            .model
            .static_embedding(&self.graphs[kernel], &self.vectors[kernel]);
        self.cache.insert(kernel, &emb);
        false
    }

    /// Record one served request: flight ring, per-tick drift stats.
    /// `classes`/`margins` are this request's per-head rows. Called only
    /// with telemetry on.
    #[allow(clippy::too_many_arguments)]
    fn note_served(
        &mut self,
        id: u64,
        kernel: usize,
        submit_tick: u64,
        batch: u16,
        batch_mode: &'static str,
        cache_hit: bool,
        e2e_ns: u64,
        classes: &[usize],
        margins: &[f32],
    ) {
        let nh = classes.len();
        let mut rec = FlightRecord {
            id,
            kernel: kernel as u32,
            submit_tick,
            served_tick: self.tick,
            queue_ticks: (self.tick - submit_tick) as u32,
            batch,
            batch_mode,
            cache_hit,
            precision: self.plan.precision().tag(),
            e2e_ns,
            num_heads: nh as u8,
            ..FlightRecord::default()
        };
        let mut conf_sum = 0.0f32;
        for hi in 0..nh {
            rec.classes[hi] = classes[hi].min(u16::MAX as usize) as u16;
            rec.margins[hi] = margins[hi];
            conf_sum += if self.plan.head_sizes()[hi] >= 2 {
                margin_confidence(margins[hi])
            } else {
                1.0
            };
        }
        rec.confidence = conf_sum / nh.max(1) as f32;
        self.flight.push(rec);
        self.stats.requests += 1;
        self.stats.cache_lookups += 1;
        if !cache_hit {
            self.stats.cache_misses += 1;
        }
        if kernel < self.seen.len() && !self.seen[kernel] {
            self.seen[kernel] = true;
            self.stats.new_kernels += 1;
        }
        self.stats.confidence_sum += rec.confidence as f64;
    }

    /// Run one micro-batch off the front of the queue. `mode` is why the
    /// policy cut the batch now — recorded on telemetry, never consulted
    /// for compute.
    fn dispatch(&mut self, mode: BatchMode) -> usize {
        let mut b = self.queue.len().min(self.cfg.max_batch);
        if self.staged.is_some() {
            // Swap draining: a micro-batch never straddles the swap
            // boundary, so pre-swap requests all see the old plan and
            // post-swap requests all see the new one.
            b = b.min(self.old_pending);
        }
        debug_assert!(b > 0);
        let telemetry = self.cfg.telemetry;
        let in_dim = self.plan.in_dim();
        let sd = self.plan.static_dim();
        let nh = self.plan.num_heads();
        let mut x = self.arena.take(self.cfg.max_batch * in_dim);
        for r in 0..b {
            let kernel = self.queue[r].req.kernel;
            let t0 = if telemetry { clock::now_ns() } else { 0 };
            let hit = self.ensure_static(kernel);
            let row = &mut x[r * in_dim..(r + 1) * in_dim];
            row[..sd].copy_from_slice(self.cache.peek(kernel).expect("just ensured"));
            let t1 = if telemetry { clock::now_ns() } else { 0 };
            let aux = &self.queue[r].req.aux;
            self.plan.scale_aux_into(&mut row[sd..], aux);
            if telemetry {
                self.lat.cache.observe(t1 - t0);
                self.lat.scale.observe(clock::now_ns() - t1);
                self.lat
                    .queue_wait
                    .observe(t0.saturating_sub(self.queue[r].submit_ns));
                self.hits[r] = hit;
            }
        }
        let mut h = self.arena.take(self.cfg.max_batch * self.plan.hidden());
        let mut lg = self
            .arena
            .take(self.cfg.max_batch * self.plan.max_classes());
        let mut cls = std::mem::take(&mut self.cls);
        let mut margins = std::mem::take(&mut self.margins);
        // The trunk/heads split and the margin-recording argmax are used
        // in *both* telemetry modes — identical compute, identical
        // classes; the flag only gates clock reads and recording.
        let t2 = if telemetry { clock::now_ns() } else { 0 };
        self.plan.trunk_into(&x, b, &mut h);
        let t3 = if telemetry { clock::now_ns() } else { 0 };
        self.plan
            .heads_into(&h, b, &mut lg, &mut cls, Some(&mut margins));
        let end_ns = if telemetry { clock::now_ns() } else { 0 };
        if telemetry {
            self.lat.trunk.observe(t3 - t2);
            self.lat.heads.observe(end_ns - t3);
        }
        for r in 0..b {
            let mut p = self.queue.pop_front().expect("b <= queue.len()");
            if telemetry {
                let e2e = end_ns.saturating_sub(p.submit_ns);
                self.lat.e2e.observe(e2e);
                let hit = self.hits[r];
                self.note_served(
                    p.req.id,
                    p.req.kernel,
                    p.enqueued_tick,
                    b as u16,
                    mode.tag(),
                    hit,
                    e2e,
                    &cls[r * nh..(r + 1) * nh],
                    &margins[r * nh..(r + 1) * nh],
                );
            }
            if self.spare_aux.len() < self.spare_aux.capacity() {
                // Recycle the aux buffer for the next `submit_slice`.
                self.spare_aux.push(std::mem::take(&mut p.req.aux));
            }
            let mut resp = self.spare.pop().unwrap_or_else(|| Response {
                id: 0,
                classes: Vec::with_capacity(nh),
                enqueued_tick: 0,
                completed_tick: 0,
            });
            resp.id = p.req.id;
            resp.enqueued_tick = p.enqueued_tick;
            resp.completed_tick = self.tick;
            resp.classes.clear();
            resp.classes.extend_from_slice(&cls[r * nh..(r + 1) * nh]);
            self.completed.push_back(resp);
        }
        self.cls = cls;
        self.margins = margins;
        self.arena.give(lg);
        self.arena.give(h);
        self.arena.give(x);
        self.lat.note_batch(b, mode);
        if self.staged.is_some() {
            self.old_pending -= b;
            if self.old_pending == 0 {
                self.install_staged();
            }
        }
        b
    }

    /// Synchronous single-request fast path (no queue, no ticks): write
    /// the predicted class of each head into `classes_out` (length
    /// `num_heads`). This is what the `serve_one_request` benchmark
    /// times — cache lookup, aux scaling, trunk and heads. Telemetry
    /// keeps the clock reads to two (start, end — a read costs ~20 ns
    /// under virtualized TSC, real money against a sub-µs request): the
    /// end-to-end histogram plus the flight record, leaving the
    /// per-stage split (cache, scaling, trunk, heads) to the batched
    /// path.
    /// Typed refusals, never a panic: an out-of-catalog kernel returns
    /// [`ServeError::UnknownKernel`]; a `classes_out` buffer that
    /// disagrees with the plan's head count returns
    /// [`ServeError::UnknownTaskHead`]. With a hot swap staged, the
    /// queue is flushed first (a synchronous call is a *new* admission
    /// and must see the new plan; the flush serves the pre-swap backlog
    /// on the old plan, installing at the boundary).
    pub fn serve_one(
        &mut self,
        kernel: usize,
        aux: &[f32],
        classes_out: &mut [usize],
    ) -> Result<(), ServeError> {
        if kernel >= self.graphs.len() {
            return Err(ServeError::UnknownKernel {
                kernel,
                catalog: self.graphs.len(),
            });
        }
        if classes_out.len() != self.plan.num_heads() {
            return Err(ServeError::UnknownTaskHead {
                head: classes_out.len(),
                num_heads: self.plan.num_heads(),
            });
        }
        if self.staged.is_some() {
            self.flush();
        }
        let telemetry = self.cfg.telemetry;
        let in_dim = self.plan.in_dim();
        let sd = self.plan.static_dim();
        let t0 = if telemetry { clock::now_ns() } else { 0 };
        let hit = self.ensure_static(kernel);
        let mut x = self.arena.take(in_dim);
        x[..sd].copy_from_slice(self.cache.peek(kernel).expect("just ensured"));
        self.plan.scale_aux_into(&mut x[sd..], aux);
        let mut h = self.arena.take(self.plan.hidden());
        let mut lg = self.arena.take(self.plan.max_classes());
        let mut margins = std::mem::take(&mut self.margins);
        self.plan.trunk_into(&x, 1, &mut h);
        self.plan
            .heads_into(&h, 1, &mut lg, classes_out, Some(&mut margins));
        self.arena.give(lg);
        self.arena.give(h);
        self.arena.give(x);
        if telemetry {
            let t2 = clock::now_ns();
            self.lat.e2e.observe(t2 - t0);
            let nh = self.plan.num_heads();
            self.note_served(
                0,
                kernel,
                self.tick,
                1,
                "sync",
                hit,
                t2 - t0,
                classes_out,
                &margins[..nh],
            );
        }
        self.margins = margins;
        self.lat.requests.inc();
        Ok(())
    }

    /// Serve one request but answer only task head `head` (the
    /// multi-head deployment view: one service, per-task questions). A
    /// head the plan does not have is a typed
    /// [`ServeError::UnknownTaskHead`] — checked before any compute.
    pub fn serve_one_head(
        &mut self,
        kernel: usize,
        aux: &[f32],
        head: usize,
    ) -> Result<usize, ServeError> {
        let nh = self.plan.num_heads();
        if head >= nh {
            return Err(ServeError::UnknownTaskHead {
                head,
                num_heads: nh,
            });
        }
        // Reuse the batch class scratch (always ≥ num_heads wide).
        let mut cls = std::mem::take(&mut self.cls);
        let res = self.serve_one(kernel, aux, &mut cls[..nh]);
        let class = cls[head];
        self.cls = cls;
        res.map(|()| class)
    }

    /// Arena bytes allocated since the construction prewarm — zero in a
    /// healthy steady state (all scratch recycled).
    pub fn steady_alloc_bytes(&self) -> u64 {
        self.arena.alloc_bytes() - self.alloc_baseline
    }

    /// Times a scratch buffer was served from the arena free lists
    /// instead of the allocator.
    pub fn arena_reuse(&self) -> u64 {
        self.arena.reuse_count()
    }

    /// Write the flight history as JSONL: one `{"type":"request",...}`
    /// line per surviving record (oldest first), then one
    /// `{"type":"drift",...}` line per buffered drift event.
    pub fn dump_flight(&self, w: &mut impl Write) -> io::Result<()> {
        self.flight.dump(w)?;
        for e in &self.drift_events {
            writeln!(w, "{}", drift_event_to_json(e))?;
        }
        Ok(())
    }

    /// [`Engine::dump_flight`] to the path named by `MGA_FLIGHT` (empty
    /// or `0` disables). Serving binaries call this at end of run.
    pub fn dump_flight_if_enabled(&self) {
        if let Ok(path) = std::env::var("MGA_FLIGHT") {
            let path = path.trim();
            if !path.is_empty() && path != "0" {
                let res = std::fs::File::create(path).and_then(|f| {
                    let mut w = io::BufWriter::new(f);
                    self.dump_flight(&mut w)
                });
                match res {
                    Ok(()) => mga_obs::info!("flight records written to {path}"),
                    Err(e) => mga_obs::error!("cannot write flight records {path}: {e}"),
                }
            }
        }
    }

    /// Publish the engine's gauges to the metrics registry:
    /// `serve.steady_alloc_bytes` (arena bytes allocated after the
    /// construction prewarm — zero in a healthy steady state),
    /// `serve.arena_reuse` (scratch recycles), `serve.queue_depth`, the
    /// embedding-cache counters (`serve.cache.hits` / `.misses` /
    /// `.evictions` / `.occupancy` / `.capacity`) and the flight/drift
    /// bookkeeping (`serve.flight.recorded`, `serve.drift.dropped`).
    pub fn publish_metrics(&self) {
        metrics::gauge("serve.steady_alloc_bytes")
            .set((self.arena.alloc_bytes() - self.alloc_baseline) as f64);
        metrics::gauge("serve.arena_reuse").set(self.arena.reuse_count() as f64);
        self.lat.queue_depth.set(self.queue.len() as f64);
        let (hits, misses, evictions) = self.cache.stats();
        metrics::gauge("serve.cache.hits").set(hits as f64);
        metrics::gauge("serve.cache.misses").set(misses as f64);
        metrics::gauge("serve.cache.evictions").set(evictions as f64);
        metrics::gauge("serve.cache.occupancy").set(self.cache.len() as f64);
        metrics::gauge("serve.cache.capacity").set(self.cache.capacity() as f64);
        metrics::gauge("serve.flight.recorded").set(self.flight.total() as f64);
        metrics::gauge("serve.drift.dropped").set(self.drift_dropped as f64);
    }
}
